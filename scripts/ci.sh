#!/usr/bin/env bash
# Repo CI gate: formatting, lints, build, and the full test suite.
#
# Requires network access to the cargo registry (or a pre-populated
# vendor/registry cache). In the offline growth container, use
# target/devcheck/{build,test,itest}.sh instead, which compile the
# workspace crates directly with rustc against dependency shims.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings

# Tier-1 gate (ROADMAP.md).
cargo build --release
cargo test -q
