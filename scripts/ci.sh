#!/usr/bin/env bash
# Repo CI gate: formatting, lints, build, and the full test suite.
#
# Requires network access to the cargo registry (or a pre-populated
# vendor/registry cache). In the offline growth container, use
# target/devcheck/{build,test,itest}.sh instead, which compile the
# workspace crates directly with rustc against dependency shims.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings

# Tier-1 gate (ROADMAP.md).
cargo build --release
cargo test -q

# Concurrency gate: the sharded-pool / node-cache stress tests must run
# with the test harness's thread pool unconstrained so the schedules
# actually interleave (an inherited RUST_TEST_THREADS=1 would serialize
# them into meaninglessness). CI runners have real cores, so also opt in
# to the parallel-MBA wall-clock speedup assertion.
env -u RUST_TEST_THREADS ANN_ASSERT_SPEEDUP=1 \
  cargo test -q -p ann-store --test concurrent_pool
env -u RUST_TEST_THREADS ANN_ASSERT_SPEEDUP=1 \
  cargo test -q -p ann-core --test parallel

# Morsel-engine gate (DESIGN.md §16): every Algorithm variant through the
# work-stealing engine at 2/3/8 threads must be byte-identical to serial,
# mid-query cancel/deadline/budget must land as the typed error with zero
# leaked pins and a byte-identical rerun, and injected crash faults must
# keep the resilience trichotomy under parallel execution. Independent
# seed for the same budget-isolation reason as the classes below.
cargo run --release -p checker --bin fuzz -- --class parallel --seed 0x9A7A --cases 200

# The committed parallel-join artifact must stay schema-valid, cover the
# full threads sweep per (algorithm, dataset) group, and keep every row's
# byte-identity bit — the engine's core guarantee. The 4-thread speedup
# headline on the heavy variants (MBA, BNN, clustered) is asserted only
# when ANN_ASSERT_SPEEDUP=1 (CI runners have real cores; 1-core dev boxes
# cannot speed up). Regenerate with `figures parallel-join --json results`
# (offline: target/devcheck/bin/figures parallel-join --json results).
python3 - results/BENCH_parallel_join.json <<'EOF'
import json, os, sys
rep = json.load(open(sys.argv[1]))
assert rep["id"] == "BENCH_parallel_join"
assert rep["host_cores"] >= 1 and rep["k"] >= 1
req = {"algorithm", "dataset", "n", "threads", "wall_seconds",
       "speedup_vs_serial", "result_pairs", "byte_identical"}
assert rep["rows"], "no rows"
groups = {}
for row in rep["rows"]:
    assert req <= row.keys(), f"missing fields: {req - row.keys()}"
    assert row["byte_identical"] is True, f"parallel diverged from serial: {row}"
    g = groups.setdefault((row["algorithm"], row["dataset"]), {})
    g[row["threads"]] = row
for (alg, ds), rows in groups.items():
    assert set(rows) == {1, 2, 4, 8}, f"incomplete threads sweep for {(alg, ds)}"
    pairs = {r["result_pairs"] for r in rows.values()}
    assert len(pairs) == 1, f"pair count varies with threads for {(alg, ds)}: {pairs}"
algs = {a for a, _ in groups}
dsets = {d for _, d in groups}
assert {"mba", "bnn", "mnn", "hnn"} <= algs, f"missing algorithms: {algs}"
assert {"uniform", "clustered"} <= dsets, f"missing datasets: {dsets}"
if os.environ.get("ANN_ASSERT_SPEEDUP") == "1":
    for alg in ("mba", "bnn"):
        s = groups[(alg, "clustered")][4]["speedup_vs_serial"]
        assert s >= 1.5, f"{alg} clustered 4-thread speedup {s:.2f}x < 1.5x"
print(f"validated {len(rep['rows'])} parallel-join rows across "
      f"{len(groups)} (algorithm, dataset) groups")
EOF

# Observability gate: every Algorithm variant through the unified
# entrypoint must match brute force, stay counter-identical to the
# legacy entrypoints, and stay counter-identical with a recording
# TraceSink attached (query_equivalence covers sink-on/sink-off).
cargo test -q -p ann-core --test query_equivalence

# Correctness-harness gate (DESIGN.md §10): fixed-seed differential fuzz
# over every Algorithm variant plus the NXNDIST / tree / recovery
# invariant classes. ~200 cases per class; deterministic, so a failure
# here is a real regression with a printed minimal reproducer.
cargo run --release -p checker --bin fuzz -- --seed 0xC1C1 --cases 200

# Kernel bit-identity gate (DESIGN.md §11): the batched SoA kernels must
# match the scalar metrics bit-for-bit on adversarial candidate sets
# (degenerate points, shared coordinates, extreme magnitudes). The `all`
# run above already includes the class; the dedicated run gives it an
# independent seed so its budget doesn't shrink as other classes grow.
cargo run --release -p checker --bin fuzz -- --class kernels --seed 0x50A0 --cases 200

# The committed kernel-throughput artifact must stay schema-valid and
# keep its headline claim (regenerate with `figures kernels --json
# results`, or offline with target/devcheck/kernels_fig).
python3 - results/BENCH_kernels.json <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
assert rep["id"] == "BENCH_kernels"
assert rep["lanes"] >= 1
req = {"kernel", "dims", "cache", "candidates", "scalar_seconds",
       "batched_seconds", "scalar_melems_per_sec", "batched_melems_per_sec",
       "speedup", "bit_identical"}
assert rep["rows"], "no rows"
for row in rep["rows"]:
    assert req <= row.keys(), f"missing fields: {req - row.keys()}"
    assert row["bit_identical"] is True, f"non-bit-identical row: {row}"
assert any(r["kernel"] == "leaf-scan" and r["dims"] == 2
           and r["cache"] == "warm" and r["speedup"] >= 1.5
           for r in rep["rows"]), "leaf-scan D=2 warm speedup < 1.5x"
print(f"validated {len(rep['rows'])} kernel rows")
EOF

# Resilience gate (DESIGN.md §12): scheduled transient / bit-flip /
# crash faults swept across the query window of every serial algorithm
# (plus a threaded MBA leg for absorbed transients). Each case must land
# in the trichotomy — retried-and-byte-identical, clean typed error with
# pins released and a byte-identical rerun, or quarantined-then-healed —
# and never panic or silently return a wrong answer. Independent seed
# for the same budget-isolation reason as the kernels class above.
cargo run --release -p checker --bin fuzz -- --class faults --seed 0x0FA1 --cases 200

# The committed robustness artifact must stay schema-valid, keep every
# row decision-identical (fully-armed guards — deadline + cancel token +
# both budgets + retry override — must not change a single reported
# neighbor or I/O counter), and keep the fault-free overhead small. The
# 5% bound leaves headroom over the observed ~1-2% max (hnn runs in
# single-digit milliseconds, so its relative timing is the noisiest).
# Regenerate with `figures robustness --json results`.
python3 - results/BENCH_robustness.json <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
assert rep["id"] == "BENCH_robustness"
req = {"algorithm", "n", "runs", "baseline_seconds", "armed_seconds",
       "overhead_percent", "decision_identical"}
assert rep["rows"], "no rows"
for row in rep["rows"]:
    assert req <= row.keys(), f"missing fields: {req - row.keys()}"
    assert row["decision_identical"] is True, f"armed run diverged: {row}"
assert rep["max_overhead_percent"] <= 5.0, \
    f"fault-free guard overhead {rep['max_overhead_percent']:.2f}% > 5%"
print(f"validated {len(rep['rows'])} robustness rows, "
      f"max overhead {rep['max_overhead_percent']:.2f}%")
EOF

# Out-of-core gate (DESIGN.md §13): the checker classes above already run
# with readahead enabled (diff proves decision-identity, faults proves
# the trichotomy survives batched reads). The committed sweep artifact
# must stay schema-valid, keep every prefetch-on row byte-identical to
# its off twin with identical logical reads, and show the prefetcher
# actually engaging (hits > 0) on the cold cells where the dataset is
# ≥ 10× the pool. Regenerate with `figures outofcore --json results`
# (offline: target/devcheck/bin/figures).
python3 - results/BENCH_outofcore.json <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
assert rep["id"] == "BENCH_outofcore"
req = {"points", "pool_pages", "dataset_pages", "prefetch", "build_seconds",
       "wall_seconds", "logical_reads", "physical_reads", "prefetch_issued",
       "prefetch_hits", "prefetch_wasted", "prefetch_hit_rate",
       "result_pairs", "identical_to_baseline"}
assert rep["rows"], "no rows"
by_cell = {}
for row in rep["rows"]:
    assert req <= row.keys(), f"missing fields: {req - row.keys()}"
    assert row["identical_to_baseline"] is True, f"row diverged: {row}"
    by_cell.setdefault((row["points"], row["pool_pages"]), {})[row["prefetch"]] = row
cold = []
for (pts, pool), pair in by_cell.items():
    assert set(pair) == {False, True}, f"unpaired cell {(pts, pool)}"
    on, off = pair[True], pair[False]
    assert on["logical_reads"] == off["logical_reads"], \
        f"prefetch changed logical reads at {(pts, pool)}"
    assert on["result_pairs"] == off["result_pairs"]
    if on["dataset_pages"] >= 10 * pool:
        cold.append(on)
        assert on["prefetch_hits"] > 0, f"no prefetch hits at cold cell {(pts, pool)}"
assert cold, "no cold (dataset >= 10x pool) cells in the sweep"
largest = max(cold, key=lambda r: (r["points"], -r["pool_pages"]))
pair = by_cell[(largest["points"], largest["pool_pages"])]
assert pair[True]["wall_seconds"] < pair[False]["wall_seconds"], \
    (f"prefetch loses at the largest cold cell: "
     f"on {pair[True]['wall_seconds']:.3f}s vs off {pair[False]['wall_seconds']:.3f}s")
c = rep["census"]
assert c["census_complete"] is True, "external-build census incomplete"
assert c["points"] >= 10_000_000, "census below 10^7 points"
print(f"validated {len(rep['rows'])} outofcore rows, "
      f"{len(cold)} cold cells, census n={c['points']}")
EOF

# External-build-then-query smoke at 10x pool pressure: a small live run
# (fast even on a laptop) that streams the build to a real file and
# re-checks decision-identity end to end.
cargo run --release -p ann-bench --bin figures -- outofcore \
  --scale 0.002 --points 20000 --pool-pages 16 > /dev/null

# Trace-report smoke: a tiny figure run with --trace must emit one valid
# JSON ExecutionReport per run.
trace_dir=$(mktemp -d)
cargo run --release -p ann-bench --bin figures -- fig3a --scale 0.01 \
  --trace "$trace_dir" > /dev/null
python3 - "$trace_dir" <<'EOF'
import json, pathlib, sys
files = sorted(pathlib.Path(sys.argv[1]).glob("*.json"))
assert files, "figures --trace wrote no reports"
for f in files:
    json.loads(f.read_text())
print(f"validated {len(files)} trace reports")
EOF
rm -rf "$trace_dir"

# Benches must at least compile; the scaling figure itself is run on
# demand (results/BENCH_*.json are committed artifacts). The metrics
# bench carries the no-op-sink overhead comparison (trace/noop-sink).
cargo bench --no-run

# Serving wire gate (DESIGN.md §14): the QuerySpec/QueryOutcome schema
# must round-trip as the identity, transit full-range u64 oids and f64
# distances bit-exactly, and never panic on corrupted documents.
# Independent seed for the same budget-isolation reason as above.
cargo run --release -p checker --bin fuzz -- --class wire --seed 0x3133 --cases 300

# Serving smoke: boot the real binary on an ephemeral port, drive the
# full collection lifecycle plus a query through raw HTTP, and shut it
# down cleanly over the wire.
serve_dir=$(mktemp -d)
cargo build --release -p ann-serve
target/release/ann-serve --addr 127.0.0.1:0 --data-dir "$serve_dir" \
  > "$serve_dir/serve.log" &
serve_pid=$!
for _ in $(seq 1 50); do
  grep -q "listening on" "$serve_dir/serve.log" && break
  sleep 0.1
done
serve_addr=$(sed -n 's/^listening on //p' "$serve_dir/serve.log" | head -1)
test -n "$serve_addr" || { cat "$serve_dir/serve.log"; exit 1; }
python3 - "$serve_addr" <<'EOF'
import json, sys, urllib.request
base = f"http://{sys.argv[1]}"
def call(method, path, body=None):
    data = body.encode() if body is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    with urllib.request.urlopen(req) as r:
        return r.status, r.read().decode()
status, _ = call("GET", "/health")
assert status == 200, f"health: {status}"
points = [[float(i % 17), float(i % 23)] for i in range(200)]
status, _ = call("POST", "/collections",
                 json.dumps({"id": "smoke", "kind": "mbrqt", "points": points}))
assert status == 201, f"create: {status}"
spec = {"v": 1, "algorithm": {"name": "mba", "traversal": "depth-first",
        "expansion": "bidirectional", "threads": 1},
        "metric": "nxn", "k": 1, "exclude_self": True}
status, body = call("POST", "/collections/smoke/query", json.dumps(spec))
assert status == 200, f"query: {status}"
out = json.loads(body)
assert out["count"] == 200 and len(out["pairs"]) == 200, out["count"]
status, _ = call("DELETE", "/collections/smoke")
assert status == 200, f"drop: {status}"
status, _ = call("POST", "/admin/shutdown")
assert status == 200, f"shutdown: {status}"
print("serving smoke OK")
EOF
wait "$serve_pid"
rm -rf "$serve_dir"

# The committed serving artifact must stay schema-valid, show a >=32-client
# closed-loop level, and keep the two hard serving gates: zero failed
# requests and results byte-identical to the in-process query::run path
# at every level. Regenerate with `figures serving --json results`
# (offline: target/devcheck/bin/figures serving --json results).
python3 - results/BENCH_serving.json <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
assert rep["id"] == "BENCH_serving"
assert rep["workers"] >= 1 and rep["queue_depth"] >= 1
req = {"clients", "requests_per_client", "total_requests", "failed_requests",
       "results_identical", "wall_seconds", "throughput_qps",
       "p50_us", "p95_us", "p99_us"}
assert rep["rows"], "no rows"
for row in rep["rows"]:
    assert req <= row.keys(), f"missing fields: {req - row.keys()}"
    assert row["failed_requests"] == 0, f"failed requests: {row}"
    assert row["results_identical"] is True, f"serving diverged from query::run: {row}"
    assert row["p50_us"] <= row["p95_us"] <= row["p99_us"], f"quantile order: {row}"
    assert row["throughput_qps"] > 0, f"no throughput: {row}"
assert any(r["clients"] >= 32 for r in rep["rows"]), "no >=32-client level"
print(f"validated {len(rep['rows'])} serving rows, "
      f"max level {max(r['clients'] for r in rep['rows'])} clients")
EOF

# MVCC gate (DESIGN.md §15): scripted and threaded interleavings of
# versioned insert/delete commits against concurrently pinned snapshot
# readers. Every pinned reader must stay byte-identical to brute force
# over its snapshot's point set, aborts must leave nothing pinned, and
# aged-out versions must fail pin with the typed error. Independent seed
# for the same budget-isolation reason as the classes above.
cargo run --release -p checker --bin fuzz -- --class interleave --seed 0x171E --cases 200

# The committed MVCC artifact must stay schema-valid, keep both phases
# failure-free, and keep the readers-not-blocked headline: reader p95
# with an active writer within 25% of the read-only p95 (the two modes
# run interleaved, so machine noise lands on both evenly). Regenerate
# with `figures mvcc --json results` (offline:
# target/devcheck/bin/figures mvcc --json results).
python3 - results/BENCH_mvcc.json <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
assert rep["id"] == "BENCH_mvcc"
assert rep["n"] >= 1 and rep["k"] >= 1 and rep["keep"] >= 1
req = {"mode", "readers", "queries", "failed", "writer_commits",
       "wall_seconds", "throughput_qps", "p50_us", "p95_us", "p99_us"}
modes = {}
assert rep["rows"], "no rows"
for row in rep["rows"]:
    assert req <= row.keys(), f"missing fields: {req - row.keys()}"
    assert row["failed"] == 0, f"failed snapshot queries: {row}"
    assert row["queries"] > 0 and row["readers"] > 0, f"empty phase: {row}"
    assert row["p50_us"] <= row["p95_us"] <= row["p99_us"], f"quantile order: {row}"
    modes[row["mode"]] = row
assert set(modes) == {"read_only", "with_writer"}, f"modes: {set(modes)}"
assert modes["with_writer"]["writer_commits"] > 0, "writer never committed"
ratio = rep["reader_p95_ratio"]
assert abs(ratio - modes["with_writer"]["p95_us"] / modes["read_only"]["p95_us"]) < 1e-9
assert ratio <= 1.25, \
    f"readers blocked by writer: p95 ratio {ratio:.3f} > 1.25"
print(f"validated MVCC rows: {modes['with_writer']['writer_commits']} commits "
      f"during reads, p95 ratio {ratio:.3f}")
EOF
