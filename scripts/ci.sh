#!/usr/bin/env bash
# Repo CI gate: formatting, lints, build, and the full test suite.
#
# Requires network access to the cargo registry (or a pre-populated
# vendor/registry cache). In the offline growth container, use
# target/devcheck/{build,test,itest}.sh instead, which compile the
# workspace crates directly with rustc against dependency shims.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings

# Tier-1 gate (ROADMAP.md).
cargo build --release
cargo test -q

# Concurrency gate: the sharded-pool / node-cache stress tests must run
# with the test harness's thread pool unconstrained so the schedules
# actually interleave (an inherited RUST_TEST_THREADS=1 would serialize
# them into meaninglessness). CI runners have real cores, so also opt in
# to the parallel-MBA wall-clock speedup assertion.
env -u RUST_TEST_THREADS ANN_ASSERT_SPEEDUP=1 \
  cargo test -q -p ann-store --test concurrent_pool
env -u RUST_TEST_THREADS ANN_ASSERT_SPEEDUP=1 \
  cargo test -q -p ann-core --test parallel

# Benches must at least compile; the scaling figure itself is run on
# demand (results/BENCH_*.json are committed artifacts).
cargo bench --no-run
