#!/usr/bin/env python3
"""Injects measured figure tables from results/*.json into EXPERIMENTS.md
between the MEASURED:BEGIN/END markers."""
import json, pathlib

ORDER = ["fig3a", "fig3a-synthetic", "fig3b", "fig4", "fig5", "fig6",
         "ablation-traversal", "ablation-mbr", "ablation-packing",
         "extra-mnn", "extra-hnn", "extra-parallel"]

PAPER = {
    "fig3a": "Paper: bars 0–1500 s on a 1.2 GHz Pentium M; BNN-MAXMAX slowest (~1300 s), switching to NXNDIST ≈ 6× for BNN/RBA and ~10× for MBA; MBA-NXNDIST fastest, ≥ 2× over GORDER.",
    "fig3a-synthetic": "Paper (§4.3, text only): \"similar results are also observed with the synthetic datasets\".",
    "fig3b": "Paper: GORDER improves rapidly from 1 MB to 4 MB then stabilizes; MBA consistently faster — ~2× at large pools, ~6× at 512 KB.",
    "fig4": "Paper: MBA ≈ 3× faster than GORDER at 2/4/6-D; CPU bars 15/33/38 s (MBA) vs 66/96/110 s (GORDER); both grow gently with D.",
    "fig5": "Paper: MBA over an order of magnitude faster than GORDER for every k in 10..50.",
    "fig6": "Paper: same as Fig. 5 on the 10-D FC data.",
    "ablation-traversal": "Paper (§3.3.2, text only): depth-first + bi-directional expansion \"proves to outperform the others\".",
    "ablation-mbr": "Paper (§3.2): the MBR enhancement is what makes the quadtree usable for ANN (plain quadrants ⇒ MINMINDIST 0 between neighbors).",
    "ablation-packing": "Our own design decision (DESIGN.md §6): adaptive multi-level node packing vs the naive one-decomposition-level-per-page quadtree layout.",
    "extra-mnn": "Paper (§2): MNN's \"CPU cost is still high because of the large number of distance calculations for each NN search\" — our extra measurement.",
    "extra-parallel": "Our own extension: thread scaling of `mba_parallel` (correctness is thread-count-invariant; the recording host had a single core, so no speedup is visible there).",
    "extra-hnn": "Paper (§2): HNN loses to index-building + BNN and \"is susceptible to poor performance on skewed data\" — our extra measurement.",
}

def render(fig):
    rows = fig["rows"]
    out = [f"### {fig['id']} — {fig['workload']}", "",
           PAPER.get(fig["id"], ""), "",
           "| group | method | cpu (s) | io (s) | total (s) | pages | dist-comps | enqueued |",
           "|---|---|---:|---:|---:|---:|---:|---:|"]
    for r in rows:
        total = r["cpu_seconds"] + r["io_seconds"]
        out.append(
            f"| {r['group']} | {r['label']} | {r['cpu_seconds']:.3f} | "
            f"{r['io_seconds']:.2f} | {total:.2f} | {r['physical_pages']} | "
            f"{r['distance_computations']} | {r['enqueued']} |")
    out.append("")
    return "\n".join(out)

results = pathlib.Path("results")
sections = []
for fid in ORDER:
    p = results / f"{fid}.json"
    if p.exists():
        sections.append(render(json.loads(p.read_text())))
body = "\n".join(sections)

exp = pathlib.Path("EXPERIMENTS.md").read_text()
begin, end = "<!-- MEASURED:BEGIN -->", "<!-- MEASURED:END -->"
pre = exp.split(begin)[0]
post = exp.split(end)[1]
pathlib.Path("EXPERIMENTS.md").write_text(pre + begin + "\n\n" + body + "\n" + end + post)
print("injected", len(sections), "figures")
