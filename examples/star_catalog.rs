//! Star-catalog analysis — the paper's TAC workload as an application.
//!
//! For every star in a (simulated) astrographic catalog, find its nearest
//! companion; stars closer than a threshold are flagged as double-star
//! candidates. This is a self-join ANN with self-matches excluded, the
//! exact query shape of the paper's Figure 3(a).
//!
//! ```sh
//! cargo run --release --example star_catalog [num_stars]
//! ```

use allnn::core::query::{run, Algorithm, AnnRequest, Input};
use allnn::core::SpatialIndex;
use allnn::mbrqt::{Mbrqt, MbrqtConfig};
use allnn::store::{BufferPool, MemDisk};
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(100_000);

    println!("generating a {n}-star catalog (RA/Dec degrees)...");
    let stars = allnn::datagen::tac_like(n, 7);

    let pool = Arc::new(BufferPool::new(MemDisk::new(), 64));
    let t0 = Instant::now();
    let index = Mbrqt::bulk_build(pool.clone(), &stars, &MbrqtConfig::default())?;
    println!(
        "built MBRQT over {} stars in {:.2?} ({} pages)",
        index.num_points(),
        t0.elapsed(),
        pool.num_pages()
    );

    let req = AnnRequest::new(Algorithm::mba()).exclude_self(true);
    let t0 = Instant::now();
    let output = run(&req, Input::Index(&index), Input::Index(&index))?;
    println!(
        "all-nearest-neighbor self-join in {:.2?} ({} distance computations)",
        t0.elapsed(),
        output.stats.distance_computations
    );

    // Separation histogram (log-spaced bins in arcseconds).
    let mut bins = [0usize; 7];
    let edges_arcsec = [1.0, 10.0, 60.0, 300.0, 900.0, 3600.0];
    for pair in &output.results {
        let arcsec = pair.dist * 3600.0;
        let bin = edges_arcsec.iter().position(|&e| arcsec < e).unwrap_or(6);
        bins[bin] += 1;
    }
    println!("\nnearest-companion separation histogram:");
    let labels = [
        "      < 1\"",
        "  1\" - 10\"",
        " 10\" - 1'",
        "  1' - 5'",
        "  5' - 15'",
        " 15' - 1°",
        "     >= 1°",
    ];
    for (label, count) in labels.iter().zip(&bins) {
        let bar = "#".repeat((count * 60 / output.results.len().max(1)).min(60));
        println!("  {label}: {count:>8} {bar}");
    }

    let close = bins[0] + bins[1];
    println!(
        "\n{} double-star candidates (companion within 10 arcseconds)",
        close
    );
    Ok(())
}
