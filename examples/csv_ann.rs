//! Run an AkNN join over your own data: points come from CSV files, the
//! neighbor pairs go back out as CSV. This is the path for running the
//! paper's experiments on the *real* TAC or Forest Cover files.
//!
//! ```sh
//! # self-join, k=1 (classic ANN, self-matches excluded):
//! cargo run --release --example csv_ann -- points.csv
//!
//! # R against S, 5 neighbors each, results to a file:
//! cargo run --release --example csv_ann -- r.csv s.csv --k 5 --out pairs.csv
//! ```
//!
//! Input lines hold 2 numeric columns (or 3 with a leading integer id);
//! `#` comments and blank lines are fine. For other dimensionalities,
//! change the `DIMS` constant and rebuild — dimensionality is a
//! compile-time constant throughout the library.

use allnn::core::query::{run, Algorithm, AnnRequest, Input};
use allnn::mbrqt::{Mbrqt, MbrqtConfig};
use allnn::store::{BufferPool, MemDisk};
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

const DIMS: usize = 2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut paths: Vec<String> = Vec::new();
    let mut k = 1usize;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--k" => k = args.next().ok_or("--k needs a value")?.parse()?,
            "--out" => out_path = Some(args.next().ok_or("--out needs a path")?),
            _ => paths.push(a),
        }
    }
    if paths.is_empty() || paths.len() > 2 {
        eprintln!("usage: csv_ann <r.csv> [s.csv] [--k K] [--out pairs.csv]");
        std::process::exit(2);
    }

    let r = allnn::datagen::io::read_csv::<DIMS, _>(&paths[0])?;
    let self_join = paths.len() == 1;
    let s = if self_join {
        r.clone()
    } else {
        allnn::datagen::io::read_csv::<DIMS, _>(&paths[1])?
    };
    eprintln!("loaded |R| = {}, |S| = {}", r.len(), s.len());

    let pool = Arc::new(BufferPool::new(MemDisk::new(), 1024));
    let t0 = Instant::now();
    let ir = Mbrqt::bulk_build(pool.clone(), &r, &MbrqtConfig::default())?;
    let is = Mbrqt::bulk_build(pool, &s, &MbrqtConfig::default())?;
    eprintln!("indices built in {:.2?}", t0.elapsed());

    let req = AnnRequest::new(Algorithm::mba()).k(k).exclude_self(self_join);
    let t0 = Instant::now();
    let mut out = run::<DIMS, _, _>(&req, Input::Index(&ir), Input::Index(&is))?;
    out.sort();
    eprintln!(
        "join done in {:.2?}: {} pairs, {} distance computations",
        t0.elapsed(),
        out.results.len(),
        out.stats.distance_computations
    );

    let mut sink: Box<dyn Write> = match out_path {
        Some(p) => Box::new(std::io::BufWriter::new(std::fs::File::create(p)?)),
        None => Box::new(std::io::BufWriter::new(std::io::stdout())),
    };
    writeln!(sink, "# r_id,s_id,distance")?;
    for pair in &out.results {
        writeln!(sink, "{},{},{}", pair.r_oid, pair.s_oid, pair.dist)?;
    }
    sink.flush()?;
    Ok(())
}
