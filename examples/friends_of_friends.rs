//! Friends-of-friends group finding over AkNN — the N-body use case the
//! paper cites (Eisenstein & Hut's HOP group finder for astrophysical
//! simulations).
//!
//! Particles closer than a linking length belong to the same group. The
//! classical FoF algorithm needs, for every particle, all neighbors within
//! the linking length; running AkNN with a modest `k` and keeping the
//! pairs below the linking length approximates it well when the linking
//! length is chosen near the percolation scale.
//!
//! ```sh
//! cargo run --release --example friends_of_friends [num_particles]
//! ```

use allnn::core::query::{run, Algorithm, AnnRequest, Input};
use allnn::mbrqt::{Mbrqt, MbrqtConfig};
use allnn::store::{BufferPool, MemDisk};
use std::sync::Arc;
use std::time::Instant;

struct Dsu(Vec<u32>);

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu((0..n as u32).collect())
    }
    fn find(&mut self, mut x: u32) -> u32 {
        while self.0[x as usize] != x {
            self.0[x as usize] = self.0[self.0[x as usize] as usize];
            x = self.0[x as usize];
        }
        x
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.0[ra as usize] = rb;
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(50_000);

    // 3-D "simulation snapshot": particles clumped into halos over a
    // diffuse background.
    let particles = allnn::datagen::gaussian_clusters::<3>(n, 40, 0.01, 2024);

    // Linking length: a fraction of the mean inter-particle spacing
    // (b = 0.2 is the standard FoF choice).
    let mean_spacing = 1.0 / (n as f64).powf(1.0 / 3.0);
    let linking_length = 0.6 * mean_spacing;

    let pool = Arc::new(BufferPool::new(MemDisk::new(), 256));
    let index = Mbrqt::bulk_build(pool, &particles, &MbrqtConfig::default())?;

    let req = AnnRequest::new(Algorithm::mba()).k(16).exclude_self(true);
    let t0 = Instant::now();
    let output = run(&req, Input::Index(&index), Input::Index(&index))?;
    println!(
        "AkNN (k=16) over {n} particles in {:.2?}; linking length {:.4}",
        t0.elapsed(),
        linking_length
    );

    let mut dsu = Dsu::new(n);
    let mut links = 0usize;
    for pair in &output.results {
        if pair.dist <= linking_length {
            dsu.union(pair.r_oid as u32, pair.s_oid as u32);
            links += 1;
        }
    }

    let mut sizes = std::collections::HashMap::new();
    for i in 0..n as u32 {
        *sizes.entry(dsu.find(i)).or_insert(0usize) += 1;
    }
    let mut groups: Vec<usize> = sizes.into_values().filter(|&s| s >= 10).collect();
    groups.sort_unstable_by(|a, b| b.cmp(a));

    println!("{links} links below the linking length");
    println!(
        "{} groups with >= 10 particles; ten most massive: {:?}",
        groups.len(),
        &groups[..groups.len().min(10)]
    );
    Ok(())
}
