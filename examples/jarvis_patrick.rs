//! Jarvis-Patrick clustering on top of the AkNN primitive.
//!
//! The paper's introduction motivates AkNN with exactly this algorithm:
//! "A related problem, called AkNN, which reports the kNN for each data
//! point, is directly used in the Jarvis-Patrick Clustering algorithm."
//!
//! Jarvis-Patrick: compute each point's k nearest neighbors; two points
//! join the same cluster when each is in the other's neighbor list and
//! they share at least `j` common neighbors.
//!
//! ```sh
//! cargo run --release --example jarvis_patrick [num_points]
//! ```

use allnn::core::query::{run, Algorithm, AnnRequest, Input};
use allnn::mbrqt::{Mbrqt, MbrqtConfig};
use allnn::store::{BufferPool, MemDisk};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

const K: usize = 12; // neighbor list length
const J: usize = 4; // required common neighbors

/// Union-find with path halving.
struct Dsu(Vec<u32>);

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu((0..n as u32).collect())
    }
    fn find(&mut self, mut x: u32) -> u32 {
        while self.0[x as usize] != x {
            self.0[x as usize] = self.0[self.0[x as usize] as usize];
            x = self.0[x as usize];
        }
        x
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.0[ra as usize] = rb;
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(20_000);

    // Clustered synthetic data: Jarvis-Patrick should rediscover the
    // generator's clusters.
    let points = allnn::datagen::gaussian_clusters::<2>(n, 12, 0.015, 99);

    // Step 1: AkNN via the paper's MBA algorithm.
    let pool = Arc::new(BufferPool::new(MemDisk::new(), 256));
    let index = Mbrqt::bulk_build(pool, &points, &MbrqtConfig::default())?;
    let req = AnnRequest::new(Algorithm::mba()).k(K).exclude_self(true);
    let t0 = Instant::now();
    let output = run(&req, Input::Index(&index), Input::Index(&index))?;
    println!(
        "AkNN (k={K}) over {n} points in {:.2?} — {} neighbor pairs",
        t0.elapsed(),
        output.results.len()
    );

    // Step 2: neighbor lists.
    let mut neighbors: HashMap<u64, Vec<u64>> = HashMap::with_capacity(n);
    for pair in &output.results {
        neighbors.entry(pair.r_oid).or_default().push(pair.s_oid);
    }

    // Step 3: Jarvis-Patrick linking.
    let t0 = Instant::now();
    let mut dsu = Dsu::new(n);
    let empty: Vec<u64> = Vec::new();
    for (&p, nbrs) in &neighbors {
        for &q in nbrs {
            if q <= p {
                continue; // each unordered pair once
            }
            let q_nbrs = neighbors.get(&q).unwrap_or(&empty);
            // Mutual kNN requirement.
            if !q_nbrs.contains(&p) {
                continue;
            }
            // Shared-neighbor count.
            let shared = nbrs.iter().filter(|x| q_nbrs.contains(x)).count();
            if shared >= J {
                dsu.union(p as u32, q as u32);
            }
        }
    }

    // Collect cluster sizes.
    let mut sizes: HashMap<u32, usize> = HashMap::new();
    for i in 0..n as u32 {
        *sizes.entry(dsu.find(i)).or_insert(0) += 1;
    }
    let mut sizes: Vec<usize> = sizes.into_values().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let singletons = sizes.iter().filter(|&&s| s == 1).count();

    println!("Jarvis-Patrick linking in {:.2?}", t0.elapsed());
    println!(
        "{} clusters ({} singletons/noise); ten largest: {:?}",
        sizes.len(),
        singletons,
        &sizes[..sizes.len().min(10)]
    );
    Ok(())
}
