//! Quickstart: index two point sets and evaluate the all-nearest-neighbor
//! join through the unified query API, with an execution trace attached.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use allnn::geom::Point;
use allnn::mbrqt::{Mbrqt, MbrqtConfig};
use allnn::prelude::*;
use allnn::store::{BufferPool, MemDisk};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A buffer pool of 64 8-KiB frames (the paper's 512 KiB configuration)
    // over an in-memory disk. Swap `MemDisk` for `FileDisk::create(path)?`
    // to put the indices in a real file.
    let pool = Arc::new(BufferPool::new(MemDisk::new(), 64));

    // The query set R: a small grid of sensors.
    let sensors: Vec<(u64, Point<2>)> = (0..100)
        .map(|i| {
            let (x, y) = (i % 10, i / 10);
            (i, Point::new([x as f64 * 10.0, y as f64 * 10.0]))
        })
        .collect();

    // The target set S: synthetic "events" scattered over the same area.
    let events = allnn::datagen::uniform::<2>(5_000, 42)
        .into_iter()
        .map(|(oid, p)| (oid, Point::new([p[0] * 90.0, p[1] * 90.0])))
        .collect::<Vec<_>>();

    // Disk-resident MBRQT indices over both sets.
    let sensor_index = Mbrqt::bulk_build(pool.clone(), &sensors, &MbrqtConfig::default())?;
    let event_index = Mbrqt::bulk_build(pool.clone(), &events, &MbrqtConfig::default())?;

    // For every sensor, the nearest event — one request, one call. Attach
    // a RecordingSink to capture a structured execution report; drop the
    // `.trace(..)` line and the run is bit-identical with zero overhead.
    let sink = RecordingSink::new();
    let mut output = AnnRequest::new(Algorithm::mba())
        .k(1)
        .metric(MetricChoice::Nxn)
        .trace(&sink)
        .run(Input::Index(&sensor_index), Input::Index(&event_index))?;
    output.sort();

    println!(
        "nearest event per sensor (first 10 of {}):",
        output.results.len()
    );
    for pair in output.results.iter().take(10) {
        println!(
            "  sensor #{:<3} -> event #{:<4} at distance {:.3}",
            pair.r_oid, pair.s_oid, pair.dist
        );
    }

    let st = &output.stats;
    println!("\nwork done:");
    println!("  distance computations : {}", st.distance_computations);
    println!("  queue entries created : {}", st.enqueued);
    println!(
        "  page reads            : {} logical / {} physical",
        st.io.logical_reads, st.io.physical_reads
    );

    // The execution report: phase wall times with I/O deltas, per-level
    // expansion histograms, pruning breakdown — serializable to JSON.
    println!("\nexecution report:\n{}", sink.report("quickstart").to_json());
    Ok(())
}
