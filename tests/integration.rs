//! Cross-crate integration tests: the whole stack — generators, storage,
//! both indices, every join algorithm — exercised together through the
//! `allnn` facade.


// The per-algorithm entrypoints these tests drive are deprecated thin
// delegates now; exercising them here is the point (they must stay
// identical to the canonical `query::run` path).
#![allow(deprecated)]
use allnn::core::bnn::{bnn, BnnConfig};
use allnn::core::brute::brute_force_aknn;
use allnn::core::hnn::{hnn, HnnConfig};
use allnn::core::index::validate;
use allnn::core::mba::{mba, MbaConfig};
use allnn::core::mnn::{mnn, MnnConfig};
use allnn::core::stats::NeighborPair;
use allnn::geom::NxnDist;
use allnn::gorder::{gorder_join, GorderConfig};
use allnn::mbrqt::{Mbrqt, MbrqtConfig};
use allnn::rstar::{RStar, RStarConfig};
use allnn::store::{BufferPool, FileDisk, MemDisk};
use std::sync::Arc;

fn canonical(mut pairs: Vec<NeighborPair>) -> Vec<(u64, f64)> {
    pairs.sort_by(|a, b| {
        (a.r_oid, a.dist, a.s_oid)
            .partial_cmp(&(b.r_oid, b.dist, b.s_oid))
            .unwrap()
    });
    // Compare on (query, distance) — neighbor ids can differ on exact
    // distance ties.
    pairs.into_iter().map(|p| (p.r_oid, p.dist)).collect()
}

/// Asserts two canonical result lists agree up to floating-point noise
/// (GORDER computes distances in the rotated PCA space, so the last few
/// bits can differ from a direct evaluation).
fn assert_agrees(got: &[(u64, f64)], want: &[(u64, f64)], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: count");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.0, w.0, "{label}: query order");
        assert!(
            (g.1 - w.1).abs() <= 1e-9 * (1.0 + w.1),
            "{label}: query {} got {} want {}",
            g.0,
            g.1,
            w.1
        );
    }
}

/// Every implemented method must agree on a realistic clustered workload.
#[test]
fn all_six_methods_agree() {
    let data = allnn::datagen::tac_like(3_000, 5);
    let k = 3;
    let truth = canonical(brute_force_aknn(&data, &data, k, true));

    let pool = Arc::new(BufferPool::new(MemDisk::new(), 256));
    let qt = Mbrqt::bulk_build(pool.clone(), &data, &MbrqtConfig::default()).unwrap();
    let rs = RStar::bulk_build(pool.clone(), &data, &RStarConfig::default()).unwrap();

    let mba_cfg = MbaConfig {
        k,
        exclude_self: true,
        ..Default::default()
    };
    let mba_out = mba::<2, NxnDist, _, _>(&qt, &qt, &mba_cfg).unwrap();
    assert_agrees(&canonical(mba_out.results), &truth, "MBA");

    let rba_out = mba::<2, NxnDist, _, _>(&rs, &rs, &mba_cfg).unwrap();
    assert_agrees(&canonical(rba_out.results), &truth, "RBA");

    let bnn_out = bnn::<2, NxnDist, _>(
        &data,
        &rs,
        &BnnConfig {
            k,
            group_size: 128,
            exclude_self: true,
        },
    )
    .unwrap();
    assert_agrees(&canonical(bnn_out.results), &truth, "BNN");

    let mnn_out = mnn::<2, NxnDist, _, _>(
        &qt,
        &rs,
        &MnnConfig {
            k,
            exclude_self: true,
        },
    )
    .unwrap();
    assert_agrees(&canonical(mnn_out.results), &truth, "MNN");

    let g_out = gorder_join(
        &data,
        &data,
        pool,
        &GorderConfig {
            k,
            exclude_self: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_agrees(&canonical(g_out.results), &truth, "GORDER");

    let h_out = hnn(
        &data,
        &data,
        &HnnConfig {
            k,
            exclude_self: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_agrees(&canonical(h_out.results), &truth, "HNN");
}

/// The full pipeline on a real file-backed disk: build, flush, reopen from
/// the meta pages, query — results must match brute force.
#[test]
fn file_backed_end_to_end() {
    let dir = std::env::temp_dir().join(format!("allnn-int-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("catalog.pages");

    let data = allnn::datagen::gaussian_clusters::<2>(2_000, 10, 0.02, 3);
    let truth = canonical(brute_force_aknn(&data, &data, 1, true));

    let (qt_meta, rs_meta);
    {
        let pool = Arc::new(BufferPool::new(FileDisk::create(&path).unwrap(), 64));
        let qt = Mbrqt::bulk_build(pool.clone(), &data, &MbrqtConfig::default()).unwrap();
        let rs = RStar::bulk_build(pool.clone(), &data, &RStarConfig::default()).unwrap();
        qt_meta = qt.meta_page();
        rs_meta = rs.meta_page();
        pool.flush_all().unwrap();
    } // drop everything: cold restart

    let pool = Arc::new(BufferPool::new(FileDisk::open(&path).unwrap(), 64));
    let qt: Mbrqt<2> = Mbrqt::open(pool.clone(), qt_meta).unwrap();
    let rs: RStar<2> = RStar::open(pool.clone(), rs_meta).unwrap();
    assert_eq!(validate(&qt).unwrap().objects, 2_000);
    assert_eq!(validate(&rs).unwrap().objects, 2_000);

    let cfg = MbaConfig {
        exclude_self: true,
        ..Default::default()
    };
    pool.clear().unwrap(); // cold cache for the query phase
    let out = mba::<2, NxnDist, _, _>(&qt, &rs, &cfg).unwrap();
    assert_agrees(&canonical(out.results), &truth, "file-backed");
    assert!(out.stats.io.physical_reads > 0, "cold start must hit disk");

    std::fs::remove_dir_all(&dir).ok();
}

/// Results must be identical regardless of buffer pool size, for every
/// method (the pool only changes *when* pages are fetched).
#[test]
fn results_independent_of_pool_size() {
    let data = allnn::datagen::fc_like(1_500, 9);
    let mut reference: Option<Vec<(u64, f64)>> = None;
    for frames in [8usize, 64, 1024] {
        let pool = Arc::new(BufferPool::new(MemDisk::new(), frames));
        let qt = Mbrqt::bulk_build(pool.clone(), &data, &MbrqtConfig::default()).unwrap();
        let cfg = MbaConfig {
            k: 2,
            exclude_self: true,
            ..Default::default()
        };
        let out = mba::<10, NxnDist, _, _>(&qt, &qt, &cfg).unwrap();
        let canon = canonical(out.results);
        match &reference {
            None => reference = Some(canon),
            Some(r) => assert_agrees(&canon, r, &format!("pool size {frames}")),
        }
    }
}

/// The two indices may live in *separate* pools (e.g. different devices);
/// I/O is then accounted across both.
#[test]
fn separate_pools_per_index() {
    let r = allnn::datagen::uniform::<2>(1_000, 4);
    let s = allnn::datagen::uniform::<2>(1_000, 5);
    let pool_r = Arc::new(BufferPool::new(MemDisk::new(), 16));
    let pool_s = Arc::new(BufferPool::new(MemDisk::new(), 16));
    let ir = Mbrqt::bulk_build(pool_r, &r, &MbrqtConfig::default()).unwrap();
    let is = Mbrqt::bulk_build(pool_s, &s, &MbrqtConfig::default()).unwrap();
    let out = mba::<2, NxnDist, _, _>(&ir, &is, &MbaConfig::default()).unwrap();
    let truth = canonical(brute_force_aknn(&r, &s, 1, false));
    assert_agrees(&canonical(out.results), &truth, "separate pools");
    assert!(out.stats.io.logical_reads > 0);
}

/// Table 2 scale sanity: a mid-sized TAC-like AkNN run completes and
/// produces exactly k results per star.
#[test]
fn aknn_produces_k_results_per_query() {
    let data = allnn::datagen::tac_like(5_000, 77);
    let pool = Arc::new(BufferPool::new(MemDisk::new(), 256));
    let qt = Mbrqt::bulk_build(pool, &data, &MbrqtConfig::default()).unwrap();
    for k in [1usize, 10] {
        let cfg = MbaConfig {
            k,
            exclude_self: true,
            ..Default::default()
        };
        let out = mba::<2, NxnDist, _, _>(&qt, &qt, &cfg).unwrap();
        assert_eq!(out.results.len(), 5_000 * k);
        // Per-query counts.
        let mut counts = std::collections::HashMap::new();
        for p in &out.results {
            *counts.entry(p.r_oid).or_insert(0usize) += 1;
            assert_ne!(p.r_oid, p.s_oid, "self-match leaked");
        }
        assert!(counts.values().all(|&c| c == k));
    }
}
