//! Facade crate re-exporting the full all-nearest-neighbor toolkit.
pub use ann_core as core;
pub use ann_datagen as datagen;
pub use ann_geom as geom;
pub use ann_gorder as gorder;
pub use ann_mbrqt as mbrqt;
pub use ann_rstar as rstar;
pub use ann_serve as serve;
pub use ann_store as store;

/// The common-case imports: unified query API, tracing, and the
/// [`ann_core::SpatialIndex`] trait. `use allnn::prelude::*;`.
pub mod prelude {
    pub use ann_core::prelude::*;
}
