//! Minimal HTTP/1.1 framing over a [`TcpStream`] — just enough protocol
//! for the ANN service, hand-rolled in keeping with the repo's
//! zero-dependency rule.
//!
//! Supported: request-line + header parsing, `Content-Length` bodies,
//! keep-alive connection reuse, and fixed-status responses. Deliberately
//! absent: chunked transfer encoding, multipart, compression, TLS — a
//! production deployment would sit this behind a terminating proxy.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers). A head
/// larger than this is rejected rather than buffered without bound.
const MAX_HEAD: usize = 16 * 1024;

/// Upper bound on a request body. Collection creation ships the full
/// point set inline, so this is sized for ~1M points of JSON rather
/// than for queries (which are tiny).
const MAX_BODY: usize = 64 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Path component, without the query string.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// First value of query parameter `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Whether boolean-ish query flag `key` is set (`1`, `true`, `yes`,
    /// or present with no value).
    pub fn query_flag(&self, key: &str) -> bool {
        self.query_param(key)
            .is_some_and(|v| v.is_empty() || v == "1" || v == "true" || v == "yes")
    }

    /// Body as UTF-8, or `None` if it is not valid UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Reads one request from `stream`.
///
/// Returns `Ok(None)` on a clean EOF before any bytes of a new request
/// (the client closed a keep-alive connection), and `Err` on a malformed
/// or oversized request.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Option<Request>> {
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 1024];
    let split; // index just past the \r\n\r\n terminator
    let spill: Vec<u8>; // body bytes read together with the head
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            if head.is_empty() {
                return Ok(None);
            }
            return Err(bad("connection closed mid-request"));
        }
        head.extend_from_slice(&buf[..n]);
        if let Some(pos) = find_head_end(&head) {
            split = pos;
            spill = head.split_off(split);
            head.truncate(split.saturating_sub(4) + 4);
            break;
        }
        if head.len() > MAX_HEAD {
            return Err(bad("request head too large"));
        }
    }

    let head_str = std::str::from_utf8(&head[..split]).map_err(|_| bad("non-UTF-8 head"))?;
    let mut lines = head_str.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or_else(|| bad("missing method"))?;
    let target = parts.next().ok_or_else(|| bad("missing path"))?;
    let version = parts.next().unwrap_or("HTTP/1.0");

    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive; only `Connection: close` opts out.
    let mut keep_alive = version == "HTTP/1.1";
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad("malformed header line"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse::<usize>()
                .map_err(|_| bad("bad Content-Length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(bad("chunked bodies not supported"));
        }
    }
    if content_length > MAX_BODY {
        return Err(bad("request body too large"));
    }

    let mut body = spill;
    if body.len() > content_length {
        return Err(bad("body longer than Content-Length"));
    }
    let mut remaining = content_length - body.len();
    body.reserve(remaining);
    while remaining > 0 {
        let want = remaining.min(buf.len());
        let n = stream.read(&mut buf[..want])?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(&buf[..n]);
        remaining -= n;
    }

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();

    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
        body,
        keep_alive,
    }))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Canonical reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        499 => "Client Closed Request",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one `application/json` response. `keep_alive` echoes the
/// request's connection preference back in the `Connection` header.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn reason_phrases_cover_error_codes() {
        use ann_core::wire::ErrorCode;
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::Cancelled,
            ErrorCode::DeadlineExceeded,
            ErrorCode::VisitBudgetExhausted,
            ErrorCode::IoBudgetExhausted,
            ErrorCode::StorageFailed,
            ErrorCode::CollectionNotFound,
            ErrorCode::CollectionExists,
            ErrorCode::InvalidCollection,
            ErrorCode::Overloaded,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
        ] {
            assert_ne!(reason(code.http_status()), "Unknown", "{code:?}");
        }
    }
}
