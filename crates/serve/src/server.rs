//! The ANN server: acceptor, per-connection threads, and the bounded
//! query worker pool.
//!
//! # Threading model
//!
//! Three thread families (DESIGN.md §14):
//!
//! * **one acceptor** blocks on [`TcpListener::accept`] and spawns a
//!   connection thread per client;
//! * **one connection thread per client** parses HTTP, serves the cheap
//!   control-plane routes inline, and *submits* queries to the worker
//!   pool, then waits for the reply while polling its socket for
//!   disconnect;
//! * **N query workers** (the only threads that touch an index) each own
//!   a [`QueryScratch`] reused across every query they run, so the
//!   steady-state data plane allocates nothing per request.
//!
//! # Admission control
//!
//! The submit queue is bounded: when `queue_depth` queries are already
//! waiting, new ones are rejected immediately with HTTP 429
//! ([`ErrorCode::Overloaded`]) instead of building an unbounded backlog —
//! the client owns the retry decision.
//!
//! # Cancellation on disconnect
//!
//! Every query gets a fresh [`CancelToken`] shared between the worker
//! and the connection thread. While the worker runs, the connection
//! thread `peek`s its socket every few milliseconds; a clean EOF there
//! means the client is gone, so it fires the token and the traversal
//! aborts at its next node expansion with all buffer-pool pins released
//! (the PR 7 clean-abort contract, asserted by the disconnect test).

use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ann_core::query::{run_scratch, Algorithm, AnnRequest, Input};
use ann_core::resilience::CancelToken;
use ann_core::scratch::QueryScratch;
use ann_core::snapshot::ReadContext;
use ann_core::stats::AnnOutput;
use ann_core::trace::RecordingSink;
use ann_core::wire::{CollectionId, ErrorCode, JsonValue, QueryOutcome, QuerySpec};
use ann_core::QueryResult;
use ann_geom::Point;

use crate::http::{read_request, write_response, Request};
use crate::metrics::Metrics;
use crate::registry::{AnyIndex, ApiError, Backing, Collection, IndexKind, Registry, SERVE_DIMS};

/// How often a waiting connection thread polls its socket for client
/// disconnect (and re-checks the reply channel).
const DISCONNECT_POLL: Duration = Duration::from_millis(10);

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Query worker threads (the data-plane parallelism).
    pub workers: usize,
    /// Maximum queries waiting for a worker before 429s start.
    pub queue_depth: usize,
    /// Directory holding collection files and sidecars.
    pub data_dir: PathBuf,
    /// Buffer-pool frames per collection.
    pub pool_frames: usize,
    /// Extra intra-query compute tokens shared by every worker. A worker
    /// always owns one implicit token for the query it runs; a query
    /// asking for `threads = n` grabs up to `n - 1` extras from this
    /// global pool (non-blocking — whatever it gets bounds its fan-out),
    /// so `workers × threads` can never oversubscribe the box. `0` means
    /// auto: whatever `available_parallelism` leaves beyond `workers`.
    pub compute_tokens: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            data_dir: PathBuf::from("ann-serve-data"),
            pool_frames: 256,
            compute_tokens: 0,
        }
    }
}

/// Global intra-query compute budget (DESIGN.md §16).
///
/// Counts the *extra* worker threads (beyond the query worker itself)
/// currently granted to in-flight queries. Admission is non-blocking:
/// a query wanting `n` threads takes `min(n - 1, available)` extras and
/// runs with what it got — degrading toward serial under load instead
/// of queueing, so a burst of `threads=8` requests cannot stack up
/// `workers × 8` runnable threads.
struct ComputeTokens {
    total: usize,
    avail: AtomicUsize,
    /// High-water mark of simultaneously granted tokens (test
    /// observability: asserts the cap was never pierced).
    high_water: AtomicUsize,
}

impl ComputeTokens {
    fn new(total: usize) -> Self {
        ComputeTokens {
            total,
            avail: AtomicUsize::new(total),
            high_water: AtomicUsize::new(0),
        }
    }

    /// Takes up to `want` tokens, returning how many were granted
    /// (possibly zero). Never blocks.
    fn try_take(&self, want: usize) -> usize {
        let mut cur = self.avail.load(Ordering::Relaxed);
        loop {
            let take = cur.min(want);
            if take == 0 {
                return 0;
            }
            match self.avail.compare_exchange_weak(
                cur,
                cur - take,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.high_water
                        .fetch_max(self.total - (cur - take), Ordering::AcqRel);
                    return take;
                }
                Err(now) => cur = now,
            }
        }
    }

    fn put(&self, n: usize) {
        if n > 0 {
            self.avail.fetch_add(n, Ordering::AcqRel);
        }
    }
}

/// A point-in-time view of the compute-token pool (for tests and ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeTokenStats {
    /// Pool capacity (extra threads beyond the worker pool).
    pub total: usize,
    /// Tokens currently available.
    pub available: usize,
    /// Most tokens ever granted simultaneously.
    pub high_water: usize,
}

/// One queued query: everything a worker needs, plus the reply channel.
struct Job {
    r: Arc<Collection>,
    s: Arc<Collection>,
    spec: QuerySpec,
    trace: bool,
    cancel: CancelToken,
    reply: mpsc::Sender<Result<String, ApiError>>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The bounded submit queue between connection threads and workers.
struct WorkQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    cap: usize,
}

enum SubmitError {
    Full,
    Closed,
}

impl WorkQueue {
    fn new(cap: usize) -> Self {
        WorkQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Non-blocking admission: `Full` is the 429 path.
    fn try_submit(&self, job: Job) -> Result<(), (Job, SubmitError)> {
        let mut st = lock(&self.state);
        if st.closed {
            return Err((job, SubmitError::Closed));
        }
        if st.jobs.len() >= self.cap {
            return Err((job, SubmitError::Full));
        }
        st.jobs.push_back(job);
        drop(st);
        self.cond.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` means the queue is closed and
    /// drained, i.e. the worker should exit.
    fn pop(&self) -> Option<Job> {
        let mut st = lock(&self.state);
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self
                .cond
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: pending jobs are failed with `ShuttingDown`,
    /// blocked workers wake and exit once drained.
    fn close(&self) {
        let drained: Vec<Job> = {
            let mut st = lock(&self.state);
            st.closed = true;
            st.jobs.drain(..).collect()
        };
        self.cond.notify_all();
        for job in drained {
            let _ = job.reply.send(Err(ApiError::new(
                ErrorCode::ShuttingDown,
                "server is shutting down",
            )));
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Shared server context, one `Arc` per thread.
struct Ctx {
    registry: Registry,
    metrics: Metrics,
    queue: WorkQueue,
    compute: ComputeTokens,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// A running server. Dropping the handle does *not* stop it; call
/// [`shutdown`](Server::shutdown) (or POST `/admin/shutdown`) first.
pub struct Server {
    ctx: Arc<Ctx>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and acceptor, and returns
    /// immediately. The bound address (with the resolved ephemeral port)
    /// is [`addr`](Server::addr).
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let registry = Registry::open(&config.data_dir, config.pool_frames)?;
        let workers_n = config.workers.max(1);
        let tokens = if config.compute_tokens == 0 {
            std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get)
                .saturating_sub(workers_n)
        } else {
            config.compute_tokens
        };
        let ctx = Arc::new(Ctx {
            registry,
            metrics: Metrics::new(),
            queue: WorkQueue::new(config.queue_depth),
            compute: ComputeTokens::new(tokens),
            shutdown: AtomicBool::new(false),
            addr,
        });

        let workers = (0..workers_n)
            .map(|i| {
                let ctx = Arc::clone(&ctx);
                std::thread::Builder::new()
                    .name(format!("ann-serve-worker-{i}"))
                    .spawn(move || worker_loop(&ctx))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let acceptor = {
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name("ann-serve-acceptor".to_string())
                .spawn(move || acceptor_loop(listener, &ctx))?
        };

        Ok(Server {
            ctx,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.ctx.addr
    }

    /// The collection registry (tests reach through this to assert pool
    /// state, e.g. `pinned_frames() == 0` after a disconnect).
    pub fn registry(&self) -> &Registry {
        &self.ctx.registry
    }

    /// The server metrics block.
    pub fn metrics(&self) -> &Metrics {
        &self.ctx.metrics
    }

    /// A snapshot of the intra-query compute-token pool (tests assert
    /// the high-water mark never exceeds the configured cap and that
    /// every grant is returned).
    pub fn compute_token_stats(&self) -> ComputeTokenStats {
        ComputeTokenStats {
            total: self.ctx.compute.total,
            available: self.ctx.compute.avail.load(Ordering::Acquire),
            high_water: self.ctx.compute.high_water.load(Ordering::Acquire),
        }
    }

    /// Whether shutdown has been requested (by [`shutdown`](Server::shutdown)
    /// or the `/admin/shutdown` route).
    pub fn is_shutting_down(&self) -> bool {
        self.ctx.shutdown.load(Ordering::Acquire)
    }

    /// Initiates shutdown and joins the acceptor and workers. Pending
    /// queued queries are failed with `ShuttingDown`; in-flight ones run
    /// to completion. Connection threads exit as their clients hang up.
    pub fn shutdown(mut self) {
        initiate_shutdown(&self.ctx);
        self.join();
    }

    /// Blocks until shutdown is triggered elsewhere (the
    /// `/admin/shutdown` route) and the acceptor and workers have
    /// exited. This is the binary's main-thread parking spot.
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Sets the shutdown flag, closes the queue, and pokes the acceptor
/// awake with a throwaway connection.
fn initiate_shutdown(ctx: &Ctx) {
    if ctx.shutdown.swap(true, Ordering::AcqRel) {
        return; // already shutting down
    }
    ctx.queue.close();
    let _ = TcpStream::connect(ctx.addr);
}

fn acceptor_loop(listener: TcpListener, ctx: &Arc<Ctx>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if ctx.shutdown.load(Ordering::Acquire) {
            return;
        }
        let ctx = Arc::clone(ctx);
        // Connection threads are detached: they exit when their client
        // hangs up (or after the post-shutdown response they serve).
        let _ = std::thread::Builder::new()
            .name("ann-serve-conn".to_string())
            .spawn(move || connection_loop(stream, &ctx));
    }
}

fn worker_loop(ctx: &Ctx) {
    // The per-worker scratch: reused across every query this worker
    // runs, so steady-state serving does not allocate per request.
    let mut scratch = QueryScratch::<SERVE_DIMS>::new();
    while let Some(job) = ctx.queue.pop() {
        let result = execute(&job, &mut scratch, ctx);
        // A send error means the connection thread is gone (client
        // disconnected and the handler returned); nothing to do.
        let _ = job.reply.send(result);
    }
}

/// Runs one query on a worker thread and serializes the outcome.
///
/// Versioned collections are queried through pinned [`ReadContext`]s:
/// the R side pins `spec.version` (latest when unset), the S side pins
/// latest — except for a self-join, which *shares* R's pin so both sides
/// observe the same version even while a writer commits mid-query. Plain
/// (pre-versioning) collections are queried directly and reject explicit
/// version requests.
fn execute(
    job: &Job,
    scratch: &mut QueryScratch<SERVE_DIMS>,
    ctx: &Ctx,
) -> Result<String, ApiError> {
    let metrics = &ctx.metrics;
    let started = Instant::now();
    let sink = RecordingSink::new();
    let mut req: AnnRequest<'_> = job.spec.to_request();
    req = req.cancel_token(job.cancel.clone());
    if job.trace {
        req = req.trace(&sink);
    }
    let r_pin = match &job.r.backing {
        Backing::Versioned { .. } => Some(job.r.pin(job.spec.version)?),
        // `pin` on a plain collection produces the "not versioned"
        // BadRequest; only reach it when a version was actually asked.
        Backing::Plain(_) if job.spec.version.is_some() => {
            return Err(job.r.pin(job.spec.version).expect_err("plain pin fails"))
        }
        Backing::Plain(_) => None,
    };
    let self_join = Arc::ptr_eq(&job.r, &job.s);
    let s_pin = match &job.s.backing {
        Backing::Versioned { .. } if !self_join => Some(job.s.pin(None)?),
        _ => None,
    };
    let served_version = r_pin.as_ref().map(ReadContext::version);
    let r_side = side_of(&job.r, r_pin.as_ref());
    let s_side = if self_join {
        r_side
    } else {
        side_of(&job.s, s_pin.as_ref())
    };
    // Intra-query parallelism rides on compute tokens: this worker is
    // one implicit token, and the spec's `threads` asks for extras from
    // the global pool. Whatever the pool grants bounds the fan-out —
    // under contention a query silently degrades toward serial rather
    // than oversubscribing the box. Grabbed after the pin fallible
    // section so every early return above cannot strand a grant.
    //
    // The MBA variant carries its own wire-level `threads` knob that the
    // core falls back to whenever the request-level value is 1, so fold
    // it into the ask and overwrite it with the grant below — otherwise
    // a body like {"algorithm":{"name":"mba",...,"threads":N}} with no
    // top-level field would bypass the compute-token clamp entirely.
    let asked = match job.spec.threads {
        1 => match job.spec.algorithm {
            Algorithm::Mba { threads, .. } => threads,
            _ => 1,
        },
        n => n,
    };
    let wanted = match asked {
        1 => 1,
        n => ann_core::morsel::resolve_threads(n),
    };
    let extra = if wanted > 1 {
        ctx.compute.try_take(wanted - 1)
    } else {
        0
    };
    let granted = 1 + extra;
    req = req.threads(granted);
    if let Algorithm::Mba { ref mut threads, .. } = req.algorithm {
        *threads = granted;
    }
    // A panic inside the traversal must not kill this worker thread
    // (workers are never respawned) or strand the granted tokens; the
    // unwind surfaces to the client as a typed internal error instead.
    let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_sides(r_side, s_side, &req, scratch)
    }));
    ctx.compute.put(extra);
    let ran = match ran {
        Ok(ran) => ran,
        Err(_) => {
            return Err(ApiError::new(
                ErrorCode::Internal,
                "query execution panicked; the worker recovered",
            ))
        }
    };
    match ran {
        Ok(out) => {
            metrics.record_query(started.elapsed(), &out.stats);
            // The unified entrypoint returns canonical (r_oid, dist,
            // s_oid) order at every thread count, so the response bytes
            // are already independent of the granted fan-out.
            let mut outcome = QueryOutcome::from(out);
            outcome.version = served_version;
            if job.trace {
                outcome = outcome.with_report(sink.report(&format!(
                    "serve:{}:{}",
                    job.r.id,
                    job.spec.algorithm.name()
                )));
            }
            Ok(outcome.to_json())
        }
        Err(e) => {
            if job.cancel.is_cancelled() {
                metrics.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            Err(ApiError::new(ErrorCode::from_query_error(&e), e.to_string()))
        }
    }
}

/// One side of a query as the worker sees it: a direct index reference
/// (plain collections) or a pinned snapshot view (versioned ones).
#[derive(Clone, Copy)]
enum SideRef<'a> {
    Mbrqt(&'a ann_mbrqt::Mbrqt<SERVE_DIMS>),
    RStar(&'a ann_rstar::RStar<SERVE_DIMS>),
    Snap(&'a ReadContext<SERVE_DIMS>),
}

fn side_of<'a>(
    coll: &'a Collection,
    pin: Option<&'a ReadContext<SERVE_DIMS>>,
) -> SideRef<'a> {
    match (pin, &coll.backing) {
        (Some(ctx), _) => SideRef::Snap(ctx),
        (None, Backing::Plain(AnyIndex::Mbrqt(t))) => SideRef::Mbrqt(t),
        (None, Backing::Plain(AnyIndex::RStar(t))) => SideRef::RStar(t),
        // execute() pins every versioned side before building SideRefs.
        (None, Backing::Versioned { .. }) => {
            unreachable!("versioned side reached dispatch without a pin")
        }
    }
}

/// Dispatches over the side-type combinations (each arm monomorphizes
/// `run_scratch` for its pair of [`SpatialIndex`] impls).
fn run_sides(
    r: SideRef<'_>,
    s: SideRef<'_>,
    req: &AnnRequest<'_>,
    scratch: &mut QueryScratch<SERVE_DIMS>,
) -> QueryResult<AnnOutput> {
    use SideRef::{Mbrqt, RStar, Snap};
    match (r, s) {
        (Mbrqt(ir), Mbrqt(is)) => run_scratch(req, Input::Index(ir), Input::Index(is), scratch),
        (Mbrqt(ir), RStar(is)) => run_scratch(req, Input::Index(ir), Input::Index(is), scratch),
        (Mbrqt(ir), Snap(is)) => run_scratch(req, Input::Index(ir), Input::Index(is), scratch),
        (RStar(ir), Mbrqt(is)) => run_scratch(req, Input::Index(ir), Input::Index(is), scratch),
        (RStar(ir), RStar(is)) => run_scratch(req, Input::Index(ir), Input::Index(is), scratch),
        (RStar(ir), Snap(is)) => run_scratch(req, Input::Index(ir), Input::Index(is), scratch),
        (Snap(ir), Mbrqt(is)) => run_scratch(req, Input::Index(ir), Input::Index(is), scratch),
        (Snap(ir), RStar(is)) => run_scratch(req, Input::Index(ir), Input::Index(is), scratch),
        (Snap(ir), Snap(is)) => run_scratch(req, Input::Index(ir), Input::Index(is), scratch),
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

/// What a route handler produced: status + JSON body, plus whether this
/// response must close the connection regardless of keep-alive.
struct Reply {
    status: u16,
    body: String,
    close: bool,
}

impl Reply {
    fn ok(body: impl Into<String>) -> Self {
        Reply {
            status: 200,
            body: body.into(),
            close: false,
        }
    }

    fn status(status: u16, body: impl Into<String>) -> Self {
        Reply {
            status,
            body: body.into(),
            close: false,
        }
    }

    fn err(e: &ApiError) -> Self {
        Reply {
            status: e.code.http_status(),
            body: e.code.error_json(&e.message),
            close: false,
        }
    }
}

fn connection_loop(mut stream: TcpStream, ctx: &Ctx) {
    loop {
        let req = match read_request(&mut stream) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean close between requests
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                let body = ErrorCode::BadRequest.error_json(&e.to_string());
                let _ = write_response(&mut stream, 400, &body, false);
                return;
            }
            Err(_) => return, // socket error mid-request
        };
        ctx.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let keep_alive = req.keep_alive && !ctx.shutdown.load(Ordering::Acquire);
        let reply = match route(&req, &mut stream, ctx) {
            Some(reply) => reply,
            None => {
                // Client disconnected while its query ran; nothing to
                // write and the handler already did the accounting.
                return;
            }
        };
        ctx.metrics.count_status(reply.status);
        let keep = keep_alive && !reply.close;
        if write_response(&mut stream, reply.status, &reply.body, keep).is_err() || !keep {
            return;
        }
    }
}

/// Routes one request. `None` means the connection died mid-query and
/// there is nobody left to answer.
fn route(req: &Request, stream: &mut TcpStream, ctx: &Ctx) -> Option<Reply> {
    let path = req.path.trim_matches('/').to_string();
    let segs: Vec<&str> = if path.is_empty() {
        Vec::new()
    } else {
        path.split('/').collect()
    };
    let reply = match (req.method.as_str(), segs.as_slice()) {
        ("GET", ["health"]) => Reply::ok("{\"ok\":true}"),
        ("GET", ["metrics"]) => Reply::ok(ctx.metrics.to_json()),
        ("GET", ["collections"]) => {
            let names = ctx.registry.list();
            let items: Vec<String> = names.iter().map(|n| format!("\"{n}\"")).collect();
            Reply::ok(format!("{{\"collections\":[{}]}}", items.join(",")))
        }
        ("POST", ["collections"]) => match create_collection(req, ctx) {
            Ok(reply) => reply,
            Err(e) => Reply::err(&e),
        },
        ("GET", ["collections", id]) => match describe_collection(id, ctx) {
            Ok(reply) => reply,
            Err(e) => Reply::err(&e),
        },
        ("DELETE", ["collections", id]) => match parse_id(id).and_then(|id| {
            ctx.registry.drop_collection(&id)?;
            Ok(Reply::ok(format!("{{\"dropped\":\"{id}\"}}")))
        }) {
            Ok(reply) => reply,
            Err(e) => Reply::err(&e),
        },
        ("POST", ["collections", id, "query"]) => {
            return query_route(id, req, stream, ctx);
        }
        ("POST", ["collections", id, "insert"]) => match insert_route(id, req, ctx) {
            Ok(reply) => reply,
            Err(e) => Reply::err(&e),
        },
        ("POST", ["admin", "shutdown"]) => {
            initiate_shutdown(ctx);
            let mut reply = Reply::ok("{\"shutting_down\":true}");
            reply.close = true;
            reply
        }
        (_, ["health" | "metrics" | "collections" | "admin", ..]) => Reply::status(
            405,
            ErrorCode::BadRequest.error_json("method not allowed for this route"),
        ),
        _ => Reply::status(
            404,
            ErrorCode::BadRequest.error_json(&format!("no route for {} /{path}", req.method)),
        ),
    };
    Some(reply)
}

fn parse_id(raw: &str) -> Result<CollectionId, ApiError> {
    CollectionId::new(raw).map_err(|e| ApiError::new(ErrorCode::BadRequest, e.to_string()))
}

fn describe_collection(raw_id: &str, ctx: &Ctx) -> Result<Reply, ApiError> {
    let id = parse_id(raw_id)?;
    let coll = ctx.registry.get(&id)?;
    let version = match coll.latest_version() {
        Some(v) => format!(",\"versioned\":true,\"latest_version\":{v}"),
        None => ",\"versioned\":false".to_string(),
    };
    Ok(Reply::ok(format!(
        "{{\"id\":\"{}\",\"kind\":\"{}\",\"points\":{}{version}}}",
        coll.id,
        coll.kind.as_str(),
        coll.num_points()
    )))
}

/// `POST /collections` — body `{"id": "...", "kind": "mbrqt"|"rstar",
/// "points": [[x, y], ...]}`; oids are the array positions.
fn create_collection(req: &Request, ctx: &Ctx) -> Result<Reply, ApiError> {
    let bad = |msg: &str| ApiError::new(ErrorCode::BadRequest, msg);
    let body = req.body_str().ok_or_else(|| bad("body must be UTF-8"))?;
    let doc = JsonValue::parse(body).map_err(|e| bad(&e.to_string()))?;
    let id = parse_id(
        doc.get("id")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("missing string field \"id\""))?,
    )?;
    let kind = IndexKind::parse(
        doc.get("kind")
            .and_then(JsonValue::as_str)
            .unwrap_or("mbrqt"),
    )?;
    let points = parse_points(&doc)?;
    let coll = ctx.registry.create(&id, kind, &points)?;
    Ok(Reply::status(
        201,
        format!(
            "{{\"id\":\"{}\",\"kind\":\"{}\",\"points\":{}}}",
            coll.id,
            coll.kind.as_str(),
            coll.num_points()
        ),
    ))
}

/// Parses the `"points"` array of a create/insert body.
fn parse_points(doc: &JsonValue) -> Result<Vec<Point<SERVE_DIMS>>, ApiError> {
    let bad = |msg: &str| ApiError::new(ErrorCode::BadRequest, msg);
    let raw_points = doc
        .get("points")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| bad("missing array field \"points\""))?;
    let mut points: Vec<Point<SERVE_DIMS>> = Vec::with_capacity(raw_points.len());
    for (i, rp) in raw_points.iter().enumerate() {
        let coords = rp
            .as_arr()
            .filter(|a| a.len() == SERVE_DIMS)
            .ok_or_else(|| bad(&format!("point {i} must be [x, y]")))?;
        let mut p = [0.0f64; SERVE_DIMS];
        for (d, c) in coords.iter().enumerate() {
            p[d] = c
                .as_f64()
                .filter(|v| v.is_finite())
                .ok_or_else(|| bad(&format!("point {i} coordinate {d} must be finite")))?;
        }
        points.push(Point(p));
    }
    Ok(points)
}

/// `POST /collections/{id}/insert` — body `{"points": [[x, y], ...]}`.
/// Appends to a versioned collection; oids continue from the current
/// point count and each point commits its own snapshot version.
///
/// Runs inline on the connection thread: inserts go through the
/// collection's writer lock anyway, so routing them through the query
/// worker pool would only let a slow writer starve readers of workers —
/// the one thing MVCC is here to prevent.
fn insert_route(raw_id: &str, req: &Request, ctx: &Ctx) -> Result<Reply, ApiError> {
    if ctx.shutdown.load(Ordering::Acquire) {
        return Err(ApiError::new(
            ErrorCode::ShuttingDown,
            "server is shutting down",
        ));
    }
    let bad = |msg: &str| ApiError::new(ErrorCode::BadRequest, msg);
    let id = parse_id(raw_id)?;
    let body = req.body_str().ok_or_else(|| bad("body must be UTF-8"))?;
    let doc = JsonValue::parse(body).map_err(|e| bad(&e.to_string()))?;
    let points = parse_points(&doc)?;
    if points.is_empty() {
        return Err(bad("\"points\" must be non-empty"));
    }
    let coll = ctx.registry.get(&id)?;
    let (first_oid, version) = coll.insert_points(&points)?;
    Ok(Reply::ok(format!(
        "{{\"inserted\":{},\"first_oid\":{first_oid},\"version\":{version}}}",
        points.len()
    )))
}

/// `POST /collections/{id}/query[?trace=1][&target={other}]` — body is a
/// [`QuerySpec`] document. Queries `{id}` (as R) against `target` (as S,
/// default: itself).
fn query_route(raw_id: &str, req: &Request, stream: &mut TcpStream, ctx: &Ctx) -> Option<Reply> {
    let submitted = match prepare_query(raw_id, req, ctx) {
        Ok(parts) => parts,
        Err(e) => return Some(Reply::err(&e)),
    };
    let (cancel, rx) = match submit_query(submitted, ctx) {
        Ok(pair) => pair,
        Err(e) => {
            if e.code == ErrorCode::Overloaded {
                ctx.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            }
            return Some(Reply::err(&e));
        }
    };
    await_reply(stream, &cancel, &rx)
}

struct PreparedQuery {
    r: Arc<Collection>,
    s: Arc<Collection>,
    spec: QuerySpec,
    trace: bool,
}

fn prepare_query(raw_id: &str, req: &Request, ctx: &Ctx) -> Result<PreparedQuery, ApiError> {
    if ctx.shutdown.load(Ordering::Acquire) {
        return Err(ApiError::new(
            ErrorCode::ShuttingDown,
            "server is shutting down",
        ));
    }
    let id = parse_id(raw_id)?;
    let body = req
        .body_str()
        .ok_or_else(|| ApiError::new(ErrorCode::BadRequest, "body must be UTF-8"))?;
    let mut spec = QuerySpec::from_json(body)
        .map_err(|e| ApiError::new(ErrorCode::BadRequest, e.to_string()))?;
    // `?version=` overrides the spec's optional version field, so
    // time-travel reads work without re-serializing the body.
    if let Some(raw) = req.query_param("version") {
        let v = raw.parse::<u32>().ok().filter(|v| *v > 0).ok_or_else(|| {
            ApiError::new(
                ErrorCode::BadRequest,
                "version must be a positive integer",
            )
        })?;
        spec.version = Some(v);
    }
    // `?threads=` overrides the spec's threads field the same way —
    // `0` is "one worker per core", subject to the compute-token cap.
    // Bounded like the body field (wire::MAX_WIRE_THREADS) so the
    // query-param path cannot smuggle an unbounded value either.
    if let Some(raw) = req.query_param("threads") {
        let t = raw
            .parse::<usize>()
            .ok()
            .filter(|t| *t <= ann_core::wire::MAX_WIRE_THREADS)
            .ok_or_else(|| {
                ApiError::new(
                    ErrorCode::BadRequest,
                    format!(
                        "threads must be an integer between 0 and {}",
                        ann_core::wire::MAX_WIRE_THREADS
                    ),
                )
            })?;
        spec.threads = t;
    }
    let r = ctx.registry.get(&id)?;
    let s = match req.query_param("target") {
        Some(target) => ctx.registry.get(&parse_id(target)?)?,
        None => Arc::clone(&r),
    };
    Ok(PreparedQuery {
        r,
        s,
        spec,
        trace: req.query_flag("trace"),
    })
}

type ReplyRx = mpsc::Receiver<Result<String, ApiError>>;

fn submit_query(q: PreparedQuery, ctx: &Ctx) -> Result<(CancelToken, ReplyRx), ApiError> {
    let cancel = CancelToken::new();
    let (tx, rx) = mpsc::channel();
    let job = Job {
        r: q.r,
        s: q.s,
        spec: q.spec,
        trace: q.trace,
        cancel: cancel.clone(),
        reply: tx,
    };
    match ctx.queue.try_submit(job) {
        Ok(()) => Ok((cancel, rx)),
        Err((_, SubmitError::Full)) => Err(ApiError::new(
            ErrorCode::Overloaded,
            "query queue is full, retry later",
        )),
        Err((_, SubmitError::Closed)) => Err(ApiError::new(
            ErrorCode::ShuttingDown,
            "server is shutting down",
        )),
    }
}

/// Waits for the worker's reply while watching the socket: a clean EOF
/// while the query is still running fires the cancel token. Returns
/// `None` when the client is gone (nothing to write back).
fn await_reply(stream: &mut TcpStream, cancel: &CancelToken, rx: &ReplyRx) -> Option<Reply> {
    let mut client_gone = false;
    let result = loop {
        match rx.recv_timeout(DISCONNECT_POLL) {
            Ok(result) => break result,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if !client_gone && socket_disconnected(stream) {
                    client_gone = true;
                    cancel.cancel();
                    // Keep looping: the worker's clean abort releases
                    // the traversal's pins before it replies.
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Worker dropped the channel without a reply (shutdown
                // drain already answered, or a worker panic).
                break Err(ApiError::new(ErrorCode::Internal, "query lost"));
            }
        }
    };
    if client_gone {
        return None;
    }
    Some(match result {
        Ok(body) => Reply::ok(body),
        Err(e) => Reply::err(&e),
    })
}

/// True when the peer has closed its end: a zero-byte `peek`. Transient
/// would-block/timeout states mean "still connected, nothing sent".
fn socket_disconnected(stream: &TcpStream) -> bool {
    let prev = stream.read_timeout().ok().flatten();
    if stream
        .set_read_timeout(Some(Duration::from_millis(1)))
        .is_err()
    {
        return true;
    }
    let mut probe = [0u8; 1];
    let gone = match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) => !matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut),
    };
    let _ = stream.set_read_timeout(prev);
    gone
}
