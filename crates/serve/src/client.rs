//! A minimal blocking HTTP client for the ANN service — enough for the
//! integration tests, the CI smoke test, and the closed-loop load
//! generator, without pulling in an HTTP dependency.
//!
//! [`Conn`] is one keep-alive connection (the closed-loop benchmark
//! drives one per simulated client); [`Client`] wraps an address with
//! request helpers that open a fresh connection per call.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use ann_core::wire::{QueryOutcome, QuerySpec, WireError};

/// One HTTP response: status code and body bytes (always read fully).
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// The status code (200, 429, ...).
    pub status: u16,
    /// The response body.
    pub body: String,
}

impl HttpResponse {
    /// Parses the body as a [`QueryOutcome`] (only meaningful on 200s).
    pub fn outcome(&self) -> Result<QueryOutcome, WireError> {
        QueryOutcome::from_json(&self.body)
    }
}

/// A single keep-alive connection to the server.
pub struct Conn {
    stream: TcpStream,
}

impl Conn {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Conn { stream })
    }

    /// Sets the response-read timeout (`None` blocks indefinitely).
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one request and reads the full response.
    pub fn request(&mut self, method: &str, target: &str, body: &str) -> io::Result<HttpResponse> {
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: ann-serve\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        read_response(&mut self.stream)
    }

    /// Sends a request and then *immediately drops the connection*
    /// without reading the response — the disconnect-mid-query tests use
    /// this to trigger server-side cancellation.
    pub fn fire_and_hang_up(mut self, method: &str, target: &str, body: &str) -> io::Result<()> {
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: ann-serve\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        Ok(())
        // Dropping `self.stream` here sends FIN; the server's poll sees
        // a zero-byte peek and fires the query's CancelToken.
    }
}

/// Address + convenience helpers; one fresh connection per call.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for `addr` (e.g. `"127.0.0.1:7071"`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    /// Opens a keep-alive connection for a request sequence.
    pub fn conn(&self) -> io::Result<Conn> {
        Conn::connect(&self.addr)
    }

    /// One-shot request on a fresh connection.
    pub fn request(&self, method: &str, target: &str, body: &str) -> io::Result<HttpResponse> {
        self.conn()?.request(method, target, body)
    }

    /// `GET /health`.
    pub fn health(&self) -> io::Result<HttpResponse> {
        self.request("GET", "/health", "")
    }

    /// Creates a collection from `[x, y]` points (oids are positions).
    pub fn create_collection(
        &self,
        id: &str,
        kind: &str,
        points: &[[f64; 2]],
    ) -> io::Result<HttpResponse> {
        let mut body = format!("{{\"id\":\"{id}\",\"kind\":\"{kind}\",\"points\":[");
        for (i, p) in points.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!("[{},{}]", p[0], p[1]));
        }
        body.push_str("]}");
        self.request("POST", "/collections", &body)
    }

    /// Runs `spec` against collection `id` (self-join).
    pub fn query(&self, id: &str, spec: &QuerySpec) -> io::Result<HttpResponse> {
        self.request("POST", &format!("/collections/{id}/query"), &spec.to_json())
    }

    /// Runs `spec` against collection `id` with up to `threads`
    /// intra-query worker threads (`0` = one per core). The server
    /// clamps the grant to its global compute-token budget, so this is
    /// a request, not a guarantee — results are identical either way.
    pub fn query_threads(
        &self,
        id: &str,
        threads: usize,
        spec: &QuerySpec,
    ) -> io::Result<HttpResponse> {
        self.request(
            "POST",
            &format!("/collections/{id}/query?threads={threads}"),
            &spec.to_json(),
        )
    }

    /// Runs `spec` against the snapshot `version` of collection `id`
    /// (time travel; the version must still be in the history window).
    pub fn query_at(&self, id: &str, version: u32, spec: &QuerySpec) -> io::Result<HttpResponse> {
        self.request(
            "POST",
            &format!("/collections/{id}/query?version={version}"),
            &spec.to_json(),
        )
    }

    /// Appends `[x, y]` points to a versioned collection; oids continue
    /// from the current count.
    pub fn insert_points(&self, id: &str, points: &[[f64; 2]]) -> io::Result<HttpResponse> {
        let mut body = "{\"points\":[".to_string();
        for (i, p) in points.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!("[{},{}]", p[0], p[1]));
        }
        body.push_str("]}");
        self.request("POST", &format!("/collections/{id}/insert"), &body)
    }

    /// Drops collection `id`.
    pub fn drop_collection(&self, id: &str) -> io::Result<HttpResponse> {
        self.request("DELETE", &format!("/collections/{id}"), "")
    }

    /// `POST /admin/shutdown`.
    pub fn shutdown_server(&self) -> io::Result<HttpResponse> {
        self.request("POST", "/admin/shutdown", "")
    }
}

/// Reads one `HTTP/1.1` response (status line, headers,
/// `Content-Length` body).
fn read_response(stream: &mut TcpStream) -> io::Result<HttpResponse> {
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 1024];
    let split;
    let spill;
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before response head",
            ));
        }
        head.extend_from_slice(&buf[..n]);
        if let Some(pos) = head.windows(4).position(|w| w == b"\r\n\r\n") {
            split = pos + 4;
            spill = head.split_off(split);
            break;
        }
        if head.len() > 64 * 1024 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "response head too large",
            ));
        }
    }
    let head_str = std::str::from_utf8(&head)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))?;
    let mut lines = head_str.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty response"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad length"))?;
            }
        }
    }
    let mut body = spill;
    while body.len() < content_length {
        let want = (content_length - body.len()).min(buf.len());
        let n = stream.read(&mut buf[..want])?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
    Ok(HttpResponse { status, body })
}
