//! Named on-disk collections behind a process-wide registry.
//!
//! A *collection* is one bulk-built spatial index (MBRQT or R*-tree) over
//! a point set, persisted in its own [`FileDisk`] file with a JSON
//! sidecar recording how to reopen it (index kind, metadata page, point
//! count, pool size, and — for versioned collections — the MVCC manifest
//! head). The registry maps [`CollectionId`]s to live [`Collection`]
//! handles, opening lazily on first use so a restarted server picks up
//! everything a previous run created.
//!
//! # Open serialization
//!
//! The registry is two locking levels: a global map of per-collection
//! *slots*, and a per-slot mutex guarding that collection's open state.
//! The global lock is held only to look up or insert a slot (never during
//! disk I/O), so opening one slow collection cannot stall requests for
//! others; the per-slot lock serializes concurrent first-touch opens of
//! the *same* name, so racing `get`s produce exactly one [`BufferPool`]
//! and every racer receives the same handle. (An earlier design held the
//! global lock across `load`, which was correct but made every lazy open
//! a registry-wide stall.)
//!
//! # Versioning
//!
//! Collections created by this registry are *versioned*: after the bulk
//! build the tree switches to MVCC snapshot mode
//! ([`ann_mbrqt::Mbrqt::enable_versioning`]), so queries pin immutable
//! snapshot versions through a [`VersionedHandle`] and never block on (or
//! observe a torn state from) concurrent [`Collection::insert_points`]
//! writers. Collections written by older builds (sidecars without
//! `versions_head`) still open, as read-only [`Backing::Plain`] handles.
//!
//! Serving is fixed at `D = 2` ([`SERVE_DIMS`]) — the paper's primary
//! dimensionality. Higher-D serving would need either monomorphized
//! routes per D or a dynamic-D index, both out of scope here.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ann_core::snapshot::{ReadContext, VersionedHandle};
use ann_core::wire::{CollectionId, ErrorCode, JsonValue};
use ann_geom::Point;
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_rstar::{RStar, RStarConfig};
use ann_store::{BufferPool, FileDisk, PageId, StoreError, DEFAULT_KEEP};

/// The fixed dimensionality served over the wire.
pub const SERVE_DIMS: usize = 2;

/// Sidecar schema version (bumped independently of the query wire
/// schema; same rule — removals or meaning changes bump, additions of
/// optional fields do not). The `versions_head` field rides under this
/// rule: v1 sidecars without it open as plain (non-versioned) handles.
const SIDECAR_VERSION: u64 = 1;

/// A service-level error: the stable [`ErrorCode`] plus a human message.
/// The HTTP layer renders it with [`ErrorCode::http_status`] and
/// [`ErrorCode::error_json`].
#[derive(Debug, Clone)]
pub struct ApiError {
    /// Stable numeric code (see [`ErrorCode`]).
    pub code: ErrorCode,
    /// Human-readable detail, safe to echo to the client.
    pub message: String,
}

impl ApiError {
    /// Builds an error from its code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ApiError {
            code,
            message: message.into(),
        }
    }

    /// Maps a storage failure to its stable code.
    pub fn from_store(e: &StoreError) -> Self {
        ApiError::new(ErrorCode::from_store_error(e), e.to_string())
    }
}

/// Which index structure backs a collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// MBR-quadtree ([`ann_mbrqt`]), the paper's primary structure.
    Mbrqt,
    /// R*-tree ([`ann_rstar`]), the paper's RBA host.
    RStar,
}

impl IndexKind {
    /// Wire name (`"mbrqt"` / `"rstar"`).
    pub fn as_str(self) -> &'static str {
        match self {
            IndexKind::Mbrqt => "mbrqt",
            IndexKind::RStar => "rstar",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Result<Self, ApiError> {
        match s {
            "mbrqt" => Ok(IndexKind::Mbrqt),
            "rstar" => Ok(IndexKind::RStar),
            other => Err(ApiError::new(
                ErrorCode::BadRequest,
                format!("unknown index kind {other:?} (expected \"mbrqt\" or \"rstar\")"),
            )),
        }
    }
}

/// A live index handle, either structure behind one enum so collection
/// storage stays homogeneous. Query dispatch matches on the variant.
pub enum AnyIndex {
    /// An open MBR-quadtree.
    Mbrqt(Mbrqt<SERVE_DIMS>),
    /// An open R*-tree.
    RStar(RStar<SERVE_DIMS>),
}

impl AnyIndex {
    /// The tree's metadata page.
    pub fn meta_page(&self) -> PageId {
        match self {
            AnyIndex::Mbrqt(t) => t.meta_page(),
            AnyIndex::RStar(t) => t.meta_page(),
        }
    }

    fn enable_versioning(&mut self, keep: u32) -> ann_store::Result<PageId> {
        match self {
            AnyIndex::Mbrqt(t) => t.enable_versioning(keep),
            AnyIndex::RStar(t) => t.enable_versioning(keep),
        }
    }

    fn versioned_handle(&self) -> Option<VersionedHandle<SERVE_DIMS>> {
        match self {
            AnyIndex::Mbrqt(t) => t.versioned_handle(),
            AnyIndex::RStar(t) => t.versioned_handle(),
        }
    }

    fn insert(&mut self, oid: u64, point: Point<SERVE_DIMS>) -> ann_store::Result<()> {
        match self {
            AnyIndex::Mbrqt(t) => t.insert(oid, point),
            AnyIndex::RStar(t) => t.insert(oid, point),
        }
    }
}

/// How a collection's index is held, which decides how queries reach it.
pub enum Backing {
    /// A pre-versioning collection: immutable after open, queried by
    /// direct shared reference (mutation requests are rejected).
    Plain(AnyIndex),
    /// A versioned collection: the writer handle lives behind a mutex
    /// (mutations are serialized), while readers pin MVCC snapshots
    /// through the handle and never take the writer lock.
    Versioned {
        /// The mutable tree, locked only by writers.
        writer: Mutex<AnyIndex>,
        /// Lock-free snapshot factory shared with every reader.
        handle: VersionedHandle<SERVE_DIMS>,
        /// Manifest head page recorded in the sidecar.
        versions_head: PageId,
    },
}

/// One open collection: the index, its buffer pool, and its identity.
pub struct Collection {
    /// The registry name.
    pub id: CollectionId,
    /// Which structure backs it.
    pub kind: IndexKind,
    /// How the index is held (see [`Backing`]).
    pub backing: Backing,
    /// The collection's private buffer pool (one pool per collection, so
    /// hot collections cannot evict each other's pages).
    pub pool: Arc<BufferPool>,
    /// Number of indexed points (grows under [`Collection::insert_points`]).
    num_points: AtomicU64,
}

impl Collection {
    /// Number of indexed points.
    pub fn num_points(&self) -> u64 {
        self.num_points.load(Ordering::Acquire)
    }

    /// The latest committed snapshot version, or `None` for plain
    /// (non-versioned) collections.
    pub fn latest_version(&self) -> Option<u32> {
        match &self.backing {
            Backing::Plain(_) => None,
            Backing::Versioned { handle, .. } => Some(handle.latest()),
        }
    }

    /// The MVCC snapshot factory, when this collection is versioned.
    pub fn versioned_handle(&self) -> Option<&VersionedHandle<SERVE_DIMS>> {
        match &self.backing {
            Backing::Plain(_) => None,
            Backing::Versioned { handle, .. } => Some(handle),
        }
    }

    /// Pins a query-ready snapshot of `version` (latest when `None`).
    /// Fails with `BadRequest` when a version is requested on a plain
    /// collection or has aged out of the history window.
    pub fn pin(&self, version: Option<u32>) -> Result<ReadContext<SERVE_DIMS>, ApiError> {
        match &self.backing {
            Backing::Plain(_) => Err(ApiError::new(
                ErrorCode::BadRequest,
                format!("collection {:?} is not versioned", self.id.as_str()),
            )),
            Backing::Versioned { handle, .. } => {
                handle.pin(version).map_err(|e| ApiError::from_store(&e))
            }
        }
    }

    /// Appends `points` (oids continue from the current count) under the
    /// writer lock; concurrent queries keep reading their pinned
    /// snapshots throughout. Returns `(first_oid, latest_version)`.
    ///
    /// Each point commits its own snapshot version, so a mid-batch
    /// failure (e.g. an MBRQT point outside the fixed universe) leaves
    /// the successfully inserted prefix committed and the count accurate.
    pub fn insert_points(
        &self,
        points: &[Point<SERVE_DIMS>],
    ) -> Result<(u64, u32), ApiError> {
        let Backing::Versioned { writer, handle, .. } = &self.backing else {
            return Err(ApiError::new(
                ErrorCode::BadRequest,
                format!(
                    "collection {:?} predates versioning and is read-only",
                    self.id.as_str()
                ),
            ));
        };
        let mut index = lock(writer);
        let first = self.num_points.load(Ordering::Acquire);
        for (i, p) in points.iter().enumerate() {
            if let Err(e) = index.insert(first + i as u64, *p) {
                self.num_points.store(first + i as u64, Ordering::Release);
                return Err(ApiError::from_store(&e));
            }
        }
        self.num_points
            .store(first + points.len() as u64, Ordering::Release);
        Ok((first, handle.latest()))
    }
}

/// One registry slot: the lazily opened state of a single collection
/// name. The slot-level mutex is what serializes racing first-touch
/// opens without blocking the whole registry.
struct Slot {
    state: Mutex<Option<Arc<Collection>>>,
}

/// The collection registry: a root directory plus the map of slots.
pub struct Registry {
    root: PathBuf,
    pool_frames: usize,
    open: Mutex<BTreeMap<String, Arc<Slot>>>,
}

impl Registry {
    /// Opens (creating if needed) a registry rooted at `root`. Existing
    /// collections are *not* opened eagerly; [`Registry::get`] loads them
    /// on first use.
    pub fn open(root: impl Into<PathBuf>, pool_frames: usize) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Registry {
            root,
            pool_frames: pool_frames.max(16),
            open: Mutex::new(BTreeMap::new()),
        })
    }

    fn disk_path(&self, id: &CollectionId) -> PathBuf {
        self.root.join(format!("{id}.pages"))
    }

    fn meta_path(&self, id: &CollectionId) -> PathBuf {
        self.root.join(format!("{id}.meta.json"))
    }

    /// The slot for `id`, inserting an empty one if absent. The global
    /// map lock is held only for this lookup — never across disk I/O.
    fn slot(&self, id: &CollectionId) -> Arc<Slot> {
        let mut open = lock(&self.open);
        Arc::clone(open.entry(id.as_str().to_string()).or_insert_with(|| {
            Arc::new(Slot {
                state: Mutex::new(None),
            })
        }))
    }

    /// Removes `id`'s slot if it is still empty (a failed open or create
    /// left it behind). `try_lock` keeps the map→slot lock order: a slot
    /// busy with another opener is simply left alone.
    fn gc_empty_slot(&self, id: &CollectionId) {
        let mut open = lock(&self.open);
        let empty = open.get(id.as_str()).is_some_and(|slot| {
            slot.state
                .try_lock()
                .map(|state| state.is_none())
                .unwrap_or(false)
        });
        if empty {
            open.remove(id.as_str());
        }
    }

    /// Creates and bulk-builds a new collection over `points` (oids are
    /// the input positions), versioned from birth. Fails with
    /// `CollectionExists` if the name is taken, either live or on disk.
    /// Only this name's slot is locked during the build; other
    /// collections stay fully available.
    pub fn create(
        &self,
        id: &CollectionId,
        kind: IndexKind,
        points: &[Point<SERVE_DIMS>],
    ) -> Result<Arc<Collection>, ApiError> {
        if points.is_empty() {
            return Err(ApiError::new(
                ErrorCode::BadRequest,
                "a collection needs at least one point",
            ));
        }
        let slot = self.slot(id);
        let mut state = lock(&slot.state);
        if state.is_some() || self.meta_path(id).exists() {
            drop(state);
            self.gc_empty_slot(id);
            return Err(ApiError::new(
                ErrorCode::CollectionExists,
                format!("collection {id:?} already exists"),
            ));
        }
        let result = self.build(id, kind, points);
        match result {
            Ok(coll) => {
                *state = Some(Arc::clone(&coll));
                Ok(coll)
            }
            Err(e) => {
                drop(state);
                self.gc_empty_slot(id);
                Err(e)
            }
        }
    }

    /// The fallible middle of [`Registry::create`]: bulk build, switch to
    /// versioned mode, persist the sidecar.
    fn build(
        &self,
        id: &CollectionId,
        kind: IndexKind,
        points: &[Point<SERVE_DIMS>],
    ) -> Result<Arc<Collection>, ApiError> {
        let keyed: Vec<(u64, Point<SERVE_DIMS>)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u64, *p))
            .collect();
        let disk_path = self.disk_path(id);
        let disk = FileDisk::create(&disk_path).map_err(|e| ApiError::from_store(&e))?;
        let pool = Arc::new(BufferPool::new(disk, self.pool_frames));
        let built = (|| -> ann_store::Result<(AnyIndex, PageId)> {
            let mut index = match kind {
                IndexKind::Mbrqt => {
                    Mbrqt::bulk_build(Arc::clone(&pool), &keyed, &MbrqtConfig::default())
                        .map(AnyIndex::Mbrqt)?
                }
                IndexKind::RStar => {
                    RStar::bulk_build(Arc::clone(&pool), &keyed, &RStarConfig::default())
                        .map(AnyIndex::RStar)?
                }
            };
            let versions_head = index.enable_versioning(DEFAULT_KEEP)?;
            pool.flush_all()?;
            Ok((index, versions_head))
        })();
        let (index, versions_head) = match built {
            Ok(pair) => pair,
            Err(e) => {
                // Failed build: drop the pool and remove the partial file
                // so the name is reusable.
                drop(pool);
                let _ = std::fs::remove_file(&disk_path);
                return Err(ApiError::from_store(&e));
            }
        };
        let sidecar = format!(
            "{{\"v\":{SIDECAR_VERSION},\"kind\":\"{}\",\"meta_page\":{},\"points\":{},\"pool_frames\":{},\"versions_head\":{}}}\n",
            kind.as_str(),
            index.meta_page(),
            keyed.len(),
            self.pool_frames,
            versions_head,
        );
        std::fs::write(self.meta_path(id), sidecar).map_err(|e| {
            ApiError::new(ErrorCode::StorageFailed, format!("writing sidecar: {e}"))
        })?;
        let handle = index
            .versioned_handle()
            .ok_or_else(|| ApiError::new(ErrorCode::Internal, "versioning did not take"))?;
        Ok(Arc::new(Collection {
            id: id.clone(),
            kind,
            backing: Backing::Versioned {
                writer: Mutex::new(index),
                handle,
                versions_head,
            },
            pool,
            num_points: AtomicU64::new(keyed.len() as u64),
        }))
    }

    /// Returns the live handle for `id`, opening it from disk on first
    /// use. `CollectionNotFound` if it exists neither live nor on disk.
    ///
    /// Concurrent first-touch `get`s of the same name serialize on the
    /// slot lock: exactly one performs the open, the rest receive clones
    /// of the same [`Collection`] (one pool per collection, ever).
    pub fn get(&self, id: &CollectionId) -> Result<Arc<Collection>, ApiError> {
        let slot = self.slot(id);
        let mut state = lock(&slot.state);
        if let Some(coll) = state.as_ref() {
            return Ok(Arc::clone(coll));
        }
        match self.load(id) {
            Ok(coll) => {
                *state = Some(Arc::clone(&coll));
                Ok(coll)
            }
            Err(e) => {
                drop(state);
                self.gc_empty_slot(id);
                Err(e)
            }
        }
    }

    /// Opens a collection from its on-disk file + sidecar.
    fn load(&self, id: &CollectionId) -> Result<Arc<Collection>, ApiError> {
        let meta_path = self.meta_path(id);
        let raw = std::fs::read_to_string(&meta_path).map_err(|_| {
            ApiError::new(
                ErrorCode::CollectionNotFound,
                format!("no collection named {id:?}"),
            )
        })?;
        let invalid = |what: &str| {
            ApiError::new(
                ErrorCode::InvalidCollection,
                format!("sidecar {}: {what}", meta_path.display()),
            )
        };
        let doc = JsonValue::parse(&raw).map_err(|e| invalid(&e.to_string()))?;
        let v = doc
            .get("v")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| invalid("missing version"))?;
        if v > SIDECAR_VERSION {
            return Err(invalid(&format!("unsupported sidecar version {v}")));
        }
        let kind = IndexKind::parse(
            doc.get("kind")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| invalid("missing kind"))?,
        )
        .map_err(|e| invalid(&e.message))?;
        let meta_page = doc
            .get("meta_page")
            .and_then(JsonValue::as_u64)
            .and_then(|p| u32::try_from(p).ok())
            .ok_or_else(|| invalid("missing or out-of-range meta_page"))?;
        let num_points = doc
            .get("points")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| invalid("missing points"))?;
        let frames = doc
            .get("pool_frames")
            .and_then(JsonValue::as_usize)
            .unwrap_or(self.pool_frames);
        // Optional (additive, no sidecar version bump): MVCC manifest head.
        let versions_head = match doc.get("versions_head") {
            None => None,
            Some(h) => Some(
                h.as_u64()
                    .and_then(|p| u32::try_from(p).ok())
                    .ok_or_else(|| invalid("out-of-range versions_head"))?,
            ),
        };
        let disk = FileDisk::open(self.disk_path(id)).map_err(|e| ApiError::from_store(&e))?;
        let pool = Arc::new(BufferPool::new(disk, frames.max(16)));
        let open_index = |head: Option<PageId>| -> ann_store::Result<AnyIndex> {
            match (kind, head) {
                (IndexKind::Mbrqt, None) => {
                    Mbrqt::open(Arc::clone(&pool), meta_page).map(AnyIndex::Mbrqt)
                }
                (IndexKind::Mbrqt, Some(h)) => {
                    Mbrqt::open_versioned(Arc::clone(&pool), meta_page, h).map(AnyIndex::Mbrqt)
                }
                (IndexKind::RStar, None) => {
                    RStar::open(Arc::clone(&pool), meta_page).map(AnyIndex::RStar)
                }
                (IndexKind::RStar, Some(h)) => {
                    RStar::open_versioned(Arc::clone(&pool), meta_page, h).map(AnyIndex::RStar)
                }
            }
        };
        let index = open_index(versions_head).map_err(|e| ApiError::from_store(&e))?;
        let backing = match versions_head {
            None => Backing::Plain(index),
            Some(versions_head) => {
                let handle = index
                    .versioned_handle()
                    .ok_or_else(|| invalid("versioned open produced a plain tree"))?;
                Backing::Versioned {
                    writer: Mutex::new(index),
                    handle,
                    versions_head,
                }
            }
        };
        Ok(Arc::new(Collection {
            id: id.clone(),
            kind,
            backing,
            pool,
            num_points: AtomicU64::new(num_points),
        }))
    }

    /// Drops a collection: unregisters the live handle and deletes its
    /// files. In-flight queries holding the `Arc` finish normally — on
    /// Unix the unlinked file stays readable until the last handle drops.
    pub fn drop_collection(&self, id: &CollectionId) -> Result<(), ApiError> {
        let removed = lock(&self.open).remove(id.as_str());
        let was_open = removed.is_some_and(|slot| lock(&slot.state).take().is_some());
        let meta = self.meta_path(id);
        let on_disk = meta.exists();
        if !was_open && !on_disk {
            return Err(ApiError::new(
                ErrorCode::CollectionNotFound,
                format!("no collection named {id:?}"),
            ));
        }
        let _ = std::fs::remove_file(meta);
        let _ = std::fs::remove_file(self.disk_path(id));
        Ok(())
    }

    /// All collection names, live or on disk, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = {
            let open = lock(&self.open);
            open.iter()
                .filter(|(_, slot)| {
                    // A busy slot is mid-open of a collection that exists
                    // on disk anyway; count unlockable empties out.
                    slot.state
                        .try_lock()
                        .map(|state| state.is_some())
                        .unwrap_or(true)
                })
                .map(|(name, _)| name.clone())
                .collect()
        };
        if let Ok(entries) = std::fs::read_dir(&self.root) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if let Some(stem) = name.strip_suffix(".meta.json") {
                    if !names.iter().any(|n| n == stem) {
                        names.push(stem.to_string());
                    }
                }
            }
        }
        names.sort();
        names
    }

    /// Number of currently open (live) collections.
    pub fn open_count(&self) -> usize {
        lock(&self.open)
            .values()
            .filter(|slot| {
                slot.state
                    .try_lock()
                    .map(|state| state.is_some())
                    // A busy slot is being opened right now; count it.
                    .unwrap_or(true)
            })
            .count()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A poisoned lock means a panic mid-create; the structures themselves
    // are still sound (publishes happen after the fallible work), so
    // serving can continue.
    m.lock().unwrap_or_else(|e| e.into_inner())
}
