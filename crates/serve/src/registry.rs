//! Named on-disk collections behind a process-wide registry.
//!
//! A *collection* is one bulk-built spatial index (MBRQT or R*-tree) over
//! a point set, persisted in its own [`FileDisk`] file with a JSON
//! sidecar recording how to reopen it (index kind, metadata page, point
//! count, pool size). The registry maps [`CollectionId`]s to live
//! [`Collection`] handles, opening lazily on first use so a restarted
//! server picks up everything a previous run created.
//!
//! Serving is fixed at `D = 2` ([`SERVE_DIMS`]) — the paper's primary
//! dimensionality. Higher-D serving would need either monomorphized
//! routes per D or a dynamic-D index, both out of scope here.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use ann_core::wire::{CollectionId, ErrorCode, JsonValue};
use ann_geom::Point;
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_rstar::{RStar, RStarConfig};
use ann_store::{BufferPool, FileDisk, StoreError};

/// The fixed dimensionality served over the wire.
pub const SERVE_DIMS: usize = 2;

/// Sidecar schema version (bumped independently of the query wire
/// schema; same rule — removals or meaning changes bump, additions of
/// optional fields do not).
const SIDECAR_VERSION: u64 = 1;

/// A service-level error: the stable [`ErrorCode`] plus a human message.
/// The HTTP layer renders it with [`ErrorCode::http_status`] and
/// [`ErrorCode::error_json`].
#[derive(Debug, Clone)]
pub struct ApiError {
    /// Stable numeric code (see [`ErrorCode`]).
    pub code: ErrorCode,
    /// Human-readable detail, safe to echo to the client.
    pub message: String,
}

impl ApiError {
    /// Builds an error from its code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ApiError {
            code,
            message: message.into(),
        }
    }

    /// Maps a storage failure to its stable code.
    pub fn from_store(e: &StoreError) -> Self {
        ApiError::new(ErrorCode::from_store_error(e), e.to_string())
    }
}

/// Which index structure backs a collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// MBR-quadtree ([`ann_mbrqt`]), the paper's primary structure.
    Mbrqt,
    /// R*-tree ([`ann_rstar`]), the paper's RBA host.
    RStar,
}

impl IndexKind {
    /// Wire name (`"mbrqt"` / `"rstar"`).
    pub fn as_str(self) -> &'static str {
        match self {
            IndexKind::Mbrqt => "mbrqt",
            IndexKind::RStar => "rstar",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Result<Self, ApiError> {
        match s {
            "mbrqt" => Ok(IndexKind::Mbrqt),
            "rstar" => Ok(IndexKind::RStar),
            other => Err(ApiError::new(
                ErrorCode::BadRequest,
                format!("unknown index kind {other:?} (expected \"mbrqt\" or \"rstar\")"),
            )),
        }
    }
}

/// A live index handle, either structure behind one enum so collection
/// storage stays homogeneous. Query dispatch matches on the variant.
pub enum AnyIndex {
    /// An open MBR-quadtree.
    Mbrqt(Mbrqt<SERVE_DIMS>),
    /// An open R*-tree.
    RStar(RStar<SERVE_DIMS>),
}

/// One open collection: the index, its buffer pool, and its identity.
pub struct Collection {
    /// The registry name.
    pub id: CollectionId,
    /// Which structure backs it.
    pub kind: IndexKind,
    /// The open index.
    pub index: AnyIndex,
    /// The collection's private buffer pool (one pool per collection, so
    /// hot collections cannot evict each other's pages).
    pub pool: Arc<BufferPool>,
    /// Number of indexed points.
    pub num_points: u64,
}

/// The collection registry: a root directory plus the map of currently
/// open collections.
pub struct Registry {
    root: PathBuf,
    pool_frames: usize,
    open: Mutex<BTreeMap<String, Arc<Collection>>>,
}

impl Registry {
    /// Opens (creating if needed) a registry rooted at `root`. Existing
    /// collections are *not* opened eagerly; [`Registry::get`] loads them
    /// on first use.
    pub fn open(root: impl Into<PathBuf>, pool_frames: usize) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Registry {
            root,
            pool_frames: pool_frames.max(16),
            open: Mutex::new(BTreeMap::new()),
        })
    }

    fn disk_path(&self, id: &CollectionId) -> PathBuf {
        self.root.join(format!("{id}.pages"))
    }

    fn meta_path(&self, id: &CollectionId) -> PathBuf {
        self.root.join(format!("{id}.meta.json"))
    }

    /// Creates and bulk-builds a new collection over `points` (oids are
    /// the input positions). Fails with `CollectionExists` if the name is
    /// taken, either live or on disk.
    pub fn create(
        &self,
        id: &CollectionId,
        kind: IndexKind,
        points: &[Point<SERVE_DIMS>],
    ) -> Result<Arc<Collection>, ApiError> {
        if points.is_empty() {
            return Err(ApiError::new(
                ErrorCode::BadRequest,
                "a collection needs at least one point",
            ));
        }
        let mut open = lock(&self.open);
        if open.contains_key(id.as_str()) || self.meta_path(id).exists() {
            return Err(ApiError::new(
                ErrorCode::CollectionExists,
                format!("collection {id:?} already exists"),
            ));
        }
        let keyed: Vec<(u64, Point<SERVE_DIMS>)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u64, *p))
            .collect();
        let disk_path = self.disk_path(id);
        let disk = FileDisk::create(&disk_path).map_err(|e| ApiError::from_store(&e))?;
        let pool = Arc::new(BufferPool::new(disk, self.pool_frames));
        let built = match kind {
            IndexKind::Mbrqt => {
                Mbrqt::bulk_build(Arc::clone(&pool), &keyed, &MbrqtConfig::default())
                    .map(AnyIndex::Mbrqt)
            }
            IndexKind::RStar => {
                RStar::bulk_build(Arc::clone(&pool), &keyed, &RStarConfig::default())
                    .map(AnyIndex::RStar)
            }
        };
        let index = match built {
            Ok(index) => index,
            Err(e) => {
                // Failed build: drop the pool and remove the partial file
                // so the name is reusable.
                drop(pool);
                let _ = std::fs::remove_file(&disk_path);
                return Err(ApiError::from_store(&e));
            }
        };
        pool.flush_all().map_err(|e| ApiError::from_store(&e))?;
        let meta_page = match &index {
            AnyIndex::Mbrqt(t) => t.meta_page(),
            AnyIndex::RStar(t) => t.meta_page(),
        };
        let sidecar = format!(
            "{{\"v\":{SIDECAR_VERSION},\"kind\":\"{}\",\"meta_page\":{},\"points\":{},\"pool_frames\":{}}}\n",
            kind.as_str(),
            meta_page,
            keyed.len(),
            self.pool_frames,
        );
        std::fs::write(self.meta_path(id), sidecar).map_err(|e| {
            ApiError::new(ErrorCode::StorageFailed, format!("writing sidecar: {e}"))
        })?;
        let coll = Arc::new(Collection {
            id: id.clone(),
            kind,
            index,
            pool,
            num_points: keyed.len() as u64,
        });
        open.insert(id.as_str().to_string(), Arc::clone(&coll));
        Ok(coll)
    }

    /// Returns the live handle for `id`, opening it from disk on first
    /// use. `CollectionNotFound` if it exists neither live nor on disk.
    pub fn get(&self, id: &CollectionId) -> Result<Arc<Collection>, ApiError> {
        let mut open = lock(&self.open);
        if let Some(coll) = open.get(id.as_str()) {
            return Ok(Arc::clone(coll));
        }
        let coll = self.load(id)?;
        open.insert(id.as_str().to_string(), Arc::clone(&coll));
        Ok(coll)
    }

    /// Opens a collection from its on-disk file + sidecar.
    fn load(&self, id: &CollectionId) -> Result<Arc<Collection>, ApiError> {
        let meta_path = self.meta_path(id);
        let raw = std::fs::read_to_string(&meta_path).map_err(|_| {
            ApiError::new(
                ErrorCode::CollectionNotFound,
                format!("no collection named {id:?}"),
            )
        })?;
        let invalid = |what: &str| {
            ApiError::new(
                ErrorCode::InvalidCollection,
                format!("sidecar {}: {what}", meta_path.display()),
            )
        };
        let doc = JsonValue::parse(&raw).map_err(|e| invalid(&e.to_string()))?;
        let v = doc
            .get("v")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| invalid("missing version"))?;
        if v > SIDECAR_VERSION {
            return Err(invalid(&format!("unsupported sidecar version {v}")));
        }
        let kind = IndexKind::parse(
            doc.get("kind")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| invalid("missing kind"))?,
        )
        .map_err(|e| invalid(&e.message))?;
        let meta_page = doc
            .get("meta_page")
            .and_then(JsonValue::as_u64)
            .and_then(|p| u32::try_from(p).ok())
            .ok_or_else(|| invalid("missing or out-of-range meta_page"))?;
        let num_points = doc
            .get("points")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| invalid("missing points"))?;
        let frames = doc
            .get("pool_frames")
            .and_then(JsonValue::as_usize)
            .unwrap_or(self.pool_frames);
        let disk = FileDisk::open(self.disk_path(id)).map_err(|e| ApiError::from_store(&e))?;
        let pool = Arc::new(BufferPool::new(disk, frames.max(16)));
        let index = match kind {
            IndexKind::Mbrqt => Mbrqt::open(Arc::clone(&pool), meta_page)
                .map(AnyIndex::Mbrqt)
                .map_err(|e| ApiError::from_store(&e))?,
            IndexKind::RStar => RStar::open(Arc::clone(&pool), meta_page)
                .map(AnyIndex::RStar)
                .map_err(|e| ApiError::from_store(&e))?,
        };
        Ok(Arc::new(Collection {
            id: id.clone(),
            kind,
            index,
            pool,
            num_points,
        }))
    }

    /// Drops a collection: unregisters the live handle and deletes its
    /// files. In-flight queries holding the `Arc` finish normally — on
    /// Unix the unlinked file stays readable until the last handle drops.
    pub fn drop_collection(&self, id: &CollectionId) -> Result<(), ApiError> {
        let mut open = lock(&self.open);
        let was_open = open.remove(id.as_str()).is_some();
        let meta = self.meta_path(id);
        let on_disk = meta.exists();
        if !was_open && !on_disk {
            return Err(ApiError::new(
                ErrorCode::CollectionNotFound,
                format!("no collection named {id:?}"),
            ));
        }
        let _ = std::fs::remove_file(meta);
        let _ = std::fs::remove_file(self.disk_path(id));
        Ok(())
    }

    /// All collection names, live or on disk, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = lock(&self.open).keys().cloned().collect();
        if let Ok(entries) = std::fs::read_dir(&self.root) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if let Some(stem) = name.strip_suffix(".meta.json") {
                    if !names.iter().any(|n| n == stem) {
                        names.push(stem.to_string());
                    }
                }
            }
        }
        names.sort();
        names
    }

    /// Number of currently open (live) collections.
    pub fn open_count(&self) -> usize {
        lock(&self.open).len()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A poisoned registry lock means a panic mid-create; the map itself
    // is still structurally sound (inserts happen after the fallible
    // work), so serving can continue.
    m.lock().unwrap_or_else(|e| e.into_inner())
}
