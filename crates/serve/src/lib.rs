//! ANN-as-a-service: a zero-dependency HTTP front-end over the
//! all-nearest-neighbor toolkit (ROADMAP item 1).
//!
//! The crate turns the in-process query API into a long-running network
//! service, hand-rolling the two protocol layers it needs — HTTP/1.1
//! framing ([`http`]) and JSON ([`ann_core::wire`]) — instead of adding
//! dependencies, in keeping with the rest of the repo.
//!
//! * [`registry`] — named on-disk collections (MBRQT or R*-tree over
//!   `D = 2` points), created/opened/dropped behind a process-wide map;
//! * [`server`] — the acceptor / connection-thread / bounded-worker-pool
//!   service with admission control (429 on overflow) and
//!   cancellation-on-disconnect;
//! * [`metrics`] — lock-free request counters and a log-scaled latency
//!   histogram served at `/metrics`;
//! * [`client`] — a minimal blocking client for tests, CI smoke checks,
//!   and the closed-loop serving benchmark.
//!
//! # Quickstart
//!
//! ```no_run
//! use ann_serve::server::{Server, ServerConfig};
//! use ann_serve::client::Client;
//! use ann_core::wire::QuerySpec;
//!
//! let server = Server::start(ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     data_dir: "ann-data".into(),
//!     ..ServerConfig::default()
//! })?;
//! let client = Client::new(server.addr().to_string());
//! client.create_collection("demo", "mbrqt", &[[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])?;
//! let spec = QuerySpec { exclude_self: true, ..QuerySpec::default() };
//! let outcome = client.query("demo", &spec)?.outcome().expect("valid outcome");
//! assert_eq!(outcome.results.len(), 3);
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! The HTTP surface (all bodies JSON):
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /health` | liveness |
//! | `GET /metrics` | server counters + latency quantiles |
//! | `GET /collections` | list collection names |
//! | `POST /collections` | create + bulk-build (`{"id", "kind", "points"}`) |
//! | `GET /collections/{id}` | describe |
//! | `DELETE /collections/{id}` | drop (files deleted) |
//! | `POST /collections/{id}/insert` | append points (`{"points": [[x,y],...]}`), returns the new version |
//! | `POST /collections/{id}/query[?trace=1][&target=other][&version=N][&threads=T]` | run a [`QuerySpec`], optionally against pinned snapshot `N`, with up to `T` intra-query threads (compute-token capped) |
//! | `POST /admin/shutdown` | graceful shutdown |

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod client;
pub mod http;
pub mod metrics;
pub mod registry;
pub mod server;

pub use client::{Client, Conn, HttpResponse};
pub use metrics::Metrics;
pub use registry::{AnyIndex, ApiError, Backing, Collection, IndexKind, Registry, SERVE_DIMS};
pub use server::{ComputeTokenStats, Server, ServerConfig};

// The wire types the service speaks, re-exported so client code can
// depend on `ann_serve` alone.
pub use ann_core::wire::{
    CollectionId, ErrorCode, QueryOutcome, QuerySpec, WireError, WIRE_SCHEMA_VERSION,
};
