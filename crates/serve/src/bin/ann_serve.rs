//! `ann-serve` — the ANN service binary.
//!
//! ```text
//! ann-serve [--addr HOST:PORT] [--workers N] [--queue N]
//!           [--data-dir PATH] [--pool-frames N] [--compute-tokens N]
//! ```
//!
//! `--compute-tokens` bounds intra-query parallelism (`?threads=` /
//! `"threads"` in the spec) across the whole process: each worker owns
//! one implicit token and a query takes up to `threads - 1` extra
//! tokens if available, degrading toward serial under load. `0` (the
//! default) sizes the pool to `available cores - workers`.
//!
//! ```text
//! ```
//!
//! Prints `listening on HOST:PORT` once ready (port 0 resolves to an
//! ephemeral port, printed here — the CI smoke test scrapes it), then
//! serves until `POST /admin/shutdown`.

use std::process::ExitCode;

use ann_serve::server::{Server, ServerConfig};

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--addr" => config.addr = take("--addr"),
            "--workers" => config.workers = parse(&take("--workers"), "--workers"),
            "--queue" => config.queue_depth = parse(&take("--queue"), "--queue"),
            "--data-dir" => config.data_dir = take("--data-dir").into(),
            "--pool-frames" => config.pool_frames = parse(&take("--pool-frames"), "--pool-frames"),
            "--compute-tokens" => {
                config.compute_tokens = parse(&take("--compute-tokens"), "--compute-tokens")
            }
            "--help" | "-h" => {
                println!(
                    "usage: ann-serve [--addr HOST:PORT] [--workers N] [--queue N] \
                     [--data-dir PATH] [--pool-frames N] [--compute-tokens N]"
                );
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown argument {other:?} (try --help)")),
        }
    }

    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ann-serve: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());
    server.wait();
    println!("shutdown complete");
    ExitCode::SUCCESS
}

fn parse(s: &str, what: &str) -> usize {
    s.parse()
        .unwrap_or_else(|_| die(&format!("{what} expects a number, got {s:?}")))
}

fn die(msg: &str) -> ! {
    eprintln!("ann-serve: {msg}");
    std::process::exit(2)
}
