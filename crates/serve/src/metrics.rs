//! Server-level metrics: lock-free request counters plus a fixed
//! log-scaled latency histogram, aggregating the per-query work counters
//! ([`AnnStats`]) that every request already produces.
//!
//! The histogram trades precision for zero allocation: 64 power-of-two
//! microsecond buckets, so a reported quantile is exact to within 2× at
//! any magnitude. The serving benchmark measures precise client-side
//! latencies; this endpoint exists for live observability.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use ann_core::stats::AnnStats;

/// Monotonic counters for everything the server has done since start.
pub struct Metrics {
    /// HTTP requests accepted (all routes).
    pub requests: AtomicU64,
    /// Requests answered 2xx.
    pub ok: AtomicU64,
    /// Requests answered 4xx (including 429s, counted separately too).
    pub client_errors: AtomicU64,
    /// Requests answered 5xx.
    pub server_errors: AtomicU64,
    /// Queries rejected by admission control (429).
    pub rejected: AtomicU64,
    /// Queries cancelled because the client disconnected mid-flight.
    pub cancelled: AtomicU64,
    /// Queries executed to a verdict (ok or typed error).
    pub queries: AtomicU64,
    /// Sum over queries of distance computations.
    pub distance_computations: AtomicU64,
    /// Sum over queries of R/S node expansions.
    pub nodes_expanded: AtomicU64,
    /// Sum over queries of logical page reads.
    pub logical_reads: AtomicU64,
    /// Sum over queries of physical page reads.
    pub physical_reads: AtomicU64,
    /// Latency histogram: bucket `i` counts queries with
    /// `latency_us in [2^i, 2^(i+1))` (bucket 0 also holds sub-µs).
    buckets: [AtomicU64; 64],
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            server_errors: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            distance_computations: AtomicU64::new(0),
            nodes_expanded: AtomicU64::new(0),
            logical_reads: AtomicU64::new(0),
            physical_reads: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Metrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Classifies a response status into the ok / client / server
    /// counters (2xx/4xx/5xx).
    pub fn count_status(&self, status: u16) {
        match status {
            200..=299 => self.ok.fetch_add(1, Ordering::Relaxed),
            400..=499 => self.client_errors.fetch_add(1, Ordering::Relaxed),
            _ => self.server_errors.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Records one executed query: its wall latency and work counters.
    pub fn record_query(&self, latency: Duration, stats: &AnnStats) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - us.leading_zeros() as usize).min(63);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.distance_computations
            .fetch_add(stats.distance_computations, Ordering::Relaxed);
        self.nodes_expanded.fetch_add(
            stats.r_nodes_expanded + stats.s_nodes_expanded,
            Ordering::Relaxed,
        );
        self.logical_reads
            .fetch_add(stats.io.logical_reads, Ordering::Relaxed);
        self.physical_reads
            .fetch_add(stats.io.physical_reads, Ordering::Relaxed);
    }

    /// Approximate latency quantile in microseconds (upper bucket edge),
    /// or 0 when no queries have been recorded.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << i.min(62);
            }
        }
        1u64 << 62
    }

    /// Serializes the counters as a JSON object.
    pub fn to_json(&self) -> String {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        format!(
            "{{\"requests\":{},\"ok\":{},\"client_errors\":{},\"server_errors\":{},\
             \"rejected\":{},\"cancelled\":{},\"queries\":{},\
             \"distance_computations\":{},\"nodes_expanded\":{},\
             \"logical_reads\":{},\"physical_reads\":{},\
             \"latency_us\":{{\"p50\":{},\"p95\":{},\"p99\":{}}}}}",
            load(&self.requests),
            load(&self.ok),
            load(&self.client_errors),
            load(&self.server_errors),
            load(&self.rejected),
            load(&self.cancelled),
            load(&self.queries),
            load(&self.distance_computations),
            load(&self.nodes_expanded),
            load(&self.logical_reads),
            load(&self.physical_reads),
            self.latency_quantile_us(0.50),
            self.latency_quantile_us(0.95),
            self.latency_quantile_us(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_buckets() {
        let m = Metrics::new();
        assert_eq!(m.latency_quantile_us(0.5), 0);
        for _ in 0..99 {
            m.record_query(Duration::from_micros(100), &AnnStats::default());
        }
        m.record_query(Duration::from_millis(100), &AnnStats::default());
        let p50 = m.latency_quantile_us(0.50);
        // 100µs lands in the [64, 128) bucket; upper edge 128.
        assert_eq!(p50, 128);
        let p995 = m.latency_quantile_us(0.995);
        assert!(p995 > 100_000, "p99.5 {p995} should catch the 100ms outlier");
    }

    #[test]
    fn json_shape() {
        let m = Metrics::new();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.count_status(200);
        m.count_status(404);
        m.count_status(503);
        let doc = ann_core::wire::JsonValue::parse(&m.to_json()).expect("valid json");
        assert_eq!(doc.get("requests").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(doc.get("ok").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(doc.get("client_errors").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(doc.get("server_errors").and_then(|v| v.as_u64()), Some(1));
    }
}
