//! End-to-end gates for the serving front-end (DESIGN.md §14):
//!
//! * control-plane CRUD + error surface over real sockets;
//! * the serving-vs-library differential: for fuzz-generated workloads
//!   (checker's generator), the bytes a client parses off the wire are
//!   identical to what the in-process `query::run` path returns;
//! * ≥ 32 concurrent closed-loop clients with zero failed requests and
//!   byte-identical results (the acceptance criterion);
//! * admission control: a saturated one-worker server answers 429;
//! * cancellation-on-disconnect: a client that hangs up mid-query leaves
//!   `pinned_frames() == 0` behind;
//! * graceful shutdown and reopen-from-disk.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ann_core::query::{run, Algorithm, Input};
use ann_core::stats::AnnStats;
use ann_core::wire::{QueryOutcome, QuerySpec};
use ann_geom::Point;
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_rstar::{RStar, RStarConfig};
use ann_serve::client::{Client, Conn};
use ann_serve::server::{Server, ServerConfig};
use ann_store::{BufferPool, MemDisk};
use checker::rng::Rng;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ann-serve-test-{}-{}-{}",
        std::process::id(),
        tag,
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn start_server(tag: &str, workers: usize, queue_depth: usize, pool_frames: usize) -> Server {
    start_server_tokens(tag, workers, queue_depth, pool_frames, 0)
}

fn start_server_tokens(
    tag: &str,
    workers: usize,
    queue_depth: usize,
    pool_frames: usize,
    compute_tokens: usize,
) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_depth,
        data_dir: temp_dir(tag),
        pool_frames,
        compute_tokens,
    })
    .expect("server starts")
}

/// Canonical comparison form: the outcome's pairs with stats zeroed and
/// the version stripped, so equality means "byte-identical results"
/// without coupling to pool counters (which legitimately vary under
/// concurrency) or to which snapshot version served the query.
fn pairs_json(mut results: Vec<ann_core::stats::NeighborPair>) -> String {
    // The server serializes canonical `(r_oid, dist, s_oid)` order;
    // library-side references arrive in traversal order and must be
    // canonicalized the same way before the byte compare.
    results.sort_by(|a, b| {
        (a.r_oid, a.dist, a.s_oid)
            .partial_cmp(&(b.r_oid, b.dist, b.s_oid))
            .expect("distances are finite")
    });
    QueryOutcome {
        results,
        stats: AnnStats::default(),
        report: None,
        version: None,
    }
    .to_json()
}

fn server_pairs(body: &str) -> String {
    let outcome = QueryOutcome::from_json(body)
        .unwrap_or_else(|e| panic!("server body must parse as QueryOutcome: {e}\n{body}"));
    pairs_json(outcome.results)
}

/// Runs `spec` in-process over freshly built indices (MBRQT for R,
/// optionally R*-tree for S) with positional oids — the library-side
/// reference for the differential tests.
fn library_pairs(
    r_pts: &[Point<2>],
    s_pts: Option<(&[Point<2>], bool)>, // (points, as_rstar)
    spec: &QuerySpec,
) -> String {
    let keyed = |pts: &[Point<2>]| -> Vec<(u64, Point<2>)> {
        pts.iter().enumerate().map(|(i, p)| (i as u64, *p)).collect()
    };
    let pool_r = Arc::new(BufferPool::new(MemDisk::new(), 256));
    let ir = Mbrqt::bulk_build(pool_r, &keyed(r_pts), &MbrqtConfig::default()).expect("build R");
    let req = spec.to_request();
    let out = match s_pts {
        None => run(&req, Input::Index(&ir), Input::Index(&ir)),
        Some((s, true)) => {
            let pool_s = Arc::new(BufferPool::new(MemDisk::new(), 256));
            let is =
                RStar::bulk_build(pool_s, &keyed(s), &RStarConfig::default()).expect("build S");
            run(&req, Input::Index(&ir), Input::Index(&is))
        }
        Some((s, false)) => {
            let pool_s = Arc::new(BufferPool::new(MemDisk::new(), 256));
            let is =
                Mbrqt::bulk_build(pool_s, &keyed(s), &MbrqtConfig::default()).expect("build S");
            run(&req, Input::Index(&ir), Input::Index(&is))
        }
    }
    .expect("library run");
    pairs_json(out.results)
}

fn to_rows(pts: &[Point<2>]) -> Vec<[f64; 2]> {
    pts.iter().map(|p| [p.0[0], p.0[1]]).collect()
}

/// Deterministic uniform points for the load tests.
fn uniform_points(n: usize, seed: u64) -> Vec<Point<2>> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|_| Point([rng.f64() * 1000.0, rng.f64() * 1000.0]))
        .collect()
}

#[test]
fn crud_and_query_roundtrip() {
    let server = start_server("crud", 2, 16, 256);
    let client = Client::new(server.addr().to_string());

    assert_eq!(client.health().expect("health").status, 200);

    let resp = client
        .create_collection("demo", "mbrqt", &[[0.0, 0.0], [1.0, 0.0], [5.0, 5.0]])
        .expect("create");
    assert_eq!(resp.status, 201, "{}", resp.body);

    // Duplicate name → 409.
    let dup = client
        .create_collection("demo", "mbrqt", &[[0.0, 0.0]])
        .expect("dup request");
    assert_eq!(dup.status, 409, "{}", dup.body);

    let listed = client.request("GET", "/collections", "").expect("list");
    assert!(listed.body.contains("\"demo\""), "{}", listed.body);

    let desc = client.request("GET", "/collections/demo", "").expect("describe");
    assert_eq!(desc.status, 200);
    assert!(desc.body.contains("\"points\":3"), "{}", desc.body);

    let mut spec = QuerySpec::default();
    spec.exclude_self = true;
    let q = client.query("demo", &spec).expect("query");
    assert_eq!(q.status, 200, "{}", q.body);
    let outcome = q.outcome().expect("outcome parses");
    assert_eq!(outcome.results.len(), 3);

    // Traced query returns the report inline.
    let traced = client
        .request("POST", "/collections/demo/query?trace=1", &spec.to_json())
        .expect("traced query");
    assert_eq!(traced.status, 200);
    assert!(traced.body.contains("\"trace\":"), "{}", traced.body);

    // Unknown collection → 404; malformed body → 400; bad id → 400.
    let missing = client.query("nope", &spec).expect("missing");
    assert_eq!(missing.status, 404, "{}", missing.body);
    let bad = client
        .request("POST", "/collections/demo/query", "{not json")
        .expect("bad body");
    assert_eq!(bad.status, 400, "{}", bad.body);
    let bad_id = client
        .request("POST", "/collections/b%d/query", &spec.to_json())
        .expect("bad id");
    assert_eq!(bad_id.status, 400, "{}", bad_id.body);
    let no_route = client.request("GET", "/nothing/here", "").expect("404");
    assert_eq!(no_route.status, 404);
    let wrong_method = client.request("PUT", "/collections", "").expect("405");
    assert_eq!(wrong_method.status, 405);

    let metrics = client.request("GET", "/metrics", "").expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("\"queries\":"), "{}", metrics.body);

    let dropped = client.drop_collection("demo").expect("drop");
    assert_eq!(dropped.status, 200, "{}", dropped.body);
    let gone = client.query("demo", &spec).expect("query dropped");
    assert_eq!(gone.status, 404, "{}", gone.body);

    server.shutdown();
}

/// The serving differential: fuzz-generated workloads through the full
/// socket path must return byte-identical results to `query::run`.
#[test]
fn server_results_match_library_for_fuzz_workloads() {
    let server = start_server("diff", 2, 16, 256);
    let client = Client::new(server.addr().to_string());
    let mut rng = Rng::new(0x5E4E11);
    let mut ran = 0usize;
    let mut case_idx = 0usize;
    while ran < 24 {
        case_idx += 1;
        let case = checker::gen::diff_case::<2>(&mut rng);
        let r_pts: Vec<Point<2>> = case.r.iter().map(|(_, p)| *p).collect();
        let s_pts: Vec<Point<2>> = case.s.iter().map(|(_, p)| *p).collect();
        let self_join = case.exclude_self || r_pts == s_pts;
        if r_pts.is_empty() || s_pts.is_empty() {
            continue; // served collections hold at least one point
        }
        let mut spec = QuerySpec::new(match ran % 4 {
            0 => Algorithm::mba(),
            1 => Algorithm::Bnn {
                group_size: case.group_size,
            },
            2 => Algorithm::Mnn,
            _ => Algorithm::Hnn {
                avg_cell_occupancy: case.avg_cell_occupancy,
            },
        });
        spec.k = case.k.min(64);
        spec.exclude_self = case.exclude_self;
        if ran % 2 == 1 {
            spec.metric = ann_core::query::MetricChoice::MaxMax;
        }

        let r_name = format!("diff-r-{case_idx}");
        let created = client
            .create_collection(&r_name, "mbrqt", &to_rows(&r_pts))
            .expect("create R");
        assert_eq!(created.status, 201, "{}", created.body);

        let (target_query, expected) = if self_join {
            (
                format!("/collections/{r_name}/query"),
                library_pairs(&r_pts, None, &spec),
            )
        } else {
            let s_name = format!("diff-s-{case_idx}");
            let created = client
                .create_collection(&s_name, "rstar", &to_rows(&s_pts))
                .expect("create S");
            assert_eq!(created.status, 201, "{}", created.body);
            (
                format!("/collections/{r_name}/query?target={s_name}"),
                library_pairs(&r_pts, Some((&s_pts, true)), &spec),
            )
        };

        let resp = client
            .request("POST", &target_query, &spec.to_json())
            .expect("query");
        assert_eq!(resp.status, 200, "case {case_idx}: {}", resp.body);
        assert_eq!(
            server_pairs(&resp.body),
            expected,
            "case {case_idx} ({:?}): server diverged from query::run",
            spec.algorithm
        );
        ran += 1;
    }
    server.shutdown();
}

/// The acceptance criterion: ≥ 32 concurrent closed-loop clients, zero
/// failed requests, every result byte-identical to the library path.
#[test]
fn sustains_32_concurrent_clients_with_identical_results() {
    const CLIENTS: usize = 32;
    const REQUESTS_PER_CLIENT: usize = 6;

    let server = start_server("load", 4, 64, 256);
    let client = Client::new(server.addr().to_string());
    let points = uniform_points(2000, 0xA11CE);
    let created = client
        .create_collection("load", "mbrqt", &to_rows(&points))
        .expect("create");
    assert_eq!(created.status, 201, "{}", created.body);

    let mut spec = QuerySpec::default();
    spec.k = 2;
    spec.exclude_self = true;
    let expected = Arc::new(library_pairs(&points, None, &spec));
    let addr = server.addr().to_string();
    let spec_json = Arc::new(spec.to_json());

    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            let spec_json = Arc::clone(&spec_json);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut conn = Conn::connect(&addr).expect("connect");
                for _ in 0..REQUESTS_PER_CLIENT {
                    let resp = conn
                        .request("POST", "/collections/load/query", &spec_json)
                        .expect("query");
                    assert_eq!(resp.status, 200, "failed request: {}", resp.body);
                    assert_eq!(
                        server_pairs(&resp.body),
                        *expected,
                        "concurrent result diverged"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let m = server.metrics();
    assert_eq!(
        m.queries.load(Ordering::Relaxed),
        (CLIENTS * REQUESTS_PER_CLIENT) as u64
    );
    assert_eq!(m.rejected.load(Ordering::Relaxed), 0);
    server.shutdown();
}

/// A deliberately tiny server (one worker, queue depth one) under
/// overlapping slow queries must shed load with 429.
#[test]
fn saturated_server_answers_429() {
    let server = start_server("overload", 1, 1, 16);
    let client = Client::new(server.addr().to_string());
    let points = uniform_points(30_000, 0xBEEF);
    let created = client
        .create_collection("big", "mbrqt", &to_rows(&points))
        .expect("create");
    assert_eq!(created.status, 201, "{}", created.body);

    // Slow query, but deadline-bounded so the test always terminates.
    let mut spec = QuerySpec::default();
    spec.k = 8;
    spec.exclude_self = true;
    spec.deadline_ms = Some(10_000);
    let spec_json = Arc::new(spec.to_json());
    let addr = server.addr().to_string();

    // Two closed-loop occupants hammer the 1-worker/1-slot server so the
    // worker and the queue slot stay contended; they keep resubmitting
    // (a single query is fast, and any one attempt can itself be bounced
    // by a probe below) until the main thread has seen its 429.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let occupants: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            let spec_json = Arc::clone(&spec_json);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut conn = Conn::connect(&addr).expect("connect");
                loop {
                    let status = conn
                        .request("POST", "/collections/big/query", &spec_json)
                        .expect("slow query")
                        .status;
                    if stop.load(Ordering::Relaxed) {
                        return status;
                    }
                }
            })
        })
        .collect();
    // Worker busy + queue full → admission control rejects.  On a loaded
    // test machine the occupant threads may take a while to get their
    // requests onto the wire, so poll rather than sleep a fixed amount.
    // The probe spec carries a one-node visit budget: if a probe sneaks
    // in before both occupants hold the server, it is bounced with 422
    // almost immediately and frees its slot instead of starving them.
    let mut probe = QuerySpec::default();
    probe.k = 1;
    probe.exclude_self = true;
    probe.visit_budget = Some(1);
    let probe_json = probe.to_json();
    let probe_deadline = Instant::now() + Duration::from_secs(15);
    let rejected = loop {
        let resp = client
            .request("POST", "/collections/big/query", &probe_json)
            .expect("probe query");
        if resp.status == 429 {
            break resp;
        }
        assert!(
            resp.status == 200 || resp.status == 422,
            "probe should be rejected or admitted-and-budget-bounded, got {} {}",
            resp.status,
            resp.body
        );
        assert!(
            Instant::now() < probe_deadline,
            "never observed a 429 while both occupants held the 1-worker/1-slot server"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(rejected.body.contains("\"code\":3000"), "{}", rejected.body);
    assert!(server.metrics().rejected.load(Ordering::Relaxed) >= 1);

    stop.store(true, Ordering::Relaxed);
    for h in occupants {
        let status = h.join().expect("occupant thread");
        assert!(
            status == 200 || status == 429 || status == 504,
            "occupant should complete, get bounced by a probe, or hit its \
             deadline, got {status}"
        );
    }
    server.shutdown();
}

/// Client disconnect mid-query cancels the traversal and releases every
/// pinned frame (the PR 7 clean-abort contract, over a real socket).
#[test]
fn disconnect_mid_query_cancels_and_releases_pins() {
    let server = start_server("disconnect", 1, 4, 16);
    let client = Client::new(server.addr().to_string());
    let points = uniform_points(30_000, 0xD15C);
    let created = client
        .create_collection("victim", "mbrqt", &to_rows(&points))
        .expect("create");
    assert_eq!(created.status, 201, "{}", created.body);

    let mut spec = QuerySpec::default();
    spec.k = 8;
    spec.exclude_self = true;
    let body = spec.to_json();

    // Send the query by hand, give the worker time to get deep into the
    // traversal, then hang up without reading the response.
    {
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let head = format!(
            "POST /collections/victim/query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes()).expect("write head");
        stream.write_all(body.as_bytes()).expect("write body");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(300));
        // Dropping the stream sends FIN: the connection thread's poll
        // sees EOF and fires the CancelToken.
    }

    // The worker must observe the cancellation, abort cleanly, and
    // release every pin.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let cancelled = server.metrics().cancelled.load(Ordering::Relaxed);
        if cancelled >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "query was never cancelled after client disconnect"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let coll = server
        .registry()
        .get(&"victim".parse().expect("id"))
        .expect("collection");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let pinned = coll.pool.pinned_frames();
        if pinned == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "cancelled query left {pinned} frames pinned"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The server keeps serving afterwards.
    let mut quick = QuerySpec::default();
    quick.k = 1;
    quick.io_budget = Some(100_000);
    let resp = client.query("victim", &quick).expect("follow-up query");
    assert_eq!(resp.status, 200, "{}", resp.body);
    server.shutdown();
}

/// Graceful shutdown over the wire: the endpoint answers, the server
/// drains, and the port closes.
#[test]
fn shutdown_endpoint_stops_the_server() {
    let server = start_server("shutdown", 2, 8, 64);
    let addr = server.addr();
    let client = Client::new(addr.to_string());
    let created = client
        .create_collection("tiny", "mbrqt", &[[0.0, 0.0], [1.0, 1.0]])
        .expect("create");
    assert_eq!(created.status, 201);

    let resp = client.shutdown_server().expect("shutdown request");
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(server.is_shutting_down());
    server.wait();

    // The listener is gone: a fresh connection must fail outright.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener still accepting after shutdown"
    );
}

/// Time travel over the wire: every committed snapshot version stays
/// queryable (byte-identically) until it ages out of the history window,
/// and an aged-out version is a client error, not a storage fault.
#[test]
fn time_travel_queries_pin_old_versions() {
    let server = start_server("timetravel", 2, 16, 256);
    let client = Client::new(server.addr().to_string());
    // Corners first: MBRQT's universe is the bulk-build bounding box, so
    // later inserts must land inside it.
    let created = client
        .create_collection(
            "tt",
            "mbrqt",
            &[[0.0, 0.0], [1000.0, 1000.0], [10.0, 10.0]],
        )
        .expect("create");
    assert_eq!(created.status, 201, "{}", created.body);

    let mut spec = QuerySpec::default();
    spec.k = 1;
    spec.exclude_self = true;

    // The version the bulk build committed.
    let before = client.query("tt", &spec).expect("query v1");
    assert_eq!(before.status, 200, "{}", before.body);
    let v1 = before
        .outcome()
        .expect("outcome")
        .version
        .expect("versioned collection stamps outcomes");
    assert_eq!(before.outcome().expect("outcome").results.len(), 3);

    let ins = client
        .insert_points("tt", &[[500.0, 500.0], [501.0, 500.0]])
        .expect("insert");
    assert_eq!(ins.status, 200, "{}", ins.body);
    assert!(ins.body.contains("\"inserted\":2"), "{}", ins.body);

    // Latest now sees five points; the pinned v1 read is byte-identical
    // to the pre-insert response.
    let after = client.query("tt", &spec).expect("query latest");
    assert_eq!(after.status, 200, "{}", after.body);
    let after_outcome = after.outcome().expect("outcome");
    assert_eq!(after_outcome.results.len(), 5);
    assert!(after_outcome.version.expect("stamped") > v1);
    let pinned = client.query_at("tt", v1, &spec).expect("query at v1");
    assert_eq!(pinned.status, 200, "{}", pinned.body);
    assert_eq!(
        pinned.outcome().expect("outcome").version,
        Some(v1),
        "{}",
        pinned.body
    );
    assert_eq!(
        server_pairs(&pinned.body),
        server_pairs(&before.body),
        "time-travel read diverged from the original v1 response"
    );

    // Describe surfaces versioning; a never-committed future version and
    // (after enough commits) an aged-out one are client errors.
    let desc = client.request("GET", "/collections/tt", "").expect("describe");
    assert!(desc.body.contains("\"versioned\":true"), "{}", desc.body);
    let future = client.query_at("tt", 10_000, &spec).expect("future version");
    assert_eq!(future.status, 400, "{}", future.body);
    for _ in 0..12 {
        // Push v1 out of the bounded history window (keep = 8).
        let ins = client
            .insert_points("tt", &[[499.0, 499.0]])
            .expect("filler insert");
        assert_eq!(ins.status, 200, "{}", ins.body);
    }
    let aged = client.query_at("tt", v1, &spec).expect("aged version");
    assert_eq!(aged.status, 400, "{}", aged.body);
    server.shutdown();
}

/// The MVCC + registry race gate: over a restarted server (so the first
/// touch is a lazy open), many clients race first-touch gets and queries
/// against a writer committing inserts on the same collection. Exactly
/// one open happens, zero requests fail, and when the dust settles no
/// buffer frame is left pinned.
#[test]
fn parallel_first_touch_and_writer_commits_leave_nothing_pinned() {
    const READERS: usize = 8;
    const QUERIES_PER_READER: usize = 12;
    const WRITER_BATCHES: usize = 20;

    let dir = temp_dir("race");
    let config = |dir: &PathBuf| ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue_depth: 64,
        data_dir: dir.clone(),
        pool_frames: 256,
        compute_tokens: 0,
    };

    // Build the collection on a first server, then restart so the racing
    // requests below all hit a cold registry.
    let mut points = vec![Point([0.0, 0.0]), Point([1000.0, 1000.0])];
    points.extend(uniform_points(1500, 0xFACE));
    let first = Server::start(config(&dir)).expect("first server");
    let client = Client::new(first.addr().to_string());
    let created = client
        .create_collection("race", "mbrqt", &to_rows(&points))
        .expect("create");
    assert_eq!(created.status, 201, "{}", created.body);
    first.shutdown();

    let server = Server::start(config(&dir)).expect("second server");
    let addr = server.addr().to_string();
    let mut spec = QuerySpec::default();
    spec.k = 1;
    spec.exclude_self = true;
    let spec_json = Arc::new(spec.to_json());

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let addr = addr.clone();
            let spec_json = Arc::clone(&spec_json);
            std::thread::spawn(move || {
                let mut conn = Conn::connect(&addr).expect("connect");
                for _ in 0..QUERIES_PER_READER {
                    let resp = conn
                        .request("POST", "/collections/race/query", &spec_json)
                        .expect("query");
                    assert_eq!(resp.status, 200, "reader failed: {}", resp.body);
                    let outcome = QueryOutcome::from_json(&resp.body).expect("outcome parses");
                    // Whatever version was pinned, the result set is one
                    // neighbor per point of that snapshot.
                    assert!(outcome.results.len() >= 1502, "{}", resp.body);
                    assert!(outcome.version.is_some(), "{}", resp.body);
                }
            })
        })
        .collect();
    let writer = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let client = Client::new(addr);
            let mut rng = Rng::new(0xD0C5);
            for _ in 0..WRITER_BATCHES {
                let batch: Vec<[f64; 2]> = (0..3)
                    .map(|_| [rng.f64() * 1000.0, rng.f64() * 1000.0])
                    .collect();
                let resp = client.insert_points("race", &batch).expect("insert");
                assert_eq!(resp.status, 200, "writer failed: {}", resp.body);
            }
        })
    };
    for h in readers {
        h.join().expect("reader thread");
    }
    writer.join().expect("writer thread");

    // All those racing first touches opened the collection exactly once.
    assert_eq!(server.registry().open_count(), 1);
    let a = server.registry().get(&"race".parse().expect("id")).expect("get");
    let b = server.registry().get(&"race".parse().expect("id")).expect("get");
    assert!(Arc::ptr_eq(&a, &b), "registry handed out distinct handles");

    // Every request completed, so no reader pin (or writer txn) survives.
    assert_eq!(a.pool.pinned_frames(), 0, "frames left pinned after the race");
    let final_count = 1502 + (WRITER_BATCHES as u64) * 3;
    assert_eq!(a.num_points(), final_count);
    server.shutdown();
}

/// Collections persist: a new server over the same data dir reopens them
/// lazily and returns identical results.
#[test]
fn collections_reopen_from_disk_across_restarts() {
    let dir = temp_dir("reopen");
    let config = |dir: &PathBuf| ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 8,
        data_dir: dir.clone(),
        pool_frames: 64,
        compute_tokens: 0,
    };
    let points = uniform_points(500, 0x0DD);
    let mut spec = QuerySpec::default();
    spec.k = 3;
    spec.exclude_self = true;

    let first = Server::start(config(&dir)).expect("first server");
    let client = Client::new(first.addr().to_string());
    let created = client
        .create_collection("persist", "rstar", &to_rows(&points))
        .expect("create");
    assert_eq!(created.status, 201, "{}", created.body);
    let before = client.query("persist", &spec).expect("query before");
    assert_eq!(before.status, 200);
    first.shutdown();

    let second = Server::start(config(&dir)).expect("second server");
    let client = Client::new(second.addr().to_string());
    let listed = client.request("GET", "/collections", "").expect("list");
    assert!(listed.body.contains("\"persist\""), "{}", listed.body);
    let after = client.query("persist", &spec).expect("query after");
    assert_eq!(after.status, 200, "{}", after.body);
    assert_eq!(
        server_pairs(&after.body),
        server_pairs(&before.body),
        "reopened collection returned different results"
    );
    second.shutdown();
}

/// Intra-query parallelism over the wire: `?threads=` and the spec's
/// additive `threads` field both reach the engine, results stay
/// byte-identical to the serial path, the schema version is unchanged,
/// and every granted compute token comes back.
#[test]
fn threads_round_trip_matches_serial_without_schema_bump() {
    let server = start_server_tokens("threads", 2, 16, 256, 8);
    let client = Client::new(server.addr().to_string());
    let points = uniform_points(1200, 0x7188);
    let created = client
        .create_collection("par", "mbrqt", &to_rows(&points))
        .expect("create");
    assert_eq!(created.status, 201, "{}", created.body);

    let mut spec = QuerySpec::default();
    spec.k = 2;
    spec.exclude_self = true;

    let serial = client.query("par", &spec).expect("serial query");
    assert_eq!(serial.status, 200, "{}", serial.body);
    let expected = library_pairs(&points, None, &spec);
    assert_eq!(server_pairs(&serial.body), expected);

    // `?threads=` path (overrides the body).
    for threads in [0usize, 2, 4, 8] {
        let resp = client
            .query_threads("par", threads, &spec)
            .expect("threaded query");
        assert_eq!(resp.status, 200, "threads={threads}: {}", resp.body);
        assert_eq!(
            server_pairs(&resp.body),
            expected,
            "threads={threads}: parallel result diverged from serial over the wire"
        );
    }

    // Spec-field path: same wire version byte (`"v":1`), no schema bump.
    let mut spec_t = spec.clone();
    spec_t.threads = 3;
    let body = spec_t.to_json();
    assert!(body.contains("\"v\":1"), "{body}");
    assert!(body.contains("\"threads\":3"), "{body}");
    let resp = client
        .request("POST", "/collections/par/query", &body)
        .expect("spec-threads query");
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(server_pairs(&resp.body), expected);

    // Garbage is a 400, not a crash.
    let bad = client
        .request("POST", "/collections/par/query?threads=lots", &spec.to_json())
        .expect("bad threads");
    assert_eq!(bad.status, 400, "{}", bad.body);

    // Every extra token was returned and the cap held throughout.
    let tokens = server.compute_token_stats();
    assert_eq!(tokens.total, 8);
    assert_eq!(tokens.available, 8, "leaked compute tokens: {tokens:?}");
    assert!(tokens.high_water >= 1, "no grant ever happened: {tokens:?}");
    assert!(tokens.high_water <= tokens.total);
    server.shutdown();
}

/// The MBA variant's own wire-level `threads` knob must not bypass the
/// compute-token clamp: a body with no top-level `threads` field but a
/// big algorithm-level fan-out used to sail past the grant (the core
/// falls back to the variant knob whenever the request level is 1) and
/// spawn that many OS threads per query. The server now folds the knob
/// into the ask and overwrites it with the grant; values beyond the
/// wire cap are rejected outright.
#[test]
fn mba_variant_threads_cannot_bypass_compute_cap() {
    const TOKENS: usize = 2;
    let server = start_server_tokens("mbacap", 2, 16, 256, TOKENS);
    let client = Client::new(server.addr().to_string());
    let points = uniform_points(1000, 0xB1A5);
    let created = client
        .create_collection("mbacap", "mbrqt", &to_rows(&points))
        .expect("create");
    assert_eq!(created.status, 201, "{}", created.body);

    let mut spec = QuerySpec::default();
    spec.k = 2;
    spec.exclude_self = true;
    let expected = library_pairs(&points, None, &spec);

    // No top-level `threads`; the variant asks for a 64-way fan-out.
    let body = r#"{"v":1,"algorithm":{"name":"mba","traversal":"depth-first","expansion":"bidirectional","threads":64},"k":2,"exclude_self":true}"#;
    let resp = client
        .request("POST", "/collections/mbacap/query", body)
        .expect("variant-threads query");
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(server_pairs(&resp.body), expected);

    let tokens = server.compute_token_stats();
    assert_eq!(tokens.total, TOKENS);
    assert_eq!(tokens.available, TOKENS, "leaked compute tokens: {tokens:?}");
    assert!(
        tokens.high_water <= TOKENS,
        "variant knob pierced the compute cap: {tokens:?}"
    );

    // Beyond the wire bound the request never reaches the engine.
    let huge = r#"{"v":1,"algorithm":{"name":"mba","traversal":"depth-first","expansion":"bidirectional","threads":100000},"k":2}"#;
    let resp = client
        .request("POST", "/collections/mbacap/query", huge)
        .expect("over-cap variant threads");
    assert_eq!(resp.status, 400, "{}", resp.body);
    let resp = client
        .request(
            "POST",
            "/collections/mbacap/query?threads=100000",
            &spec.to_json(),
        )
        .expect("over-cap query param");
    assert_eq!(resp.status, 400, "{}", resp.body);
    server.shutdown();
}

/// The oversubscription gate: 32 concurrent clients all demanding
/// `threads=8` against a tiny token budget. Results stay identical,
/// nothing fails, the grant high-water never pierces the cap, and the
/// pool refills completely once the burst drains.
#[test]
fn compute_token_cap_holds_under_32_concurrent_clients() {
    const CLIENTS: usize = 32;
    const REQUESTS_PER_CLIENT: usize = 3;
    const TOKENS: usize = 3;

    let server = start_server_tokens("tokencap", 4, 64, 256, TOKENS);
    let client = Client::new(server.addr().to_string());
    let points = uniform_points(1500, 0xCAB);
    let created = client
        .create_collection("cap", "mbrqt", &to_rows(&points))
        .expect("create");
    assert_eq!(created.status, 201, "{}", created.body);

    let mut spec = QuerySpec::default();
    spec.k = 2;
    spec.exclude_self = true;
    let expected = Arc::new(library_pairs(&points, None, &spec));
    let spec_json = Arc::new(spec.to_json());
    let addr = server.addr().to_string();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            let spec_json = Arc::clone(&spec_json);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut conn = Conn::connect(&addr).expect("connect");
                for _ in 0..REQUESTS_PER_CLIENT {
                    let resp = conn
                        .request("POST", "/collections/cap/query?threads=8", &spec_json)
                        .expect("query");
                    assert_eq!(resp.status, 200, "failed request: {}", resp.body);
                    assert_eq!(
                        server_pairs(&resp.body),
                        *expected,
                        "token-clamped result diverged"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let tokens = server.compute_token_stats();
    assert_eq!(tokens.total, TOKENS);
    assert_eq!(
        tokens.available, TOKENS,
        "burst left tokens unreturned: {tokens:?}"
    );
    assert!(
        tokens.high_water <= TOKENS,
        "workers × threads pierced the compute cap: {tokens:?}"
    );
    assert_eq!(
        server.metrics().queries.load(Ordering::Relaxed),
        (CLIENTS * REQUESTS_PER_CLIENT) as u64
    );
    server.shutdown();
}

/// Disconnect-mid-query with intra-query parallelism: the fired cancel
/// token must reach every morsel worker, the whole fan-out must abort,
/// and no pin or compute token may leak.
#[test]
fn disconnect_cancels_parallel_query_and_releases_everything() {
    let server = start_server_tokens("par-disconnect", 1, 4, 16, 8);
    let client = Client::new(server.addr().to_string());
    let points = uniform_points(30_000, 0xF1F0);
    let created = client
        .create_collection("victim", "mbrqt", &to_rows(&points))
        .expect("create");
    assert_eq!(created.status, 201, "{}", created.body);

    let mut spec = QuerySpec::default();
    spec.k = 8;
    spec.exclude_self = true;
    let body = spec.to_json();

    {
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let head = format!(
            "POST /collections/victim/query?threads=4 HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes()).expect("write head");
        stream.write_all(body.as_bytes()).expect("write body");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(300));
        // FIN → connection thread fires the CancelToken; the engine's
        // abort flag stops every worker at its next pop/tick.
    }

    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if server.metrics().cancelled.load(Ordering::Relaxed) >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "parallel query was never cancelled after client disconnect"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let coll = server
        .registry()
        .get(&"victim".parse().expect("id"))
        .expect("collection");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let pinned = coll.pool.pinned_frames();
        if pinned == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "cancelled parallel query left {pinned} frames pinned"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let tokens = server.compute_token_stats();
    assert_eq!(
        tokens.available, tokens.total,
        "aborted query leaked compute tokens: {tokens:?}"
    );

    // The server keeps serving afterwards — in parallel, even.
    let mut quick = QuerySpec::default();
    quick.k = 1;
    quick.io_budget = Some(100_000);
    let resp = client
        .query_threads("victim", 2, &quick)
        .expect("follow-up query");
    assert_eq!(resp.status, 200, "{}", resp.body);
    server.shutdown();
}
