//! Fixed-seed checker runs as a permanent regression gate: the exact
//! cases these seeds generate were clean at the time the suite landed;
//! any future failure is a behavior change in the algorithms, the
//! geometry kernels, the index trees, or recovery.

use checker::{run_class, Class};

fn assert_clean(class: Class, seed: u64, cases: usize) {
    let failures = run_class(class, seed, cases);
    assert!(
        failures.is_empty(),
        "{} failures in class {}:\n{}",
        failures.len(),
        class.name(),
        failures
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn differential_cases_stay_clean() {
    assert_clean(Class::Diff, 0xD1FF_0001, 45);
}

#[test]
fn nxn_invariants_stay_clean() {
    assert_clean(Class::Nxn, 0x0171_0001, 300);
}

/// The kernels class is cheap (no index builds), so it runs across a
/// spread of fixed seeds — bit-identity of the batched kernels is the
/// load-bearing assumption behind every batched query path.
#[test]
fn kernel_bit_identity_stays_clean() {
    for seed in [1, 2, 3, 42, 0xDEAD] {
        assert_clean(Class::Kernels, seed, 150);
    }
}

#[test]
fn tree_invariants_stay_clean() {
    assert_clean(Class::Tree, 0x7EEE_0001, 30);
}

#[test]
fn recovery_stays_idempotent() {
    assert_clean(Class::Recovery, 0x6EC0_0001, 60);
}
