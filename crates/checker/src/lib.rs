//! Deterministic differential fuzzing and invariant checking for the ANN
//! evaluation stack.
//!
//! Six invariant classes, each seed-driven and fully reproducible:
//!
//! * [`Class::Diff`] — every [`Algorithm`](ann_core::Algorithm) variant
//!   must match brute force byte-for-byte under the canonical tie-break
//!   (per query, ascending `(distance, s_oid)`), across adversarial
//!   workloads: duplicates, coincident/collinear/clustered/skewed sets,
//!   `k ∈ {0, 1, |S|−1, |S|, >|S|}`, empty sides, `exclude_self`
//!   self-joins with duplicates, and `D ∈ {1, 2, 8}`. Failures shrink to
//!   a minimal reproducer and carry the diverging run's
//!   `ExecutionReport`.
//! * [`Class::Nxn`] — NXNDIST upper-bounds the true per-point NN
//!   distance, is never negative or NaN, and respects
//!   `MINMINDIST ≤ NXNDIST ≤ MAXMAXDIST` exactly, including degenerate
//!   (point, touching, coincident) MBR pairs at cancellation-prone
//!   offsets.
//! * [`Class::Kernels`] — every batched SoA kernel in
//!   [`ann_geom::kernels`] reproduces its scalar counterpart bit-for-bit
//!   on adversarial candidate sets (coincident/duplicate points, `1e8`
//!   offsets, degenerate boxes, `D ∈ {1, 2, 8}`), including the shared
//!   accept/reject decision of the `_within` variant.
//! * [`Class::Tree`] — MBRQT and R*-tree structural invariants and the
//!   exact object census survive random insert/delete interleavings.
//! * [`Class::Recovery`] — journal recovery after an injected torn-write
//!   crash lands on a committed prefix and is idempotent across reopens.
//! * [`Class::Faults`] — a query hit by a scheduled transient fault, bit
//!   flip, or device crash lands in exactly one of three clean outcomes:
//!   retried-and-byte-identical, a structured [`QueryError`]
//!   (`ann_core::QueryError`) with every pin released and a byte-identical
//!   re-run, or a quarantined page that fails fast until healed — never a
//!   panic, wrong answer, or poisoned pool.
//! * [`Class::Parallel`] — the morsel-driven parallel engine (DESIGN.md
//!   §16) is answer-invisible: every algorithm variant at
//!   `threads ∈ {2, 3, 8}` reproduces its serial run byte-for-byte on
//!   adversarial workloads, and a parallel query hit mid-flight by a
//!   cancel, deadline, exhausted budget, or injected storage fault lands
//!   in a typed [`QueryError`](ann_core::QueryError) with zero leaked
//!   pins and a byte-identical cold re-run.
//! * [`Class::Wire`] — the serving wire schema (DESIGN.md §14):
//!   fuzz-generated [`QuerySpec`](ann_core::QuerySpec)s round-trip
//!   `to_json → from_json` as the identity and byte-stably,
//!   [`QueryOutcome`](ann_core::QueryOutcome) distances survive JSON
//!   bit-exactly for arbitrary non-NaN bit patterns, trailing bytes and
//!   duplicate object keys are hard parse errors, and a randomly
//!   corrupted document never panics the hand-rolled parser.
//! * [`Class::Interleave`] — MVCC snapshot isolation (DESIGN.md §15):
//!   versioned commits racing pinned readers; every pinned snapshot's
//!   census and ANN answers stay byte-identical to brute force over
//!   exactly its version's point set, aborts and GC leave nothing
//!   pinned, and threaded pin/census/release loops never see a torn
//!   read.
//!
//! Run via `cargo run -p checker --bin fuzz -- --seed 1 --cases 200`.

pub mod diff;
pub mod faults;
pub mod gen;
pub mod interleave;
pub mod invariants;
pub mod parallel;
pub mod report;
pub mod rng;
pub mod shrink;

use report::Failure;
use rng::Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The invariant classes the fuzzer can exercise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    Diff,
    Nxn,
    Kernels,
    Tree,
    Recovery,
    Faults,
    Wire,
    Interleave,
    Parallel,
}

impl Class {
    pub const ALL: [Class; 9] = [
        Class::Diff,
        Class::Nxn,
        Class::Kernels,
        Class::Tree,
        Class::Recovery,
        Class::Faults,
        Class::Wire,
        Class::Interleave,
        Class::Parallel,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Class::Diff => "diff",
            Class::Nxn => "nxn",
            Class::Kernels => "kernels",
            Class::Tree => "tree",
            Class::Recovery => "recovery",
            Class::Faults => "faults",
            Class::Wire => "wire",
            Class::Interleave => "interleave",
            Class::Parallel => "parallel",
        }
    }

    pub fn parse(s: &str) -> Option<Class> {
        Class::ALL.into_iter().find(|c| c.name() == s)
    }
}

/// Runs `cases` cases of one class from `seed`; returns every failure.
pub fn run_class(class: Class, seed: u64, cases: usize) -> Vec<Failure> {
    let mut parent = Rng::new(seed ^ splitmix_tag(class));
    let mut failures = Vec::new();
    for i in 0..cases {
        let case_seed = parent.next_u64();
        let f = match class {
            // Round-robin the dimensionalities the paper's analysis
            // spans: the planar base case, the 1-D degenerate case, and
            // a high-D case where MBR faces dominate.
            Class::Diff => match i % 3 {
                0 => diff_one::<2>(case_seed, i),
                1 => diff_one::<1>(case_seed, i),
                _ => diff_one::<8>(case_seed, i),
            },
            Class::Nxn => match i % 3 {
                0 => invariant_one::<2>(class, case_seed, i),
                1 => invariant_one::<1>(class, case_seed, i),
                _ => invariant_one::<8>(class, case_seed, i),
            },
            Class::Kernels => match i % 3 {
                0 => invariant_one::<2>(class, case_seed, i),
                1 => invariant_one::<1>(class, case_seed, i),
                _ => invariant_one::<8>(class, case_seed, i),
            },
            Class::Tree => match i % 3 {
                0 => invariant_one::<2>(class, case_seed, i),
                1 => invariant_one::<1>(class, case_seed, i),
                _ => invariant_one::<8>(class, case_seed, i),
            },
            Class::Recovery => invariant_one::<2>(class, case_seed, i),
            // Fault scheduling is op-index-based; the 2-D planar case
            // already exercises every pool-backed traversal.
            Class::Faults => invariant_one::<2>(class, case_seed, i),
            // The wire schema is dimension-agnostic: oids and distances.
            Class::Wire => invariant_one::<2>(class, case_seed, i),
            // MVCC versioning is dimension-agnostic (it lives below the
            // node layer); the planar case exercises every code path.
            Class::Interleave => invariant_one::<2>(class, case_seed, i),
            // Parallel dispatch is dimension-agnostic (morsels wrap the
            // same traversals); the planar case covers every engine path.
            Class::Parallel => invariant_one::<2>(class, case_seed, i),
        };
        failures.extend(f);
    }
    failures
}

/// Runs every class with the same seed and case budget.
pub fn run_all(seed: u64, cases: usize) -> Vec<Failure> {
    Class::ALL
        .into_iter()
        .flat_map(|c| run_class(c, seed, cases))
        .collect()
}

/// Distinct per-class seed streams so `--class nxn` replays the exact
/// cases the all-classes run saw.
fn splitmix_tag(class: Class) -> u64 {
    match class {
        Class::Diff => 0xD1FF,
        Class::Nxn => 0x0171,
        Class::Kernels => 0xB175,
        Class::Tree => 0x7EEE,
        Class::Recovery => 0x6EC0,
        Class::Faults => 0xFA17,
        Class::Wire => 0x3133,
        Class::Interleave => 0x171E,
        Class::Parallel => 0x9A7A,
    }
}

fn diff_one<const D: usize>(case_seed: u64, index: usize) -> Option<Failure> {
    let mut rng = Rng::new(case_seed);
    let case = gen::diff_case::<D>(&mut rng);
    let div = diff::check_case(&case)?;
    let (min_case, min_div) = shrink::shrink(case, div);
    let trace = catch_unwind(AssertUnwindSafe(|| {
        diff::trace_divergence(&min_case, &min_div)
    }))
    .ok();
    Some(Failure {
        class: "diff",
        seed: case_seed,
        case_index: index,
        dims: D,
        message: format!("{}: {}", min_div.label, min_div.detail),
        repro: format!(
            "k={} exclude_self={} group_size={} occupancy={} r={:?} s={:?}",
            min_case.k,
            min_case.exclude_self,
            min_case.group_size,
            min_case.avg_cell_occupancy,
            min_case.r,
            min_case.s
        ),
        trace_json: trace,
    })
}

fn invariant_one<const D: usize>(class: Class, case_seed: u64, index: usize) -> Option<Failure> {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut rng = Rng::new(case_seed);
        match class {
            Class::Nxn => invariants::check_nxn_case::<D>(&mut rng),
            Class::Kernels => invariants::check_kernels_case::<D>(&mut rng),
            Class::Tree => invariants::check_tree_case::<D>(&mut rng),
            Class::Recovery => invariants::check_recovery_case(&mut rng),
            Class::Faults => faults::check_faults_case(&mut rng),
            Class::Wire => invariants::check_wire_case(&mut rng),
            Class::Interleave => interleave::check_interleave_case(&mut rng),
            Class::Parallel => parallel::check_parallel_case(&mut rng),
            Class::Diff => unreachable!("diff has its own driver"),
        }
    }));
    let message = match outcome {
        Ok(None) => return None,
        Ok(Some(m)) => m,
        Err(e) => format!("panicked: {}", panic_text(&e)),
    };
    Some(Failure {
        class: class.name(),
        seed: case_seed,
        case_index: index,
        dims: D,
        message,
        repro: format!("rerun with Rng::new({case_seed:#x}) in {}", class.name()),
        trace_json: None,
    })
}

fn panic_text(e: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
