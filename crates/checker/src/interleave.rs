//! MVCC interleaving checks: versioned commits racing pinned readers.
//!
//! Each case drives one versioned tree (MBRQT or R*-tree, chosen by the
//! seed) through a random insert/delete schedule while reader snapshots
//! are pinned, held across later commits, and verified against a shadow
//! model of **exactly the point set their version saw**:
//!
//! * a pinned [`ReadContext`]'s object census and ANN query answers are
//!   byte-identical to brute force over its version's model point set,
//!   no matter how many commits landed after the pin;
//! * an aborted transaction (an out-of-universe MBRQT insert) leaves the
//!   latest version, the census, and `pinned_frames()` untouched;
//! * versions below the GC floor reject new pins with
//!   `VersionNotRetained`, while already-pinned stragglers stay readable;
//! * the decoded-node cache never holds entries below the retire floor
//!   after a mutation ([`NodeCache::stale_len`] stays zero);
//! * a free-running writer racing threaded readers (each pin → census →
//!   release) never produces a torn read: every snapshot's census length
//!   equals its own pinned meta count;
//! * when every pin is released: `pinned_readers() == 0` and
//!   `pinned_frames() == 0`.

use ann_core::brute::brute_force_aknn;
use ann_core::index::{collect_objects, validate, SpatialIndex};
use ann_core::prelude::*;
use ann_core::snapshot::{ReadContext, VersionedHandle};
use ann_core::stats::NeighborPair;
use ann_geom::{Mbr, Point};
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_rstar::{RStar, RStarConfig};
use ann_store::{BufferPool, MemDisk, StoreError, VersionedStore};
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::rng::Rng;

/// The tree operations the interleaving driver needs, implemented by
/// both index kinds so one driver checks both.
trait VersionedTree: SpatialIndex<2> + Send + Sized {
    /// Whether inserts outside the build-time universe must fail (MBRQT:
    /// yes, fixed halving domain; R*-tree: no, bounds grow).
    const REJECTS_OUT_OF_UNIVERSE: bool;

    fn insert(&mut self, oid: u64, p: Point<2>) -> ann_store::Result<()>;
    fn delete(&mut self, oid: u64, p: &Point<2>) -> ann_store::Result<bool>;
    fn store(&self) -> &Arc<VersionedStore>;
    fn handle(&self) -> VersionedHandle<2>;
}

impl VersionedTree for Mbrqt<2> {
    const REJECTS_OUT_OF_UNIVERSE: bool = true;

    fn insert(&mut self, oid: u64, p: Point<2>) -> ann_store::Result<()> {
        Mbrqt::insert(self, oid, p)
    }
    fn delete(&mut self, oid: u64, p: &Point<2>) -> ann_store::Result<bool> {
        Mbrqt::delete(self, oid, p)
    }
    fn store(&self) -> &Arc<VersionedStore> {
        self.versioned_store().expect("versioning enabled")
    }
    fn handle(&self) -> VersionedHandle<2> {
        self.versioned_handle().expect("versioning enabled")
    }
}

impl VersionedTree for RStar<2> {
    const REJECTS_OUT_OF_UNIVERSE: bool = false;

    fn insert(&mut self, oid: u64, p: Point<2>) -> ann_store::Result<()> {
        RStar::insert(self, oid, p)
    }
    fn delete(&mut self, oid: u64, p: &Point<2>) -> ann_store::Result<bool> {
        RStar::delete(self, oid, p)
    }
    fn store(&self) -> &Arc<VersionedStore> {
        self.versioned_store().expect("versioning enabled")
    }
    fn handle(&self) -> VersionedHandle<2> {
        self.versioned_handle().expect("versioning enabled")
    }
}

/// A reader pinned at some past commit, with the model of what it saw.
struct PinnedReader {
    ctx: ReadContext<2>,
    model: BTreeMap<u64, Point<2>>,
    pinned_at_step: usize,
}

/// One interleave case; `None` means every invariant held.
pub fn check_interleave_case(rng: &mut Rng) -> Option<String> {
    let scale = *rng.pick(&crate::gen::SCALES);
    let hi = 9.0 * scale;
    let universe = Mbr::new([0.0, 0.0], [hi, hi]);
    let keep = rng.range(2, 7) as u32;
    let pool = Arc::new(BufferPool::new(MemDisk::new(), 192));

    if rng.chance(0.5) {
        let cfg = MbrqtConfig {
            bucket_capacity: 8,
            ..Default::default()
        };
        let mut tree = match Mbrqt::<2>::create(Arc::clone(&pool), universe, &cfg) {
            Ok(t) => t,
            Err(e) => return Some(format!("mbrqt create failed: {e:?}")),
        };
        if let Err(e) = tree.enable_versioning(keep) {
            return Some(format!("mbrqt enable_versioning failed: {e:?}"));
        }
        run_case(rng, tree, &pool, scale).map(|m| format!("mbrqt keep={keep}: {m}"))
    } else {
        let cfg = RStarConfig {
            max_leaf_entries: 8,
            max_internal_entries: 4,
            ..Default::default()
        };
        let mut tree = match RStar::<2>::create(Arc::clone(&pool), &cfg) {
            Ok(t) => t,
            Err(e) => return Some(format!("rstar create failed: {e:?}")),
        };
        if let Err(e) = tree.enable_versioning(keep) {
            return Some(format!("rstar enable_versioning failed: {e:?}"));
        }
        run_case(rng, tree, &pool, scale).map(|m| format!("rstar keep={keep}: {m}"))
    }
}

fn run_case<T: VersionedTree>(
    rng: &mut Rng,
    mut tree: T,
    pool: &Arc<BufferPool>,
    scale: f64,
) -> Option<String> {
    let handle = tree.handle();
    let mut live: BTreeMap<u64, Point<2>> = BTreeMap::new();
    let mut next_oid = 0u64;
    let mut pinned: Vec<PinnedReader> = Vec::new();

    // -- scripted interleaving: commits with pins held across them -------
    let ops = rng.range(12, 48);
    for step in 0..ops {
        let deleting = !live.is_empty() && rng.chance(0.35);
        if deleting {
            let idx = rng.range(0, live.len());
            let (&oid, &point) = live.iter().nth(idx).expect("index in range");
            match tree.delete(oid, &point) {
                Ok(true) => {}
                Ok(false) => {
                    return Some(format!("delete of live oid {oid} at step {step} reported absent"))
                }
                Err(e) => return Some(format!("delete failed at step {step}: {e:?}")),
            }
            live.remove(&oid);
        } else {
            let p = Point::new([
                rng.range(0, 9) as f64 * scale,
                rng.range(0, 9) as f64 * scale,
            ]);
            let oid = next_oid;
            next_oid += 1;
            if let Err(e) = tree.insert(oid, p) {
                return Some(format!("insert failed at step {step}: {e:?}"));
            }
            live.insert(oid, p);
        }

        // Satellite invariant: no mutation may strand retired-version
        // entries in the decoded-node cache.
        if let Some(cache) = tree.node_cache() {
            let stale = cache.stale_len();
            if stale != 0 {
                return Some(format!("{stale} stale node-cache entries after step {step}"));
            }
        }

        // Pin a reader at the state this commit produced; it will be
        // verified after later commits have overwritten the latest tree.
        if rng.chance(0.3) {
            match handle.pin(None) {
                Ok(ctx) => pinned.push(PinnedReader {
                    ctx,
                    model: live.clone(),
                    pinned_at_step: step,
                }),
                Err(e) => return Some(format!("pin at step {step} failed: {e:?}")),
            }
        }
        // Release (after verifying) a random straggler mid-run.
        if !pinned.is_empty() && rng.chance(0.15) {
            let idx = rng.range(0, pinned.len());
            let reader = pinned.swap_remove(idx);
            if let Some(m) = verify_pinned(rng, &reader) {
                return Some(m);
            }
        }
    }

    // -- abort path: a failed txn changes nothing --------------------------
    if T::REJECTS_OUT_OF_UNIVERSE {
        let latest_before = tree.store().latest();
        let outside = Point::new([20.0 * scale, 20.0 * scale]);
        match tree.insert(next_oid, outside) {
            Ok(()) => return Some("out-of-universe insert was accepted".to_string()),
            Err(_) => {}
        }
        if tree.store().latest() != latest_before {
            return Some(format!(
                "aborted insert advanced the version: {} -> {}",
                latest_before,
                tree.store().latest()
            ));
        }
        if pool.pinned_frames() != 0 {
            return Some(format!(
                "aborted insert left {} frames pinned",
                pool.pinned_frames()
            ));
        }
        match collect_objects(&tree) {
            Ok(census) => {
                if census.len() != live.len() {
                    return Some(format!(
                        "aborted insert changed the census: {} vs {}",
                        census.len(),
                        live.len()
                    ));
                }
            }
            Err(e) => return Some(format!("census after abort failed: {e:?}")),
        }
    }

    // -- GC floor: unpinned history rejects, stragglers survive ------------
    let store = Arc::clone(tree.store());
    let floor = store.version_floor();
    if floor > 1 {
        let dead = floor - 1;
        if !store.retained().contains(&dead) {
            match handle.pin(Some(dead)) {
                Err(StoreError::VersionNotRetained(v)) if v == dead => {}
                Err(e) => {
                    return Some(format!("pin of GC'd version {dead} failed oddly: {e:?}"))
                }
                Ok(_) => return Some(format!("pinned GC'd version {dead}")),
            }
        }
    }

    // -- every surviving pin reads its own past, byte for byte -------------
    for reader in &pinned {
        if let Some(m) = verify_pinned(rng, reader) {
            return Some(m);
        }
    }
    // The live tree still validates and matches the current model.
    match validate(&tree) {
        Ok(shape) => {
            if shape.objects != live.len() as u64 {
                return Some(format!(
                    "live tree census {} != model {}",
                    shape.objects,
                    live.len()
                ));
            }
        }
        Err(e) => return Some(format!("live tree failed validation: {e:?}")),
    }

    drop(pinned);
    store.gc();
    if store.pinned_readers() != 0 {
        return Some(format!(
            "{} reader pins leaked after all contexts dropped",
            store.pinned_readers()
        ));
    }

    // -- threaded: free-running writer vs pin/census/release readers -------
    if let Some(m) = threaded_race(rng, &mut tree, &handle, &mut live, &mut next_oid, scale) {
        return Some(m);
    }

    if pool.pinned_frames() != 0 {
        return Some(format!(
            "{} frames still pinned at case end",
            pool.pinned_frames()
        ));
    }
    None
}

/// Census + query check of one pinned reader against its model.
fn verify_pinned(rng: &mut Rng, reader: &PinnedReader) -> Option<String> {
    let step = reader.pinned_at_step;
    let want: Vec<(u64, Point<2>)> = reader.model.iter().map(|(&o, &p)| (o, p)).collect();

    let mut got = match collect_objects(&reader.ctx) {
        Ok(g) => g,
        Err(e) => return Some(format!("pinned census (step {step}) failed: {e:?}")),
    };
    got.sort_by_key(|(oid, _)| *oid);
    if got != want {
        return Some(format!(
            "pinned snapshot (step {step}, version {}) census diverged: {} objects vs {} expected",
            reader.ctx.version(),
            got.len(),
            want.len()
        ));
    }
    if want.is_empty() {
        return None;
    }

    // Self-join ANN over the pinned view must equal brute force over the
    // model — bit-identical distances under the canonical tie-break.
    let k = rng.range(1, 4);
    let exclude_self = rng.chance(0.5);
    let algorithm = match rng.range(0, 3) {
        0 => Algorithm::mba(),
        1 => Algorithm::Bnn { group_size: 4 },
        _ => Algorithm::Mnn,
    };
    let mut truth = brute_force_aknn(&want, &want, k, exclude_self);
    truth.sort_by(|a, b| {
        (a.r_oid, a.dist, a.s_oid)
            .partial_cmp(&(b.r_oid, b.dist, b.s_oid))
            .expect("finite distances")
    });
    let run = AnnRequest::new(algorithm)
        .k(k)
        .exclude_self(exclude_self)
        .run(Input::Index(&reader.ctx), Input::Index(&reader.ctx));
    let mut out = match run {
        Ok(out) => out,
        Err(e) => return Some(format!("query over pinned snapshot (step {step}) failed: {e:?}")),
    };
    out.sort();
    compare_pairs(&out.results, &truth).map(|m| {
        format!(
            "pinned snapshot (step {step}, version {}, {} k={k} exclude_self={exclude_self}): {m}",
            reader.ctx.version(),
            algorithm.name()
        )
    })
}

fn compare_pairs(got: &[NeighborPair], want: &[NeighborPair]) -> Option<String> {
    if got.len() != want.len() {
        return Some(format!(
            "{} results, brute force has {}",
            got.len(),
            want.len()
        ));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g.r_oid != w.r_oid || g.s_oid != w.s_oid || g.dist.to_bits() != w.dist.to_bits() {
            return Some(format!(
                "result[{i}] got (r={}, s={}, d={:?}), want (r={}, s={}, d={:?})",
                g.r_oid, g.s_oid, g.dist, w.r_oid, w.s_oid, w.dist
            ));
        }
    }
    None
}

/// Readers pin/census/release in their own threads while the writer
/// commits in this one. Without a shared model (the point of the race),
/// the torn-read oracle is *internal* consistency: each snapshot's
/// census must match its own pinned meta count exactly, and every point
/// must be one the writer could have written.
fn threaded_race<T: VersionedTree>(
    rng: &mut Rng,
    tree: &mut T,
    handle: &VersionedHandle<2>,
    live: &mut BTreeMap<u64, Point<2>>,
    next_oid: &mut u64,
    scale: f64,
) -> Option<String> {
    const READERS: usize = 3;
    let commits = rng.range(12, 30);
    let mut seeds = [0u64; READERS];
    seeds.iter_mut().for_each(|s| *s = rng.next_u64());

    let reader_fail = std::thread::scope(|scope| -> Option<String> {
        let handles: Vec<_> = (0..READERS)
            .map(|t| {
                let handle = handle.clone();
                let seed = seeds[t];
                scope.spawn(move || -> Option<String> {
                    let mut rng = Rng::new(seed);
                    for round in 0..20 {
                        let ctx = match handle.pin(None) {
                            Ok(c) => c,
                            Err(e) => return Some(format!("reader pin failed: {e:?}")),
                        };
                        let census = match collect_objects(&ctx) {
                            Ok(c) => c,
                            Err(e) => {
                                return Some(format!(
                                    "reader census of version {} failed: {e:?}",
                                    ctx.version()
                                ))
                            }
                        };
                        if census.len() as u64 != ctx.num_points() {
                            return Some(format!(
                                "torn read: version {} census {} != pinned meta count {} \
                                 (round {round})",
                                ctx.version(),
                                census.len(),
                                ctx.num_points()
                            ));
                        }
                        for (oid, p) in &census {
                            let on_lattice = p.0.iter().all(|c| {
                                let cell = c / scale;
                                cell >= 0.0 && cell <= 9.0 && cell.fract() == 0.0
                            });
                            if !on_lattice {
                                return Some(format!(
                                    "torn read: version {} holds corrupt point {:?} (oid {oid})",
                                    ctx.version(),
                                    p
                                ));
                            }
                        }
                        if rng.chance(0.3) {
                            std::thread::yield_now();
                        }
                    }
                    None
                })
            })
            .collect();

        // The writer: commits race the pins above.
        let mut writer_fail = None;
        for step in 0..commits {
            let deleting = !live.is_empty() && rng.chance(0.3);
            if deleting {
                let idx = rng.range(0, live.len());
                let (&oid, &point) = live.iter().nth(idx).expect("index in range");
                if let Err(e) = tree.delete(oid, &point) {
                    writer_fail = Some(format!("racing delete failed at step {step}: {e:?}"));
                    break;
                }
                live.remove(&oid);
            } else {
                let p = Point::new([
                    rng.range(0, 9) as f64 * scale,
                    rng.range(0, 9) as f64 * scale,
                ]);
                let oid = *next_oid;
                *next_oid += 1;
                if let Err(e) = tree.insert(oid, p) {
                    writer_fail = Some(format!("racing insert failed at step {step}: {e:?}"));
                    break;
                }
                live.insert(oid, p);
            }
        }

        for h in handles {
            let fail = h.join().unwrap_or_else(|_| Some("reader panicked".to_string()));
            if writer_fail.is_none() {
                writer_fail = fail;
            }
        }
        writer_fail
    });
    if reader_fail.is_some() {
        return reader_fail;
    }

    let store = tree.store();
    if store.pinned_readers() != 0 {
        return Some(format!(
            "{} reader pins leaked after the threaded race",
            store.pinned_readers()
        ));
    }
    // Final state is exactly what the writer committed.
    let mut got = match collect_objects(tree) {
        Ok(g) => g,
        Err(e) => return Some(format!("post-race census failed: {e:?}")),
    };
    got.sort_by_key(|(oid, _)| *oid);
    let want: Vec<(u64, Point<2>)> = live.iter().map(|(&o, &p)| (o, p)).collect();
    if got != want {
        return Some(format!(
            "post-race census diverged: {} objects vs {} expected",
            got.len(),
            want.len()
        ));
    }
    None
}
