//! Differential checking: every [`Algorithm`] variant, driven through the
//! unified `ann_core::query::run` entrypoint, must reproduce brute force
//! **byte for byte** — same neighbor ids, bit-identical distances — under
//! the canonical tie-break (per query, ascending `(distance, s_oid)`).

use crate::gen::DiffCase;
use ann_core::brute::brute_force_aknn;
use ann_core::mba::{Expansion, Traversal};
use ann_core::prelude::*;
use ann_core::stats::NeighborPair;
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_rstar::{RStar, RStarConfig};
use ann_store::{BufferPool, MemDisk, PrefetchConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Small-node index configs so even tens of points span several pages.
fn qt_cfg() -> MbrqtConfig {
    MbrqtConfig {
        bucket_capacity: 8,
        ..Default::default()
    }
}

fn rs_cfg() -> RStarConfig {
    RStarConfig {
        max_leaf_entries: 8,
        max_internal_entries: 4,
        ..Default::default()
    }
}

/// The algorithm variants a case is checked against.
pub fn variants<const D: usize>(case: &DiffCase<D>) -> Vec<Algorithm> {
    vec![
        Algorithm::mba(),
        Algorithm::Mba {
            traversal: Traversal::BreadthFirst,
            expansion: Expansion::Unidirectional,
            threads: 1,
        },
        Algorithm::Mba {
            traversal: Traversal::default(),
            expansion: Expansion::default(),
            threads: 2,
        },
        Algorithm::Bnn {
            group_size: case.group_size,
        },
        Algorithm::Mnn,
        Algorithm::Hnn {
            avg_cell_occupancy: case.avg_cell_occupancy,
        },
    ]
}

/// Canonically sorted brute-force ground truth.
pub fn truth<const D: usize>(case: &DiffCase<D>) -> Vec<NeighborPair> {
    let mut t = brute_force_aknn(&case.r, &case.s, case.k, case.exclude_self);
    t.sort_by(|a, b| {
        (a.r_oid, a.dist, a.s_oid)
            .partial_cmp(&(b.r_oid, b.dist, b.s_oid))
            .expect("finite distances")
    });
    t
}

/// A confirmed divergence (or panic) of one variant on one case.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// `"<algorithm> <metric> [points-input]"`.
    pub label: String,
    /// First mismatching position, counts, or the panic payload.
    pub detail: String,
    /// Index into [`variants`] — used to re-run the loser under a tracer.
    pub variant: usize,
    pub metric: MetricChoice,
}

fn compare(got: &mut AnnOutput, want: &[NeighborPair], label: &str) -> Option<String> {
    got.sort();
    if got.results.len() != want.len() {
        return Some(format!(
            "{label}: {} results, brute force has {}",
            got.results.len(),
            want.len()
        ));
    }
    for (i, (g, w)) in got.results.iter().zip(want).enumerate() {
        if g.r_oid != w.r_oid || g.s_oid != w.s_oid || g.dist.to_bits() != w.dist.to_bits() {
            return Some(format!(
                "{label}: result[{i}] got (r={}, s={}, d={:?}), want (r={}, s={}, d={:?})",
                g.r_oid, g.s_oid, g.dist, w.r_oid, w.s_oid, w.dist
            ));
        }
    }
    None
}

fn run_variant<const D: usize>(
    case: &DiffCase<D>,
    ir: &Mbrqt<D>,
    is: &RStar<D>,
    alg: Algorithm,
    metric: MetricChoice,
) -> std::thread::Result<QueryResult<AnnOutput>> {
    catch_unwind(AssertUnwindSafe(|| {
        AnnRequest::new(alg)
            .k(case.k)
            .exclude_self(case.exclude_self)
            .metric(metric)
            .run(Input::Index(ir), Input::Index(is))
    }))
}

fn panic_text(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Builds the indexes for a case (MBRQT on `R`, R*-tree on `S` — mixed on
/// purpose; the entrypoint is generic per side).
pub fn build_indexes<const D: usize>(case: &DiffCase<D>) -> (Mbrqt<D>, RStar<D>) {
    let pool = Arc::new(BufferPool::new(MemDisk::new(), 128));
    let ir = Mbrqt::bulk_build(pool.clone(), &case.r, &qt_cfg()).expect("build R index");
    let is = RStar::bulk_build(pool.clone(), &case.s, &rs_cfg()).expect("build S index");
    // Every diff case runs with readahead on: prefetching moves physical
    // reads around but must never change a single byte of any answer.
    pool.enable_prefetch(PrefetchConfig::default());
    (ir, is)
}

/// Checks one case against every variant × metric; `None` means all of
/// them matched brute force exactly.
pub fn check_case<const D: usize>(case: &DiffCase<D>) -> Option<Divergence> {
    let want = truth(case);
    let (ir, is) = build_indexes(case);
    for (vi, alg) in variants(case).into_iter().enumerate() {
        for metric in [MetricChoice::Nxn, MetricChoice::MaxMax] {
            let label = format!("{} {:?}", alg.name(), metric);
            let fail = |detail: String| Divergence {
                label: label.clone(),
                detail,
                variant: vi,
                metric,
            };
            match run_variant(case, &ir, &is, alg, metric) {
                Err(e) => return Some(fail(format!("panicked: {}", panic_text(e)))),
                Ok(Err(e)) => return Some(fail(format!("returned Err: {e:?}"))),
                Ok(Ok(mut got)) => {
                    if let Some(d) = compare(&mut got, &want, &label) {
                        return Some(fail(d));
                    }
                }
            }
        }
    }
    // The index-free input paths: HNN with raw points on both sides, BNN
    // with raw points on the query side.
    let hnn = Algorithm::Hnn {
        avg_cell_occupancy: case.avg_cell_occupancy,
    };
    let res = catch_unwind(AssertUnwindSafe(|| {
        AnnRequest::new(hnn)
            .k(case.k)
            .exclude_self(case.exclude_self)
            .run(
                Input::<D, NoIndex>::Points(&case.r),
                Input::<D, NoIndex>::Points(&case.s),
            )
    }));
    let hnn_div = |detail: String| Divergence {
        label: "hnn points-input".to_string(),
        detail,
        variant: 5,
        metric: MetricChoice::Nxn,
    };
    match res {
        Err(e) => return Some(hnn_div(format!("panicked: {}", panic_text(e)))),
        Ok(Err(e)) => return Some(hnn_div(format!("returned Err: {e:?}"))),
        Ok(Ok(mut got)) => {
            if let Some(d) = compare(&mut got, &want, "hnn points-input") {
                return Some(hnn_div(d));
            }
        }
    }
    let bnn = Algorithm::Bnn {
        group_size: case.group_size,
    };
    let res = catch_unwind(AssertUnwindSafe(|| {
        AnnRequest::new(bnn)
            .k(case.k)
            .exclude_self(case.exclude_self)
            .run(Input::<D, NoIndex>::Points(&case.r), Input::Index(&is))
    }));
    let bnn_div = |detail: String| Divergence {
        label: "bnn points-input".to_string(),
        detail,
        variant: 3,
        metric: MetricChoice::Nxn,
    };
    match res {
        Err(e) => Some(bnn_div(format!("panicked: {}", panic_text(e)))),
        Ok(Err(e)) => Some(bnn_div(format!("returned Err: {e:?}"))),
        Ok(Ok(mut got)) => compare(&mut got, &want, "bnn points-input").map(bnn_div),
    }
}

/// Re-runs the diverging variant with a recording sink and returns the
/// `ExecutionReport` JSON — the forensic artifact for a bug report.
pub fn trace_divergence<const D: usize>(case: &DiffCase<D>, div: &Divergence) -> String {
    let (ir, is) = build_indexes(case);
    let alg = variants(case)[div.variant.min(variants(case).len() - 1)];
    let sink = RecordingSink::new();
    let res = catch_unwind(AssertUnwindSafe(|| {
        AnnRequest::new(alg)
            .k(case.k)
            .exclude_self(case.exclude_self)
            .metric(div.metric)
            .trace(&sink)
            .run(Input::Index(&ir), Input::Index(&is))
    }));
    let _ = res;
    sink.report(alg.name()).to_json()
}
