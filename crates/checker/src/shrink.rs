//! Case minimization: greedily shrinks a failing [`DiffCase`] to a small
//! reproducer while the divergence persists. Deterministic — no
//! randomness, bounded by a fixed re-check budget.

use crate::diff::{check_case, Divergence};
use crate::gen::DiffCase;

/// Re-check budget; each attempt re-runs every algorithm variant, so the
/// bound keeps worst-case shrink time proportional to one fuzz case.
const MAX_ATTEMPTS: usize = 300;

struct Budget {
    left: usize,
}

impl Budget {
    fn check<const D: usize>(&mut self, case: &DiffCase<D>) -> Option<Divergence> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        check_case(case)
    }
}

/// Removes `[start, start + len)` from one side — or both sides in
/// lockstep when the case is a coupled self-join (`exclude_self` only
/// makes sense when `r` and `s` are the same set).
fn without_chunk<const D: usize>(
    case: &DiffCase<D>,
    from_s: bool,
    start: usize,
    len: usize,
) -> DiffCase<D> {
    let mut c = case.clone();
    let coupled = c.exclude_self;
    if coupled || from_s {
        c.s.drain(start..start + len);
    }
    if coupled || !from_s {
        c.r.drain(start..start + len);
    }
    c
}

/// Shrinks `case` while it keeps failing; returns the smallest failing
/// case found and its divergence. The input divergence is returned
/// unchanged when no shrink succeeds.
pub fn shrink<const D: usize>(
    mut case: DiffCase<D>,
    mut div: Divergence,
) -> (DiffCase<D>, Divergence) {
    let mut budget = Budget { left: MAX_ATTEMPTS };

    // Phase 1: delta-debug the point sets, largest chunks first.
    loop {
        let mut progressed = false;
        for from_s in [true, false] {
            if case.exclude_self && !from_s {
                continue; // coupled: handled by the from_s pass
            }
            let side_len = if from_s { case.s.len() } else { case.r.len() };
            let mut chunk = (side_len / 2).max(1);
            loop {
                let side_len = if from_s { case.s.len() } else { case.r.len() };
                if side_len == 0 {
                    break;
                }
                let chunk_now = chunk.min(side_len);
                let mut start = 0;
                let mut removed_any = false;
                while start + chunk_now <= {
                    if from_s {
                        case.s.len()
                    } else {
                        case.r.len()
                    }
                } {
                    let cand = without_chunk(&case, from_s, start, chunk_now);
                    if let Some(d) = budget.check(&cand) {
                        case = cand;
                        div = d;
                        progressed = true;
                        removed_any = true;
                        // Same start now names the next chunk.
                    } else {
                        start += chunk_now;
                    }
                }
                if chunk == 1 && !removed_any {
                    break;
                }
                if !removed_any {
                    chunk = (chunk / 2).max(1);
                }
            }
        }
        if !progressed {
            break;
        }
    }

    // Phase 2: smallest k that still fails.
    for k in 0..case.k {
        let cand = DiffCase { k, ..case.clone() };
        if let Some(d) = budget.check(&cand) {
            case = cand;
            div = d;
            break;
        }
    }

    // Phase 3: drop exclude_self if the bug doesn't need it.
    if case.exclude_self {
        let cand = DiffCase {
            exclude_self: false,
            ..case.clone()
        };
        if let Some(d) = budget.check(&cand) {
            case = cand;
            div = d;
        }
    }

    (case, div)
}
