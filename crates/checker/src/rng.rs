//! Deterministic RNG for workload generation — a SplitMix64 stream, so
//! the checker needs no external RNG dependency and a failure's seed
//! reproduces the exact same case on any platform.

use ann_store::splitmix64;

/// Seed-driven generator; every case derives from one `u64`.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a stream; equal seeds yield equal streams forever.
    pub fn new(seed: u64) -> Self {
        Rng {
            state: splitmix64(seed),
        }
    }

    /// Derives an independent child stream (for per-case seeds).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`; `hi > lo` required.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(hi > lo);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniform pick from a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.range(0, xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.range(3, 9);
            assert!((3..9).contains(&v));
        }
    }
}
