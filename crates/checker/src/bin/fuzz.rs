//! Seed-driven fuzz driver: `fuzz [--seed S] [--cases N] [--class C]`.
//!
//! `--class` is one of `diff`, `nxn`, `kernels`, `tree`, `recovery`, `faults`,
//! `wire`, `interleave`, `parallel`, or `all`
//! (default). Exits non-zero when any case fails; every failure prints a
//! minimal reproducer (and, for differential failures, the diverging
//! run's `ExecutionReport` JSON).

use checker::{run_class, Class};
use std::process::ExitCode;

struct Args {
    seed: u64,
    cases: usize,
    classes: Vec<Class>,
}

fn parse_args() -> Result<Args, String> {
    let mut seed = 0xA11_AE57u64; // "all nearest"
    let mut cases = 200usize;
    let mut classes = Class::ALL.to_vec();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--seed" => {
                let v = value("--seed")?;
                seed = parse_u64(&v).ok_or_else(|| format!("bad --seed {v:?}"))?;
            }
            "--cases" => {
                let v = value("--cases")?;
                cases = v.parse().map_err(|_| format!("bad --cases {v:?}"))?;
            }
            "--class" => {
                let v = value("--class")?;
                if v == "all" {
                    classes = Class::ALL.to_vec();
                } else {
                    classes = vec![Class::parse(&v).ok_or_else(|| {
                        format!("unknown class {v:?} (diff|nxn|kernels|tree|recovery|faults|wire|interleave|parallel|all)")
                    })?];
                }
            }
            "--help" | "-h" => {
                return Err("usage: fuzz [--seed S] [--cases N] \
                            [--class diff|nxn|kernels|tree|recovery|faults|wire|interleave|parallel|all]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(Args {
        seed,
        cases,
        classes,
    })
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = 0usize;
    for class in &args.classes {
        let failures = run_class(*class, args.seed, args.cases);
        if failures.is_empty() {
            println!(
                "checker: class {:<8} seed {:#018x} — {} cases OK",
                class.name(),
                args.seed,
                args.cases
            );
        } else {
            for f in &failures {
                eprintln!("{}", f.render());
            }
            failed += failures.len();
        }
    }
    if failed > 0 {
        eprintln!("checker: {failed} failure(s)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
