//! Failure records: everything needed to reproduce and debug a checker
//! finding — the class, the per-case seed, the (shrunk) case itself, and
//! the execution trace of the diverging run when one exists.

/// One confirmed checker failure.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Invariant class name (`diff`, `nxn`, `tree`, `recovery`).
    pub class: &'static str,
    /// The per-case seed: `Rng::new(seed)` regenerates the exact case.
    pub seed: u64,
    /// Ordinal of the case within its run.
    pub case_index: usize,
    /// Coordinate dimensionality of the case.
    pub dims: usize,
    /// What went wrong (first mismatch, violated bound, or panic text).
    pub message: String,
    /// Human-readable minimal reproducer (the shrunk case, or the seed).
    pub repro: String,
    /// `ExecutionReport` JSON of the diverging run, when traceable.
    pub trace_json: Option<String>,
}

impl Failure {
    /// Multi-line rendering for the fuzz binary's output.
    pub fn render(&self) -> String {
        let mut out = format!(
            "FAIL [{} D={} case #{} seed {:#018x}]\n  {}\n  repro: {}",
            self.class, self.dims, self.case_index, self.seed, self.message, self.repro
        );
        if let Some(trace) = &self.trace_json {
            out.push_str("\n  trace: ");
            // Keep console output bounded; the full JSON is one line.
            if trace.len() > 2000 {
                out.push_str(&trace[..2000]);
                out.push_str("… (truncated)");
            } else {
                out.push_str(trace);
            }
        }
        out
    }
}
