//! Fault-trichotomy checking: a query hit by an injected storage fault
//! must land in exactly one of three clean outcomes —
//!
//! 1. **retried and byte-identical**: a transient fault under the retry
//!    policy is absorbed; the output matches the fault-free run
//!    bit-for-bit and the retry is counted;
//! 2. **clean typed error**: the query returns a structured
//!    [`QueryError`] with every pool pin released, and (when the device
//!    survives) a fault-free re-run over the same pool is byte-identical
//!    to a fresh run;
//! 3. **quarantined**: corruption detected by the pool's checksum fails
//!    the query, quarantines the page so the next touch fails fast, and
//!    healing (clearing the quarantine) fully restores service.
//!
//! Never a panic, never a silently wrong answer, never poisoned state.

use crate::gen::{self, DiffCase};
use crate::rng::Rng;
use ann_core::mba::{Expansion, Traversal};
use ann_core::prelude::*;
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_rstar::{RStar, RStarConfig};
use ann_store::{
    BufferPool, FaultyDisk, InjectedFault, MemDisk, PrefetchConfig, RetryPolicy, StoreError,
    FRAME_SIZE, QUARANTINED,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Small-node configs (same as the diff class) so tiny datasets still
/// span several pages — otherwise queries never touch the disk and no
/// fault can fire.
fn qt_cfg() -> MbrqtConfig {
    MbrqtConfig {
        bucket_capacity: 8,
        ..Default::default()
    }
}

fn rs_cfg() -> RStarConfig {
    RStarConfig {
        max_leaf_entries: 8,
        max_internal_entries: 4,
        ..Default::default()
    }
}

/// The fault scenarios a case draws from.
#[derive(Clone, Copy, Debug)]
enum Scenario {
    /// Transient fault under the default (retrying) policy.
    TransientRetried,
    /// Transient fault with retry disabled via the per-request override.
    TransientUnretried,
    /// Bit flip on a read — caught by CRC, page quarantined.
    BitFlip,
    /// Device crash (permanent): every later operation fails.
    Crash,
}

/// Pool-backed algorithm variants (HNN is poolless — no I/O fault can
/// reach it). `serial_only` drops the threaded variant: scenarios that
/// schedule a fault at an exact operation index rely on cold runs
/// replaying the baseline's operation sequence, which only serial
/// traversals guarantee.
fn variants(case: &DiffCase<2>, serial_only: bool) -> Vec<Algorithm> {
    let mut v = vec![
        Algorithm::mba(),
        Algorithm::Mba {
            traversal: Traversal::BreadthFirst,
            expansion: Expansion::Unidirectional,
            threads: 1,
        },
        Algorithm::Bnn {
            group_size: case.group_size,
        },
        Algorithm::Mnn,
    ];
    if !serial_only {
        v.push(Algorithm::Mba {
            traversal: Traversal::default(),
            expansion: Expansion::default(),
            threads: 2,
        });
    }
    v
}

/// The decision content of an output: results in canonical order plus the
/// work counters with the I/O block zeroed. Retries and cache state
/// legitimately differ between a faulted and a clean run; the *decisions*
/// (expansions, distance computations, neighbors) must not.
fn canon(out: &AnnOutput) -> (Vec<NeighborPair>, AnnStats) {
    let mut o = out.clone();
    o.sort();
    let mut stats = o.stats;
    stats.io = Default::default();
    (o.results, stats)
}

type RunResult = std::thread::Result<QueryResult<AnnOutput>>;

/// Makes the next run genuinely cold: drops the decoded-node caches both
/// indexes keep (which otherwise serve repeat traversals without any
/// pool traffic) and evicts every pool frame, so a scheduled fault has a
/// real disk-operation sequence to land in.
fn chill(pool: &BufferPool, ir: &Mbrqt<2>, is: &RStar<2>) -> ann_store::Result<()> {
    if let Some(c) = ir.node_cache() {
        c.clear();
    }
    if let Some(c) = is.node_cache() {
        c.clear();
    }
    pool.clear()
}

fn panic_text(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One fault-trichotomy case; `None` means every assertion held.
pub fn check_faults_case(rng: &mut Rng) -> Option<String> {
    let case = gen::diff_case::<2>(rng);
    let scenario = *rng.pick(&[
        Scenario::TransientRetried,
        Scenario::TransientUnretried,
        Scenario::BitFlip,
        Scenario::Crash,
    ]);
    let serial_only = !matches!(scenario, Scenario::TransientRetried);
    let alg = *rng.pick(&variants(&case, serial_only));
    let metric = *rng.pick(&[MetricChoice::Nxn, MetricChoice::MaxMax]);
    let label = format!("{} {:?} {:?}", alg.name(), metric, scenario);

    // Shared pool over a schedulable disk; a tiny frame budget forces
    // real disk traffic even for small cases.
    let fd = Arc::new(FaultyDisk::unlimited(MemDisk::new()));
    let pool = Arc::new(BufferPool::new(Arc::clone(&fd), 8));
    let ir = match Mbrqt::bulk_build(pool.clone(), &case.r, &qt_cfg()) {
        Ok(t) => t,
        Err(e) => return Some(format!("{label}: fault-free R build failed: {e}")),
    };
    let is = match RStar::bulk_build(pool.clone(), &case.s, &rs_cfg()) {
        Ok(t) => t,
        Err(e) => return Some(format!("{label}: fault-free S build failed: {e}")),
    };
    // Queries run with readahead on. Batch reads bypass the fault
    // schedule (see `FaultyDisk::read_batch`), so faults stay keyed to
    // the demand op sequence — and the trichotomy must hold regardless
    // of which frames the prefetcher happened to load first.
    pool.enable_prefetch(PrefetchConfig {
        max_inflight: 4,
        batch: 4,
    });

    let run = |retry: Option<RetryPolicy>| -> RunResult {
        catch_unwind(AssertUnwindSafe(|| {
            let mut req = AnnRequest::new(alg)
                .k(case.k)
                .exclude_self(case.exclude_self)
                .metric(metric);
            if let Some(p) = retry {
                req = req.retry(p);
            }
            req.run(Input::Index(&ir), Input::Index(&is))
        }))
    };

    // Cold fault-free baseline: the reference output AND the length of
    // the disk-operation window a fault can be scheduled into.
    if let Err(e) = chill(&pool, &ir, &is) {
        return Some(format!("{label}: pool clear failed: {e}"));
    }
    let o0 = fd.op_count();
    let baseline = match run(None) {
        Err(e) => {
            return Some(format!(
                "{label}: fault-free run panicked: {}",
                panic_text(&*e)
            ))
        }
        Ok(Err(e)) => return Some(format!("{label}: fault-free run failed: {e}")),
        Ok(Ok(out)) => out,
    };
    if pool.pinned_frames() != 0 {
        return Some(format!("{label}: fault-free run leaked pins"));
    }
    let span = (fd.op_count() - o0) as usize;
    if span == 0 {
        return None; // the query never reaches the disk (tiny inputs)
    }
    let base = canon(&baseline);

    let no_retry = RetryPolicy {
        max_attempts: 1,
        backoff: Duration::ZERO,
    };
    let retries0 = pool.stats().retries;
    if let Err(e) = chill(&pool, &ir, &is) {
        return Some(format!("{label}: pool clear failed: {e}"));
    }
    // Serial traversals replay the baseline's operation sequence exactly
    // on a cold pool, so any delta in [0, span) fires mid-query. The
    // threaded variant (TransientRetried only) may land the fault on a
    // different read — harmless, the retry policy absorbs it wherever it
    // lands — or race past the window without firing.
    let delta = rng.range(0, span) as u64;
    let fault = match scenario {
        Scenario::TransientRetried | Scenario::TransientUnretried => InjectedFault::Transient,
        Scenario::BitFlip => InjectedFault::BitFlip {
            bit: rng.range(0, FRAME_SIZE * 8),
        },
        Scenario::Crash => InjectedFault::Crash,
    };
    fd.inject_at(fd.op_count() + delta, fault);
    let request_retry = match scenario {
        Scenario::TransientUnretried => Some(no_retry),
        _ => None,
    };
    let faulted = run(request_retry);
    fd.clear_faults(); // an unfired fault must not leak into the re-runs
    if pool.pinned_frames() != 0 {
        return Some(format!("{label}: faulted run leaked pins"));
    }

    match (scenario, faulted) {
        (_, Err(e)) => {
            return Some(format!("{label}: faulted run panicked: {}", panic_text(&*e)));
        }

        (Scenario::TransientRetried, Ok(Ok(out))) => {
            // Leg 1 of the trichotomy: absorbed by retry, byte-identical.
            if canon(&out) != base {
                return Some(format!("{label}: retried run diverged from baseline"));
            }
            let threaded = matches!(alg, Algorithm::Mba { threads, .. } if threads > 1);
            if pool.stats().retries == retries0 && !threaded {
                return Some(format!("{label}: transient fault fired but retries=0"));
            }
        }
        (Scenario::TransientRetried, Ok(Err(e))) => {
            return Some(format!("{label}: retried transient surfaced: {e}"));
        }

        (
            Scenario::TransientUnretried,
            Ok(Err(QueryError::Io(StoreError::Injected { transient: true }))),
        ) => {
            // Leg 2: clean typed error; a fault-free re-run over the same
            // pool is byte-identical to the fresh baseline.
            if let Err(e) = chill(&pool, &ir, &is) {
                return Some(format!("{label}: clear after typed error failed: {e}"));
            }
            match run(None) {
                Err(e) => {
                    return Some(format!("{label}: re-run panicked: {}", panic_text(&*e)));
                }
                Ok(Err(e)) => return Some(format!("{label}: re-run failed: {e}")),
                Ok(Ok(out)) => {
                    if canon(&out) != base {
                        return Some(format!("{label}: re-run diverged after typed error"));
                    }
                }
            }
        }
        (Scenario::TransientUnretried, Ok(Err(e))) => {
            return Some(format!("{label}: wrong error for unretried transient: {e}"));
        }
        (Scenario::TransientUnretried, Ok(Ok(_))) => {
            return Some(format!("{label}: unretried transient was absorbed"));
        }

        (Scenario::BitFlip, Ok(Err(QueryError::Io(StoreError::Corrupt { page, .. })))) => {
            // Leg 3: CRC caught the flip and quarantined the page.
            let Some(bad) = page else {
                return Some(format!("{label}: corrupt error lost its page id"));
            };
            if !pool.is_quarantined(bad) {
                return Some(format!("{label}: corrupt page {bad} not quarantined"));
            }
            // The next touch fails fast: the serial replay reaches the
            // same page without re-reading the (intact) media.
            let hits0 = pool.stats().quarantine_hits;
            if let Err(e) = chill(&pool, &ir, &is) {
                return Some(format!("{label}: clear under quarantine failed: {e}"));
            }
            match run(None) {
                Err(e) => {
                    return Some(format!(
                        "{label}: quarantined re-run panicked: {}",
                        panic_text(&*e)
                    ));
                }
                Ok(Ok(_)) => {
                    return Some(format!("{label}: quarantined page served a clean run"));
                }
                Ok(Err(QueryError::Io(StoreError::Corrupt { what, .. }))) => {
                    if what != QUARANTINED {
                        return Some(format!(
                            "{label}: expected fast quarantine rejection, got {what:?}"
                        ));
                    }
                    if pool.stats().quarantine_hits == hits0 {
                        return Some(format!("{label}: quarantine hit not counted"));
                    }
                }
                Ok(Err(e)) => {
                    return Some(format!("{label}: wrong error under quarantine: {e}"));
                }
            }
            if pool.pinned_frames() != 0 {
                return Some(format!("{label}: quarantined re-run leaked pins"));
            }
            // Heal: the flip only damaged the in-flight read (the media
            // is intact), so lifting the quarantine restores service.
            pool.clear_quarantine();
            if let Err(e) = chill(&pool, &ir, &is) {
                return Some(format!("{label}: clear after heal failed: {e}"));
            }
            match run(None) {
                Err(e) => {
                    return Some(format!("{label}: healed run panicked: {}", panic_text(&*e)));
                }
                Ok(Err(e)) => return Some(format!("{label}: healed run failed: {e}")),
                Ok(Ok(out)) => {
                    if canon(&out) != base {
                        return Some(format!("{label}: healed run diverged from baseline"));
                    }
                }
            }
        }
        (Scenario::BitFlip, Ok(Ok(_))) => {
            return Some(format!("{label}: bit flip went undetected"));
        }
        (Scenario::BitFlip, Ok(Err(e))) => {
            return Some(format!("{label}: wrong error for bit flip: {e}"));
        }

        (
            Scenario::Crash,
            Ok(Err(QueryError::Io(StoreError::Injected { transient: false }))),
        ) => {
            // Leg 2, permanent flavor: typed error with pins released
            // (checked above). The device stays dead — no re-run leg.
        }
        (Scenario::Crash, Ok(Ok(_))) => {
            return Some(format!("{label}: query survived a crashed device"));
        }
        (Scenario::Crash, Ok(Err(e))) => {
            return Some(format!("{label}: wrong error for crash: {e}"));
        }
    }

    if pool.pinned_frames() != 0 {
        return Some(format!("{label}: case ends with leaked pins"));
    }
    None
}
