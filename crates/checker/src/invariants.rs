//! Structural invariant checks: the NXNDIST bound property, the classical
//! metric orderings, index-tree well-formedness under random mutation
//! interleavings, and journal-recovery idempotence under injected crashes.

use crate::rng::Rng;
use ann_core::index::validate;
use ann_core::prelude::*;
use ann_geom::{
    kernels, max_max_dist_sq, min_min_dist_sq, min_min_dist_sq_within, nxn_dist_sq, Mbr, Point,
    SoaMbrs, SoaPoints,
};
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_rstar::{RStar, RStarConfig};
use ann_store::{splitmix64, BufferPool, FaultyDisk, InjectedFault, MemDisk, FRAME_SIZE};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Relative slack for cross-expression-tree float comparisons (a point
/// distance and an MBR metric of the same configuration are computed
/// through different formulas and may differ by a few ulps).
const REL_EPS: f64 = 1.0e-9;

fn lattice_coord(rng: &mut Rng, scale: f64, offset: f64) -> f64 {
    rng.range(0, 9) as f64 * scale + offset
}

/// One NXNDIST property case: `S` points define the (minimum, by
/// construction) target MBR `N`; `M` is a random query box that may be
/// point-degenerate, touching, overlapping, or disjoint. Checks, for
/// sampled query points `r ∈ M`:
///
/// * `NXNDIST(M, N)` is finite, non-negative, and never NaN;
/// * `MINMINDIST(M, N) ≤ NXNDIST(M, N) ≤ MAXMAXDIST(M, N)` **exactly**;
/// * `min_{s ∈ S} dist(r, s) ≤ NXNDIST(M, N)` — the defining guarantee;
/// * `MINMINDIST(M, N) ≤ dist(r, s) ≤ MAXMAXDIST(M, N)` for all `s ∈ S`.
pub fn check_nxn_case<const D: usize>(rng: &mut Rng) -> Option<String> {
    let scale = *rng.pick(&crate::gen::SCALES);
    let offset = *rng.pick(&crate::gen::OFFSETS);
    let n_s = rng.range(1, 9);
    let s: Vec<Point<D>> = (0..n_s)
        .map(|_| {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                *v = lattice_coord(rng, scale, offset);
            }
            Point::new(c)
        })
        .collect();
    let n_mbr = Mbr::from_points(s.iter());

    // M: a lattice box; degenerate (point) per dimension with prob 1/3,
    // which also produces shared-face "touching" configurations.
    let mut lo = [0.0; D];
    let mut hi = [0.0; D];
    for d in 0..D {
        let a = lattice_coord(rng, scale, offset);
        let b = if rng.chance(1.0 / 3.0) {
            a
        } else {
            lattice_coord(rng, scale, offset)
        };
        lo[d] = a.min(b);
        hi[d] = a.max(b);
    }
    let m_mbr = Mbr::new(lo, hi);

    let nxn = nxn_dist_sq(&m_mbr, &n_mbr);
    let minmin = min_min_dist_sq(&m_mbr, &n_mbr);
    let maxmax = max_max_dist_sq(&m_mbr, &n_mbr);
    if nxn.is_nan() || nxn < 0.0 {
        return Some(format!("NXNDIST² = {nxn:?} for M={m_mbr:?} N={n_mbr:?}"));
    }
    if nxn < minmin {
        return Some(format!(
            "NXNDIST² {nxn:?} < MINMINDIST² {minmin:?} for M={m_mbr:?} N={n_mbr:?}"
        ));
    }
    if nxn > maxmax {
        return Some(format!(
            "NXNDIST² {nxn:?} > MAXMAXDIST² {maxmax:?} for M={m_mbr:?} N={n_mbr:?}"
        ));
    }

    // Query points: every corner-ish extreme plus random interior points.
    let mut queries: Vec<Point<D>> = vec![Point::new(m_mbr.lo), Point::new(m_mbr.hi)];
    for _ in 0..4 {
        let mut c = [0.0; D];
        for d in 0..D {
            c[d] = m_mbr.lo[d] + rng.f64() * (m_mbr.hi[d] - m_mbr.lo[d]);
        }
        queries.push(Point::new(c));
    }
    for r in &queries {
        let mut nn = f64::INFINITY;
        for p in &s {
            let d2 = r.dist_sq(p);
            nn = nn.min(d2);
            if d2 > maxmax * (1.0 + REL_EPS) {
                return Some(format!(
                    "dist²(r, s) = {d2:?} > MAXMAXDIST² {maxmax:?} for r={r:?} s={p:?} M={m_mbr:?} N={n_mbr:?}"
                ));
            }
            if d2 * (1.0 + REL_EPS) < minmin {
                return Some(format!(
                    "dist²(r, s) = {d2:?} < MINMINDIST² {minmin:?} for r={r:?} s={p:?} M={m_mbr:?} N={n_mbr:?}"
                ));
            }
        }
        if nn > nxn * (1.0 + REL_EPS) {
            return Some(format!(
                "true NN dist² {nn:?} exceeds NXNDIST² {nxn:?} for r={r:?} M={m_mbr:?} N={n_mbr:?} S={s:?}"
            ));
        }
    }
    None
}

/// One batched-kernel bit-identity case: a random adversarial candidate
/// set (lattice shapes with duplicates/coincident points, power-of-two
/// scales, `1e8` offsets that force cancellation, degenerate boxes) is
/// laid out column-major, and every kernel in [`ann_geom::kernels`] must
/// reproduce its scalar counterpart **bit-for-bit** on every candidate —
/// the contract the batched query paths rely on for decision-identical
/// traversals.
pub fn check_kernels_case<const D: usize>(rng: &mut Rng) -> Option<String> {
    let shape = *rng.pick(&crate::gen::SHAPES);
    let scale = *rng.pick(&crate::gen::SCALES);
    let offset = *rng.pick(&crate::gen::OFFSETS);
    // Boundary sizes get extra mass; the upper range crosses several
    // LANES blocks plus a remainder.
    let n = match rng.range(0, 8) {
        0 => 0,
        1 => 1,
        _ => rng.range(2, 48),
    };
    let pts = crate::gen::points::<D>(rng, n, shape, scale, offset, 1);

    // Column-major mirror of the candidate points…
    let mut cols = vec![0.0; D * n];
    for (i, (_, p)) in pts.iter().enumerate() {
        for d in 0..D {
            cols[d * n + i] = p[d];
        }
    }
    // …and candidate boxes grown from them: degenerate (point) with
    // probability 1/3, otherwise extended by a lattice extent.
    let lo = cols.clone();
    let mut hi = cols.clone();
    for i in 0..n {
        if !rng.chance(1.0 / 3.0) {
            for d in 0..D {
                hi[d * n + i] += rng.range(0, 4) as f64 * scale;
            }
        }
    }
    let mbrs = SoaMbrs::new(n, &lo, &hi);
    let points = SoaPoints::new(n, &cols);

    // Owner box on the same lattice (point-degenerate with prob 1/3) and
    // a query point at its corner.
    let mut olo = [0.0; D];
    let mut ohi = [0.0; D];
    for d in 0..D {
        let a = lattice_coord(rng, scale, offset);
        let b = if rng.chance(1.0 / 3.0) {
            a
        } else {
            lattice_coord(rng, scale, offset)
        };
        olo[d] = a.min(b);
        ohi[d] = a.max(b);
    }
    let m = Mbr::new(olo, ohi);
    let q = Point::new(olo);

    let mut out = Vec::new();
    kernels::dist_sq_batch(&q, &points, &mut out);
    for i in 0..n {
        let want = q.dist_sq(&points.point::<D>(i));
        if out[i].to_bits() != want.to_bits() {
            return Some(format!(
                "dist_sq_batch[{i}] = {:?} != scalar {want:?} (q={q:?} p={:?})",
                out[i],
                points.point::<D>(i)
            ));
        }
    }
    kernels::min_min_dist_sq_batch(&m, &mbrs, &mut out);
    for i in 0..n {
        let want = min_min_dist_sq(&m, &mbrs.mbr::<D>(i));
        if out[i].to_bits() != want.to_bits() {
            return Some(format!(
                "min_min_dist_sq_batch[{i}] = {:?} != scalar {want:?} (m={m:?} n={:?})",
                out[i],
                mbrs.mbr::<D>(i)
            ));
        }
    }
    kernels::max_max_dist_sq_batch(&m, &mbrs, &mut out);
    for i in 0..n {
        let want = max_max_dist_sq(&m, &mbrs.mbr::<D>(i));
        if out[i].to_bits() != want.to_bits() {
            return Some(format!(
                "max_max_dist_sq_batch[{i}] = {:?} != scalar {want:?} (m={m:?} n={:?})",
                out[i],
                mbrs.mbr::<D>(i)
            ));
        }
    }
    kernels::nxn_dist_sq_batch(&m, &mbrs, &mut out);
    for i in 0..n {
        let want = nxn_dist_sq(&m, &mbrs.mbr::<D>(i));
        if out[i].to_bits() != want.to_bits() {
            return Some(format!(
                "nxn_dist_sq_batch[{i}] = {:?} != scalar {want:?} (m={m:?} n={:?})",
                out[i],
                mbrs.mbr::<D>(i)
            ));
        }
    }
    // `within`: zero, infinite, and a *realized* MINMINDIST as the bound
    // — the exact-tie case (`v == bound`) is the adversarial one.
    let mut bounds = vec![0.0, f64::INFINITY];
    if n > 0 {
        kernels::min_min_dist_sq_batch(&m, &mbrs, &mut out);
        bounds.push(out[rng.range(0, n)]);
    }
    for bound in bounds {
        kernels::min_min_dist_sq_within_batch(&m, &mbrs, bound, &mut out);
        for i in 0..n {
            match min_min_dist_sq_within(&m, &mbrs.mbr::<D>(i), bound) {
                Some(v) => {
                    if out[i] > bound || out[i].to_bits() != v.to_bits() {
                        return Some(format!(
                            "within_batch[{i}] = {:?} != accepted scalar {v:?} at bound {bound:?}",
                            out[i]
                        ));
                    }
                }
                None => {
                    if out[i] <= bound {
                        return Some(format!(
                            "within_batch[{i}] = {:?} accepted, scalar rejects at bound {bound:?}",
                            out[i]
                        ));
                    }
                }
            }
        }
    }
    None
}

fn qt_cfg() -> MbrqtConfig {
    MbrqtConfig {
        bucket_capacity: 8,
        ..Default::default()
    }
}

fn rs_cfg() -> RStarConfig {
    RStarConfig {
        max_leaf_entries: 8,
        max_internal_entries: 4,
        ..Default::default()
    }
}

/// Replays a random insert/delete interleaving against both index kinds,
/// validating the full structural invariant set ([`validate`]) and the
/// object census after every batch. Duplicate and coincident points are
/// deliberately common (lattice coordinates).
pub fn check_tree_case<const D: usize>(rng: &mut Rng) -> Option<String> {
    let scale = *rng.pick(&crate::gen::SCALES);
    let universe = {
        let mut hi = [0.0; D];
        hi.iter_mut().for_each(|v| *v = 9.0 * scale);
        Mbr::new([0.0; D], hi)
    };
    let pool = Arc::new(BufferPool::new(MemDisk::new(), 128));
    let mut qt = match Mbrqt::<D>::create(pool.clone(), universe, &qt_cfg()) {
        Ok(t) => t,
        Err(e) => return Some(format!("mbrqt create failed: {e:?}")),
    };
    let mut rs = match RStar::<D>::create(pool, &rs_cfg()) {
        Ok(t) => t,
        Err(e) => return Some(format!("rstar create failed: {e:?}")),
    };

    let mut live: BTreeMap<u64, Point<D>> = BTreeMap::new();
    let mut next_oid = 0u64;
    let ops = rng.range(10, 120);
    for step in 0..ops {
        let deleting = !live.is_empty() && rng.chance(0.35);
        if deleting {
            let idx = rng.range(0, live.len());
            let (&oid, &point) = live.iter().nth(idx).expect("index in range");
            for (name, deleted) in [
                ("mbrqt", qt.delete(oid, &point)),
                ("rstar", rs.delete(oid, &point)),
            ] {
                match deleted {
                    Ok(true) => {}
                    Ok(false) => {
                        return Some(format!(
                            "{name}: delete of live oid {oid} at step {step} reported absent"
                        ))
                    }
                    Err(e) => return Some(format!("{name}: delete failed at step {step}: {e:?}")),
                }
            }
            live.remove(&oid);
        } else {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                *v = rng.range(0, 9) as f64 * scale;
            }
            let p = Point::new(c);
            let oid = next_oid;
            next_oid += 1;
            for (name, inserted) in [("mbrqt", qt.insert(oid, p)), ("rstar", rs.insert(oid, p))] {
                if let Err(e) = inserted {
                    return Some(format!("{name}: insert failed at step {step}: {e:?}"));
                }
            }
            live.insert(oid, p);
        }

        if step % 7 == 0 || step + 1 == ops {
            for (name, shape) in [("mbrqt", validate(&qt)), ("rstar", validate(&rs))] {
                match shape {
                    Ok(shape) => {
                        if shape.objects != live.len() as u64 {
                            return Some(format!(
                                "{name}: {} objects after step {step}, expected {}",
                                shape.objects,
                                live.len()
                            ));
                        }
                    }
                    Err(e) => {
                        return Some(format!(
                            "{name}: invariant violation after step {step}: {e:?}"
                        ))
                    }
                }
            }
        }
    }

    // Census: the exact (oid, point) multiset must survive.
    for (name, got) in [
        ("mbrqt", collect_objects(&qt)),
        ("rstar", collect_objects(&rs)),
    ] {
        let mut got = match got {
            Ok(g) => g,
            Err(e) => return Some(format!("{name}: collect failed: {e:?}")),
        };
        got.sort_by_key(|(oid, _)| *oid);
        let want: Vec<(u64, Point<D>)> = live.iter().map(|(&o, &p)| (o, p)).collect();
        if got != want {
            return Some(format!(
                "{name}: object census diverged: {} live vs {} expected",
                got.len(),
                want.len()
            ));
        }
    }
    None
}

/// Crashes a create+insert sequence at a random disk operation (torn
/// write), then checks that reopening recovers a valid tree holding the
/// committed prefix — and that recovery is **idempotent**: a second
/// reopen of the same surviving media yields the identical tree.
pub fn check_recovery_case(rng: &mut Rng) -> Option<String> {
    let n = rng.range(5, 60);
    let mut pts: Vec<(u64, Point<2>)> = Vec::with_capacity(n);
    for i in 0..n {
        pts.push((
            i as u64,
            Point::new([rng.range(0, 9) as f64, rng.range(0, 9) as f64]),
        ));
    }
    let universe = Mbr::new([0.0, 0.0], [9.0, 9.0]);

    // Ops a healthy run consumes, to place the crash inside the sequence.
    let total = {
        let fd = Arc::new(FaultyDisk::unlimited(MemDisk::new()));
        let pool = Arc::new(BufferPool::new(Arc::clone(&fd), 8));
        let mut tree = Mbrqt::create(pool, universe, &qt_cfg()).expect("healthy create");
        for &(oid, p) in &pts {
            tree.insert(oid, p).expect("healthy insert");
        }
        fd.op_count()
    };
    let crash_op = 1 + rng.next_u64() % total.max(1);

    let mem = Arc::new(MemDisk::new());
    let fd = Arc::new(FaultyDisk::unlimited(Arc::clone(&mem)));
    fd.inject_at(
        crash_op,
        InjectedFault::TornWrite {
            persist: (splitmix64(crash_op) as usize) % FRAME_SIZE,
        },
    );
    let pool = Arc::new(BufferPool::new(Arc::clone(&fd), 8));
    let mut inserted = 0u64;
    let crashed = match Mbrqt::create(pool, universe, &qt_cfg()) {
        Err(_) => true,
        Ok(mut tree) => {
            let mut hit = false;
            for &(oid, p) in &pts {
                match tree.insert(oid, p) {
                    Ok(()) => inserted += 1,
                    Err(_) => {
                        hit = true;
                        break;
                    }
                }
            }
            hit
        }
    };
    if !crashed {
        // The injected op landed after the workload finished; vacuous.
        return None;
    }

    let reopen = |mem: &Arc<MemDisk>| -> Result<u64, String> {
        let pool = Arc::new(BufferPool::new(Arc::clone(mem), 64));
        match Mbrqt::<2>::open(pool, 0) {
            Ok(tree) => match validate(&tree) {
                Ok(shape) => Ok(shape.objects),
                Err(e) => Err(format!("recovered tree fails validation: {e:?}")),
            },
            Err(e) => Err(format!("open failed: {e:?}")),
        }
    };
    match reopen(&mem) {
        Ok(objects) => {
            // Each insert is one atomic journal commit: recovery must land
            // on the successful prefix, or prefix + 1 when the crash hit
            // after the commit point.
            if objects != inserted && objects != inserted + 1 {
                return Some(format!(
                    "crash at op {crash_op}: recovered {objects} objects, expected {inserted} or {}",
                    inserted + 1
                ));
            }
            // Idempotence: recovering again must not change the tree.
            match reopen(&mem) {
                Ok(second) if second == objects => None,
                Ok(second) => Some(format!(
                    "crash at op {crash_op}: second recovery saw {second} objects, first saw {objects}"
                )),
                Err(e) => Some(format!(
                    "crash at op {crash_op}: second recovery failed after first succeeded: {e}"
                )),
            }
        }
        Err(e) => {
            // Only acceptable when nothing was ever durably committed.
            if inserted == 0 {
                None
            } else {
                Some(format!(
                    "crash at op {crash_op} after {inserted} inserts: {e}"
                ))
            }
        }
    }
}

/// One wire-schema property case. Three sub-properties per case:
///
/// * a fuzz-generated [`QuerySpec`] survives `to_json → from_json` as the
///   identity, and re-serializing is byte-stable;
/// * a [`QueryOutcome`] whose distances are random *bit patterns*
///   (excluding NaN) round-trips every `f64` bit-exactly;
/// * a randomly corrupted spec document never panics the parser — it
///   either parses (the corruption landed in a don't-care spot) or
///   returns a structured [`WireError`].
pub fn check_wire_case(rng: &mut Rng) -> Option<String> {
    use ann_core::mba::{Expansion, Traversal};
    use ann_core::stats::NeighborPair;
    use ann_core::wire::{QueryOutcome, QuerySpec, WireError};

    // -- spec round-trip --------------------------------------------------
    let algorithm = match rng.range(0, 5) {
        0 => Algorithm::mba(),
        1 => Algorithm::Mba {
            traversal: *rng.pick(&[Traversal::DepthFirst, Traversal::BreadthFirst]),
            expansion: *rng.pick(&[Expansion::Bidirectional, Expansion::Unidirectional]),
            threads: rng.range(0, 9),
        },
        2 => Algorithm::Bnn {
            group_size: rng.range(1, 5000),
        },
        3 => Algorithm::Mnn,
        _ => Algorithm::Hnn {
            avg_cell_occupancy: rng.f64() * 16.0 + 1e-3,
        },
    };
    let mut spec = QuerySpec::new(algorithm);
    spec.k = rng.range(0, 1 << 20);
    spec.exclude_self = rng.chance(0.5);
    spec.metric = *rng.pick(&[MetricChoice::Nxn, MetricChoice::MaxMax]);
    if rng.chance(0.4) {
        spec.deadline_ms = Some(rng.next_u64() % 1_000_000);
    }
    if rng.chance(0.4) {
        spec.io_budget = Some(rng.next_u64() % 1_000_000);
    }
    if rng.chance(0.4) {
        spec.visit_budget = Some(rng.next_u64() % 1_000_000);
    }
    if rng.chance(0.3) {
        spec.retry = Some(RetryPolicy {
            max_attempts: rng.range(1, 8) as u32,
            backoff: std::time::Duration::from_millis(rng.next_u64() % 500),
        });
    }
    let json = spec.to_json();
    match QuerySpec::from_json(&json) {
        Ok(back) if back != spec => {
            return Some(format!("spec round-trip changed the spec: {json}"));
        }
        Ok(back) if back.to_json() != json => {
            return Some(format!("spec re-serialization not byte-stable: {json}"));
        }
        Ok(_) => {}
        Err(e) => return Some(format!("spec failed to re-parse ({e}): {json}")),
    }

    // -- outcome f64 bit-exactness ----------------------------------------
    let results: Vec<NeighborPair> = (0..rng.range(0, 24))
        .map(|i| {
            let dist = loop {
                let candidate = f64::from_bits(rng.next_u64());
                if !candidate.is_nan() {
                    break candidate;
                }
            };
            NeighborPair {
                r_oid: i as u64,
                s_oid: rng.next_u64(),
                dist,
            }
        })
        .collect();
    let outcome = QueryOutcome {
        results: results.clone(),
        stats: AnnStats::default(),
        report: None,
        version: match rng.next_u64() % 3 {
            0 => None,
            _ => Some((rng.next_u64() % 1000 + 1) as u32),
        },
    };
    let outcome_json = outcome.to_json();
    let back = match QueryOutcome::from_json(&outcome_json) {
        Ok(b) => b,
        Err(e) => return Some(format!("outcome failed to re-parse ({e}): {outcome_json}")),
    };
    if back.results.len() != results.len() {
        return Some(format!(
            "outcome round-trip changed pair count: {} != {}",
            back.results.len(),
            results.len()
        ));
    }
    for (orig, parsed) in results.iter().zip(&back.results) {
        if orig.dist.to_bits() != parsed.dist.to_bits()
            || orig.r_oid != parsed.r_oid
            || orig.s_oid != parsed.s_oid
        {
            return Some(format!(
                "outcome pair drifted over the wire: {orig:?} != {parsed:?}"
            ));
        }
    }

    // -- corpus: trailing bytes are a hard parse error ---------------------
    // Anything non-whitespace after the top-level value must be rejected
    // outright (a lenient parser here would let a concatenated or
    // truncated-then-continued document smuggle in a second payload).
    let suffix = *rng.pick(&["1", "{}", "null", "x", ",", "\"\"", "[]"]);
    let trailing = format!("{json}{}{suffix}", if rng.chance(0.5) { " " } else { "" });
    if QuerySpec::from_json(&trailing).is_ok() {
        return Some(format!("parser accepted trailing bytes: {trailing}"));
    }
    if ann_core::wire::JsonValue::parse(&trailing).is_ok() {
        return Some(format!("JsonValue accepted trailing bytes: {trailing}"));
    }

    // -- corpus: duplicate object keys are a hard parse error --------------
    // Duplicating the leading "v" key of the valid document must fail
    // (last-wins parsing would let an attacker shadow checked fields).
    let dup = format!("{{\"v\":1,{}", &json[1..]);
    if QuerySpec::from_json(&dup).is_ok() {
        return Some(format!("parser accepted duplicate keys: {dup}"));
    }
    let dup_nested = "{\"a\":{\"x\":1,\"x\":2}}";
    if ann_core::wire::JsonValue::parse(dup_nested).is_ok() {
        return Some(format!("JsonValue accepted nested duplicate keys: {dup_nested}"));
    }

    // -- parser robustness under corruption --------------------------------
    // Splice random printable bytes into the valid document; the parser
    // must return a structured error or a valid spec, never panic (a
    // panic escapes to the fuzz driver's catch_unwind and is reported).
    let mut corrupted: Vec<u8> = json.clone().into_bytes();
    for _ in 0..rng.range(1, 6) {
        let pos = rng.range(0, corrupted.len());
        corrupted[pos] = b' ' + (rng.next_u64() % 95) as u8;
    }
    let corrupted = String::from_utf8(corrupted).expect("ascii splice keeps utf-8");
    if let Err(e @ WireError::UnsupportedVersion(v)) = QuerySpec::from_json(&corrupted) {
        // Corrupting the body must not smuggle in a *newer* version than
        // the splice could have written (v is a single corrupted digit).
        if v > 9 {
            return Some(format!("corruption produced absurd version: {e}: {corrupted}"));
        }
    }
    None
}
