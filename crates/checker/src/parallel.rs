//! Parallel-equivalence checking: the morsel engine (DESIGN.md §16) must
//! be *invisible* in every answer. For fuzz-generated adversarial
//! workloads, every [`Algorithm`] variant run with
//! [`AnnRequest::threads`] ∈ {2, 3, 8} must reproduce the serial run
//! byte-for-byte — same neighbor ids, bit-identical distances, same
//! canonical order. A parallel query hit mid-flight by a cancel,
//! deadline, exhausted budget, or injected storage fault must land in a
//! typed [`QueryError`] (or, for retried transients, a byte-identical
//! success) with **zero** leaked pool pins, and a cold fault-free re-run
//! at the same thread count must be byte-identical to the baseline.

use crate::diff;
use crate::gen::{self, DiffCase};
use crate::rng::Rng;
use ann_core::prelude::*;
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_rstar::{RStar, RStarConfig};
use ann_store::{BufferPool, FaultyDisk, InjectedFault, MemDisk, StoreError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Thread counts every variant is diffed at (serial is the reference).
pub const THREADS: [usize; 3] = [2, 3, 8];

/// Small-node configs (same as the diff class) so tiny datasets still
/// span several pages and several morsels.
fn qt_cfg() -> MbrqtConfig {
    MbrqtConfig {
        bucket_capacity: 8,
        ..Default::default()
    }
}

fn rs_cfg() -> RStarConfig {
    RStarConfig {
        max_leaf_entries: 8,
        max_internal_entries: 4,
        ..Default::default()
    }
}

/// Result bytes in canonical order: `(r_oid, s_oid, dist bits)`.
fn canon(out: &AnnOutput) -> Vec<(u64, u64, u64)> {
    let mut o = out.clone();
    o.sort();
    o.results
        .iter()
        .map(|p| (p.r_oid, p.s_oid, p.dist.to_bits()))
        .collect()
}

fn panic_text(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

type RunResult = std::thread::Result<QueryResult<AnnOutput>>;

/// Runs `alg` over the built indexes with `threads` engine workers and
/// an optional abort-inducing constraint.
#[allow(clippy::too_many_arguments)]
fn run_one(
    case: &DiffCase<2>,
    ir: &Mbrqt<2>,
    is: &RStar<2>,
    alg: Algorithm,
    metric: MetricChoice,
    threads: usize,
    constraint: Option<&Constraint>,
    no_retry: bool,
) -> RunResult {
    catch_unwind(AssertUnwindSafe(|| {
        let mut req = AnnRequest::new(alg)
            .k(case.k)
            .exclude_self(case.exclude_self)
            .metric(metric)
            .threads(threads);
        if no_retry {
            req = req.retry(RetryPolicy {
                max_attempts: 1,
                backoff: std::time::Duration::ZERO,
            });
        }
        match constraint {
            None => {}
            Some(Constraint::Cancel(token)) => req = req.cancel_token(token.clone()),
            Some(Constraint::Deadline) => req = req.deadline(Instant::now()),
            Some(Constraint::VisitBudget(n)) => req = req.visit_budget(*n),
        }
        req.run(Input::Index(ir), Input::Index(is))
    }))
}

/// The abort scenarios the faultless leg draws from.
enum Constraint {
    /// A token fired before the engine starts: prompt abort everywhere.
    Cancel(CancelToken),
    /// A deadline already in the past when the query is admitted.
    Deadline,
    /// A visit budget the serial run provably exhausts.
    VisitBudget(u64),
}

impl Constraint {
    fn expected(&self) -> &'static str {
        match self {
            Constraint::Cancel(_) => "cancelled",
            Constraint::Deadline => "deadline",
            Constraint::VisitBudget(_) => "visit-budget",
        }
    }
}

/// One parallel-equivalence case; `None` means every assertion held.
pub fn check_parallel_case(rng: &mut Rng) -> Option<String> {
    let case = gen::diff_case::<2>(rng);
    let metric = *rng.pick(&[MetricChoice::Nxn, MetricChoice::MaxMax]);

    let pool = Arc::new(BufferPool::new(MemDisk::new(), 128));
    let ir = match Mbrqt::bulk_build(pool.clone(), &case.r, &qt_cfg()) {
        Ok(t) => t,
        Err(e) => return Some(format!("parallel: R build failed: {e}")),
    };
    let is = match RStar::bulk_build(pool.clone(), &case.s, &rs_cfg()) {
        Ok(t) => t,
        Err(e) => return Some(format!("parallel: S build failed: {e}")),
    };

    // Leg 1: every variant × every thread count is byte-identical to the
    // serial run of the same variant.
    let variants = diff::variants(&case);
    for alg in &variants {
        let label = format!("{} {:?}", alg.name(), metric);
        let serial = match run_one(&case, &ir, &is, *alg, metric, 1, None, false) {
            Err(e) => {
                return Some(format!("{label}: serial run panicked: {}", panic_text(&*e)))
            }
            Ok(Err(e)) => return Some(format!("{label}: serial run failed: {e}")),
            Ok(Ok(out)) => out,
        };
        let base = canon(&serial);
        for t in THREADS {
            match run_one(&case, &ir, &is, *alg, metric, t, None, false) {
                Err(e) => {
                    return Some(format!(
                        "{label} threads={t}: panicked: {}",
                        panic_text(&*e)
                    ))
                }
                Ok(Err(e)) => return Some(format!("{label} threads={t}: failed: {e}")),
                Ok(Ok(out)) => {
                    if canon(&out) != base {
                        return Some(format!(
                            "{label} threads={t}: parallel output diverged from serial \
                             ({} vs {} pairs)",
                            out.results.len(),
                            serial.results.len()
                        ));
                    }
                }
            }
            if pool.pinned_frames() != 0 {
                return Some(format!("{label} threads={t}: run leaked pins"));
            }
        }
    }

    // Leg 2: a mid-flight abort at a random thread count surfaces as the
    // right typed error on every worker's watch, leaks nothing, and a
    // clean re-run is byte-identical.
    let alg = *rng.pick(&variants);
    let t = *rng.pick(&THREADS);
    let label = format!("{} {:?} threads={t}", alg.name(), metric);
    let baseline = match run_one(&case, &ir, &is, alg, metric, t, None, false) {
        Err(e) => return Some(format!("{label}: baseline panicked: {}", panic_text(&*e))),
        Ok(Err(e)) => return Some(format!("{label}: baseline failed: {e}")),
        Ok(Ok(out)) => out,
    };
    let base = canon(&baseline);

    let constraint = match rng.range(0, 3) {
        0 => {
            let token = CancelToken::new();
            token.cancel();
            Constraint::Cancel(token)
        }
        1 => Constraint::Deadline,
        _ => Constraint::VisitBudget(1),
    };
    // A visit budget of one only fires when the traversal ticks at least
    // twice; probe that on the serial path first and skip quietly when
    // the case is too tiny to abort.
    if let Constraint::VisitBudget(n) = &constraint {
        match run_one(&case, &ir, &is, alg, metric, 1, Some(&Constraint::VisitBudget(*n)), false) {
            Err(e) => {
                return Some(format!(
                    "{label}: serial budget probe panicked: {}",
                    panic_text(&*e)
                ))
            }
            Ok(Ok(_)) => return check_faulted(rng, &case, metric), // too small to exhaust
            Ok(Err(QueryError::BudgetExhausted { .. })) => {}
            Ok(Err(e)) => return Some(format!("{label}: wrong serial budget error: {e}")),
        }
    }
    match run_one(&case, &ir, &is, alg, metric, t, Some(&constraint), false) {
        Err(e) => {
            return Some(format!(
                "{label}: constrained run panicked: {}",
                panic_text(&*e)
            ))
        }
        Ok(Ok(_)) => {
            return Some(format!(
                "{label}: {} constraint never fired",
                constraint.expected()
            ))
        }
        Ok(Err(e)) => {
            if e.reason() != constraint.expected() {
                return Some(format!(
                    "{label}: expected {} abort, got {e}",
                    constraint.expected()
                ));
            }
        }
    }
    if pool.pinned_frames() != 0 {
        return Some(format!(
            "{label}: {} abort leaked pins",
            constraint.expected()
        ));
    }
    match run_one(&case, &ir, &is, alg, metric, t, None, false) {
        Err(e) => return Some(format!("{label}: re-run panicked: {}", panic_text(&*e))),
        Ok(Err(e)) => return Some(format!("{label}: re-run after abort failed: {e}")),
        Ok(Ok(out)) => {
            if canon(&out) != base {
                return Some(format!("{label}: re-run after abort diverged"));
            }
        }
    }

    check_faulted(rng, &case, metric)
}

/// Leg 3: a transient injected fault with retries disabled under a
/// parallel run must surface as the typed I/O error (or miss the window
/// entirely), leak no pins, and leave the (intact) store serving
/// byte-identical answers once the fault clears. (A `Crash` fault would
/// leave the device permanently dead — the `faults` class covers that
/// flavor; this leg wants the cold fault-free re-run.)
fn check_faulted(rng: &mut Rng, case: &DiffCase<2>, metric: MetricChoice) -> Option<String> {
    // Pool-backed variants only: HNN never touches the disk.
    let alg = *rng.pick(&[
        Algorithm::mba(),
        Algorithm::Bnn {
            group_size: case.group_size,
        },
        Algorithm::Mnn,
    ]);
    let t = *rng.pick(&THREADS);
    let label = format!("{} {:?} threads={t} faulted", alg.name(), metric);

    let fd = Arc::new(FaultyDisk::unlimited(MemDisk::new()));
    let pool = Arc::new(BufferPool::new(Arc::clone(&fd), 8));
    let ir = match Mbrqt::bulk_build(pool.clone(), &case.r, &qt_cfg()) {
        Ok(t) => t,
        Err(e) => return Some(format!("{label}: R build failed: {e}")),
    };
    let is = match RStar::bulk_build(pool.clone(), &case.s, &rs_cfg()) {
        Ok(t) => t,
        Err(e) => return Some(format!("{label}: S build failed: {e}")),
    };

    let chill = |pool: &BufferPool, ir: &Mbrqt<2>, is: &RStar<2>| -> ann_store::Result<()> {
        if let Some(c) = ir.node_cache() {
            c.clear();
        }
        if let Some(c) = is.node_cache() {
            c.clear();
        }
        pool.clear()
    };

    if let Err(e) = chill(&pool, &ir, &is) {
        return Some(format!("{label}: pool clear failed: {e}"));
    }
    let o0 = fd.op_count();
    let baseline = match run_one(case, &ir, &is, alg, metric, t, None, false) {
        Err(e) => return Some(format!("{label}: baseline panicked: {}", panic_text(&*e))),
        Ok(Err(e)) => return Some(format!("{label}: baseline failed: {e}")),
        Ok(Ok(out)) => out,
    };
    let span = (fd.op_count() - o0) as usize;
    if span == 0 {
        return None; // never reaches the disk: nothing to fault
    }
    let base = canon(&baseline);

    // A transient fault somewhere inside the parallel run's I/O window,
    // with retries disabled so it must surface. Workers race, so the
    // fault may land on any worker's read — or the run may legitimately
    // finish first when caches shift the sequence.
    let delta = rng.range(0, span) as u64;
    if let Err(e) = chill(&pool, &ir, &is) {
        return Some(format!("{label}: pool clear failed: {e}"));
    }
    fd.inject_at(fd.op_count() + delta, InjectedFault::Transient);
    let faulted = run_one(case, &ir, &is, alg, metric, t, None, true);
    fd.clear_faults();
    if pool.pinned_frames() != 0 {
        return Some(format!("{label}: faulted run leaked pins"));
    }
    match faulted {
        Err(e) => return Some(format!("{label}: faulted run panicked: {}", panic_text(&*e))),
        Ok(Ok(out)) => {
            // The fault missed (cache-served run): the answer must still
            // be byte-identical — never silently wrong.
            if canon(&out) != base {
                return Some(format!("{label}: fault-missed run diverged"));
            }
        }
        Ok(Err(QueryError::Io(StoreError::Injected { transient: true }))) => {}
        Ok(Err(e)) => return Some(format!("{label}: wrong error for unretried transient: {e}")),
    }

    // The media is intact: a cold re-run at the same thread count must
    // reproduce the baseline byte-for-byte.
    if let Err(e) = chill(&pool, &ir, &is) {
        return Some(format!("{label}: clear after fault failed: {e}"));
    }
    match run_one(case, &ir, &is, alg, metric, t, None, false) {
        Err(e) => return Some(format!("{label}: re-run panicked: {}", panic_text(&*e))),
        Ok(Err(e)) => return Some(format!("{label}: re-run failed: {e}")),
        Ok(Ok(out)) => {
            if canon(&out) != base {
                return Some(format!("{label}: cold re-run diverged after fault"));
            }
        }
    }
    if pool.pinned_frames() != 0 {
        return Some(format!("{label}: case ends with leaked pins"));
    }
    None
}
