//! Adversarial workload generation.
//!
//! Every generator is biased toward the inputs that historically break
//! nearest-neighbor code: exact distance ties (integer grids, duplicated
//! and coincident points), degenerate geometry (collinear sets, point
//! MBRs), distribution skew, large coordinate offsets (floating-point
//! cancellation), and boundary cardinalities (`|S| ∈ {0, 1}`,
//! `k ∈ {0, 1, |S|−1, |S|, >|S|}`).

use crate::rng::Rng;
use ann_geom::Point;

/// Point-set shapes the generators produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// Uniform over the box.
    Uniform,
    /// Small-integer lattice coordinates — exact distance ties abound.
    Grid,
    /// Grid points, each repeated under several distinct oids.
    Duplicates,
    /// Every point identical.
    Coincident,
    /// All points on one line.
    Collinear,
    /// A few tight clusters.
    Clustered,
    /// Power-law marginal: dense near the origin.
    Skewed,
}

pub const SHAPES: [Shape; 7] = [
    Shape::Uniform,
    Shape::Grid,
    Shape::Duplicates,
    Shape::Coincident,
    Shape::Collinear,
    Shape::Clustered,
    Shape::Skewed,
];

/// Coordinate transforms: power-of-two scales keep lattice coordinates
/// exactly representable (preserving exact ties), the large offset forces
/// catastrophic cancellation in subtraction-based metric formulas.
pub const SCALES: [f64; 3] = [1.0, 1024.0, 0.0078125];
pub const OFFSETS: [f64; 2] = [0.0, 1.0e8];

/// Generates `n` points of the given shape inside `[offset, offset +
/// 8·scale]^D`, with oids `0, stride, 2·stride, …` (a non-unit stride
/// decouples oid order from generation order, stressing tie-breaks).
pub fn points<const D: usize>(
    rng: &mut Rng,
    n: usize,
    shape: Shape,
    scale: f64,
    offset: f64,
    oid_stride: u64,
) -> Vec<(u64, Point<D>)> {
    let coord = |rng: &mut Rng, shape: Shape| -> f64 {
        let v = match shape {
            Shape::Uniform => rng.f64() * 8.0,
            // 0..=8 integer lattice: many exactly-equal distances.
            Shape::Grid | Shape::Duplicates => rng.range(0, 9) as f64,
            Shape::Skewed => {
                let u = rng.f64();
                u * u * u * 8.0
            }
            _ => unreachable!("handled by the outer match"),
        };
        v * scale + offset
    };
    let mut out: Vec<(u64, Point<D>)> = Vec::with_capacity(n);
    match shape {
        Shape::Uniform | Shape::Grid | Shape::Skewed => {
            for _ in 0..n {
                let mut c = [0.0; D];
                for v in c.iter_mut() {
                    *v = coord(rng, shape);
                }
                out.push((0, Point::new(c)));
            }
        }
        Shape::Duplicates => {
            while out.len() < n {
                let mut c = [0.0; D];
                for v in c.iter_mut() {
                    *v = coord(rng, shape);
                }
                // 1-4 copies of the same coordinates, distinct oids.
                let copies = rng.range(1, 5).min(n - out.len());
                for _ in 0..copies {
                    out.push((0, Point::new(c)));
                }
            }
        }
        Shape::Coincident => {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                *v = rng.range(0, 9) as f64 * scale + offset;
            }
            out.extend((0..n).map(|_| (0, Point::new(c))));
        }
        Shape::Collinear => {
            let mut dir = [0.0; D];
            for v in dir.iter_mut() {
                *v = rng.range(0, 4) as f64;
            }
            if dir.iter().all(|v| *v == 0.0) {
                dir[0] = 1.0;
            }
            for _ in 0..n {
                let t = rng.range(0, 9) as f64;
                let mut c = [0.0; D];
                for (v, dv) in c.iter_mut().zip(dir) {
                    *v = t * dv * scale + offset;
                }
                out.push((0, Point::new(c)));
            }
        }
        Shape::Clustered => {
            let clusters = rng.range(1, 4);
            let mut centers = Vec::with_capacity(clusters);
            for _ in 0..clusters {
                let mut c = [0.0; D];
                for v in c.iter_mut() {
                    *v = rng.range(0, 9) as f64 * scale + offset;
                }
                centers.push(c);
            }
            for _ in 0..n {
                let center = *rng.pick(&centers);
                let mut c = [0.0; D];
                for (v, cv) in c.iter_mut().zip(center) {
                    // Offsets on a fine power-of-two sub-lattice: tight
                    // clusters that still produce exact ties.
                    *v = cv + rng.range(0, 3) as f64 * 0.25 * scale;
                }
                out.push((0, Point::new(c)));
            }
        }
    }
    for (i, (oid, _)) in out.iter_mut().enumerate() {
        *oid = i as u64 * oid_stride;
    }
    out
}

/// One differential test case: a full join configuration.
#[derive(Clone, Debug)]
pub struct DiffCase<const D: usize> {
    pub r: Vec<(u64, Point<D>)>,
    pub s: Vec<(u64, Point<D>)>,
    pub k: usize,
    /// Self-join semantics (implies `r == s`).
    pub exclude_self: bool,
    /// BNN group size for this case.
    pub group_size: usize,
    /// HNN occupancy knob for this case.
    pub avg_cell_occupancy: f64,
}

/// Draws a random differential case; deterministic in `rng`.
pub fn diff_case<const D: usize>(rng: &mut Rng) -> DiffCase<D> {
    let shape = *rng.pick(&SHAPES);
    let scale = *rng.pick(&SCALES);
    let offset = *rng.pick(&OFFSETS);
    let oid_stride = *rng.pick(&[1u64, 3]);
    let self_join = rng.chance(0.4);
    // Small cardinalities keep brute force cheap while still spanning
    // multiple index nodes (node capacities are shrunk by the driver);
    // boundary sizes 0 and 1 get extra mass.
    let draw_n = |rng: &mut Rng| match rng.range(0, 10) {
        0 => 0,
        1 => 1,
        2 => 2,
        _ => rng.range(3, 41),
    };
    let ns_draw = draw_n(rng);
    let s = points::<D>(rng, ns_draw, shape, scale, offset, oid_stride);
    let r = if self_join {
        s.clone()
    } else {
        let nr_draw = draw_n(rng);
        points::<D>(rng, nr_draw, shape, scale, offset, oid_stride)
    };
    let ns = s.len();
    let k_choices = [0, 1, 2, ns.saturating_sub(1), ns, ns + 3];
    let k = *rng.pick(&k_choices);
    DiffCase {
        r,
        s,
        k,
        exclude_self: self_join && rng.chance(0.7),
        group_size: *rng.pick(&[1usize, 4, 64]),
        avg_cell_occupancy: *rng.pick(&[1.0, 8.0]),
    }
}
