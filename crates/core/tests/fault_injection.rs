//! Failure-injection tests: every public operation must surface storage
//! errors as `Err` (never panic) when the disk dies mid-flight, and
//! must never return silently-partial results.

use ann_core::index::validate;
use ann_core::mba::{mba, MbaConfig};
use ann_geom::{NxnDist, Point};
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_rstar::{RStar, RStarConfig};
use ann_store::{BufferPool, FaultyDisk, MemDisk};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn random_points(n: usize, seed: u64) -> Vec<(u64, Point<2>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (
                i as u64,
                Point::new([rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]),
            )
        })
        .collect()
}

/// Small-node configs so even a 600-point dataset spans many pages.
fn qt_cfg() -> MbrqtConfig {
    MbrqtConfig {
        bucket_capacity: 16,
        ..Default::default()
    }
}

fn rs_cfg() -> RStarConfig {
    RStarConfig {
        max_leaf_entries: 16,
        max_internal_entries: 8,
        ..Default::default()
    }
}

/// Number of disk operations a healthy end-to-end run needs.
fn healthy_op_count(pts: &[(u64, Point<2>)]) -> u64 {
    let pool = Arc::new(BufferPool::new(MemDisk::new(), 16));
    let ir = Mbrqt::bulk_build(pool.clone(), pts, &qt_cfg()).unwrap();
    let is = RStar::bulk_build(pool.clone(), pts, &rs_cfg()).unwrap();
    mba::<2, NxnDist, _, _>(&ir, &is, &MbaConfig::default()).unwrap();
    let s = pool.stats();
    s.physical_reads + s.physical_writes + pool.num_pages() as u64
}

#[test]
fn every_budget_point_errors_cleanly() {
    // Drive the full build+query pipeline with every possible failure
    // point in a coarse sweep; each run must either fully succeed or
    // return Err — and must never panic.
    let pts = random_points(600, 1);
    let total = healthy_op_count(&pts);
    assert!(total > 20, "pipeline should touch the disk");

    let mut failures = 0;
    let mut successes = 0;
    let step = (total / 25).max(1);
    let mut budget = 0;
    while budget <= total + step {
        let pool = Arc::new(BufferPool::new(
            FaultyDisk::new(MemDisk::new(), budget),
            16, // small pool: evictions force mid-run disk traffic
        ));
        let result = (|| -> ann_store::Result<usize> {
            let ir = Mbrqt::bulk_build(pool.clone(), &pts, &qt_cfg())?;
            let is = RStar::bulk_build(pool.clone(), &pts, &rs_cfg())?;
            let out = mba::<2, NxnDist, _, _>(&ir, &is, &MbaConfig::default())?;
            Ok(out.results.len())
        })();
        match result {
            Ok(n) => {
                successes += 1;
                assert_eq!(n, 600, "a successful run must be complete");
            }
            Err(_) => failures += 1,
        }
        budget += step;
    }
    assert!(failures > 0, "small budgets must fail");
    assert!(successes > 0, "large budgets must succeed");
}

#[test]
fn incremental_insert_failures_do_not_corrupt_earlier_state() {
    let pts = random_points(400, 2);
    let universe = ann_geom::Mbr::new([0.0, 0.0], [100.0, 100.0]);
    // Calibrate: how many physical ops does the full healthy insert
    // sequence need under the same tiny pool?
    let healthy_ops = {
        let pool = Arc::new(BufferPool::new(MemDisk::new(), 8));
        let mut tree = Mbrqt::create(pool.clone(), universe, &qt_cfg()).unwrap();
        for &(oid, p) in &pts {
            tree.insert(oid, p).unwrap();
        }
        let s = pool.stats();
        s.physical_reads + s.physical_writes + pool.num_pages() as u64
    };
    // Half the budget: the fault must hit mid-sequence.
    let pool = Arc::new(BufferPool::new(
        FaultyDisk::new(MemDisk::new(), healthy_ops / 2),
        8,
    ));
    let mut tree = Mbrqt::create(pool.clone(), universe, &qt_cfg()).unwrap();
    let mut inserted = 0u64;
    for &(oid, p) in &pts {
        match tree.insert(oid, p) {
            Ok(()) => inserted += 1,
            Err(_) => break,
        }
    }
    assert!(inserted > 0, "some inserts must succeed before the fault");
    assert!(
        inserted < 400,
        "the budget must be exhausted before completion"
    );
    // NOTE: the failed insert may have left a torn multi-page update on
    // the *failing* disk; what must hold is that the in-memory tree
    // rejects further use gracefully (no panics) — checked implicitly by
    // reaching this point — and that a tree rebuilt on a healthy disk
    // from the successfully inserted prefix validates.
    let healthy = Arc::new(BufferPool::new(MemDisk::new(), 64));
    let rebuilt = Mbrqt::bulk_build(
        healthy,
        &pts[..inserted as usize],
        &MbrqtConfig::default(),
    )
    .unwrap();
    assert_eq!(validate(&rebuilt).unwrap().objects, inserted);
}
