//! Failure-injection tests: every public operation must surface storage
//! errors as `Err` (never panic) when the disk dies mid-flight, and
//! must never return silently-partial results.


// The per-algorithm entrypoints these tests drive are deprecated thin
// delegates now; exercising them here is the point (they must stay
// identical to the canonical `query::run` path).
#![allow(deprecated)]
use ann_core::index::validate;
use ann_core::mba::{mba, MbaConfig};
use ann_geom::{NxnDist, Point};
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_rstar::{RStar, RStarConfig};
use ann_store::{BufferPool, FaultyDisk, MemDisk};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn random_points(n: usize, seed: u64) -> Vec<(u64, Point<2>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (
                i as u64,
                Point::new([rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]),
            )
        })
        .collect()
}

/// Small-node configs so even a 600-point dataset spans many pages.
fn qt_cfg() -> MbrqtConfig {
    MbrqtConfig {
        bucket_capacity: 16,
        ..Default::default()
    }
}

fn rs_cfg() -> RStarConfig {
    RStarConfig {
        max_leaf_entries: 16,
        max_internal_entries: 8,
        ..Default::default()
    }
}

/// Number of disk operations a healthy end-to-end run needs.
fn healthy_op_count(pts: &[(u64, Point<2>)]) -> u64 {
    let pool = Arc::new(BufferPool::new(MemDisk::new(), 16));
    let ir = Mbrqt::bulk_build(pool.clone(), pts, &qt_cfg()).unwrap();
    let is = RStar::bulk_build(pool.clone(), pts, &rs_cfg()).unwrap();
    mba::<2, NxnDist, _, _>(&ir, &is, &MbaConfig::default()).unwrap();
    let s = pool.stats();
    s.physical_reads + s.physical_writes + pool.num_pages() as u64
}

#[test]
fn every_budget_point_errors_cleanly() {
    // Drive the full build+query pipeline with every possible failure
    // point in a coarse sweep; each run must either fully succeed or
    // return Err — and must never panic.
    let pts = random_points(600, 1);
    let total = healthy_op_count(&pts);
    assert!(total > 20, "pipeline should touch the disk");

    let mut failures = 0;
    let mut successes = 0;
    let step = (total / 25).max(1);
    let mut budget = 0;
    while budget <= total + step {
        let pool = Arc::new(BufferPool::new(
            FaultyDisk::new(MemDisk::new(), budget),
            16, // small pool: evictions force mid-run disk traffic
        ));
        let result = (|| -> ann_core::QueryResult<usize> {
            let ir = Mbrqt::bulk_build(pool.clone(), &pts, &qt_cfg())?;
            let is = RStar::bulk_build(pool.clone(), &pts, &rs_cfg())?;
            let out = mba::<2, NxnDist, _, _>(&ir, &is, &MbaConfig::default())?;
            Ok(out.results.len())
        })();
        match result {
            Ok(n) => {
                successes += 1;
                assert_eq!(n, 600, "a successful run must be complete");
            }
            Err(_) => failures += 1,
        }
        budget += step;
    }
    assert!(failures > 0, "small budgets must fail");
    assert!(successes > 0, "large budgets must succeed");
}

#[test]
fn incremental_insert_failures_do_not_corrupt_earlier_state() {
    let pts = random_points(400, 2);
    let universe = ann_geom::Mbr::new([0.0, 0.0], [100.0, 100.0]);
    // Calibrate: how many physical ops does the full healthy insert
    // sequence need under the same tiny pool?
    let healthy_ops = {
        let pool = Arc::new(BufferPool::new(MemDisk::new(), 8));
        let mut tree = Mbrqt::create(pool.clone(), universe, &qt_cfg()).unwrap();
        for &(oid, p) in &pts {
            tree.insert(oid, p).unwrap();
        }
        let s = pool.stats();
        s.physical_reads + s.physical_writes + pool.num_pages() as u64
    };
    // Half the budget: the fault must hit mid-sequence.
    let pool = Arc::new(BufferPool::new(
        FaultyDisk::new(MemDisk::new(), healthy_ops / 2),
        8,
    ));
    let mut tree = Mbrqt::create(pool.clone(), universe, &qt_cfg()).unwrap();
    let mut inserted = 0u64;
    for &(oid, p) in &pts {
        match tree.insert(oid, p) {
            Ok(()) => inserted += 1,
            Err(_) => break,
        }
    }
    assert!(inserted > 0, "some inserts must succeed before the fault");
    assert!(
        inserted < 400,
        "the budget must be exhausted before completion"
    );
    // NOTE: the failed insert may have left a torn multi-page update on
    // the *failing* disk; what must hold is that the in-memory tree
    // rejects further use gracefully (no panics) — checked implicitly by
    // reaching this point — and that a tree rebuilt on a healthy disk
    // from the successfully inserted prefix validates.
    let healthy = Arc::new(BufferPool::new(MemDisk::new(), 64));
    let rebuilt =
        Mbrqt::bulk_build(healthy, &pts[..inserted as usize], &MbrqtConfig::default()).unwrap();
    assert_eq!(validate(&rebuilt).unwrap().objects, inserted);
}

// ---------------------------------------------------------------------------
// Scheduled-fault sweeps: torn writes, bit rot, transient errors.
//
// These drive the journaled update paths through `FaultyDisk`'s
// deterministic per-operation schedule. The shared `MemDisk` survives the
// "crash", so a fresh pool over it models a process restart; reopening
// must then either recover a consistent tree or report `Corrupt` — never
// panic, never serve a silently partial index.
// ---------------------------------------------------------------------------

use ann_store::{splitmix64, InjectedFault, RetryPolicy, StoreError, FRAME_SIZE};

/// Disk operations a healthy MBRQT bulk build needs (op indexing matches
/// `FaultyDisk`: every read, write and allocation counts).
fn build_op_count(pts: &[(u64, Point<2>)]) -> u64 {
    let fd = Arc::new(FaultyDisk::unlimited(MemDisk::new()));
    let pool = Arc::new(BufferPool::new(Arc::clone(&fd), 16));
    Mbrqt::bulk_build(pool, pts, &qt_cfg()).unwrap();
    fd.op_count()
}

#[test]
fn torn_write_crash_during_build_never_exposes_partial_tree() {
    let pts = random_points(500, 3);
    let total = build_op_count(&pts);
    assert!(total > 40, "build should touch the disk");

    let step = (total / 24).max(1);
    let (mut recovered_full, mut unopenable) = (0u32, 0u32);
    let mut op = 0;
    while op < total {
        let mem = Arc::new(MemDisk::new());
        let fd = Arc::new(FaultyDisk::unlimited(Arc::clone(&mem)));
        fd.inject_at(
            op,
            InjectedFault::TornWrite {
                persist: (splitmix64(op) as usize) % FRAME_SIZE,
            },
        );
        let pool = Arc::new(BufferPool::new(Arc::clone(&fd), 16));
        assert!(
            Mbrqt::bulk_build(pool, &pts, &qt_cfg()).is_err(),
            "a scheduled crash inside the build must surface as Err"
        );

        // "Restart": a fresh pool over the surviving media.
        let pool = Arc::new(BufferPool::new(Arc::clone(&mem), 64));
        match Mbrqt::<2>::open(pool, 0) {
            Ok(tree) => {
                // An openable tree must be the *complete* one: the meta
                // page only ever commits after every node page is durable.
                assert_eq!(validate(&tree).unwrap().objects, 500);
                recovered_full += 1;
            }
            Err(_) => unopenable += 1,
        }
        op += step;
    }
    assert!(
        unopenable > 0,
        "crashes before the meta commit must leave an unopenable tree"
    );
    // The very last scheduled ops hit during/after the meta commit, where
    // journal recovery must reconstruct the full tree.
    let _ = recovered_full;
}

#[test]
fn torn_write_crash_during_inserts_recovers_to_a_point_consistent_state() {
    let pts = random_points(250, 7);
    let universe = ann_geom::Mbr::new([0.0, 0.0], [100.0, 100.0]);

    // Ops consumed by create + the full insert sequence, for sweep bounds.
    let total = {
        let fd = Arc::new(FaultyDisk::unlimited(MemDisk::new()));
        let pool = Arc::new(BufferPool::new(Arc::clone(&fd), 8));
        let mut tree = Mbrqt::create(pool, universe, &qt_cfg()).unwrap();
        for &(oid, p) in &pts {
            tree.insert(oid, p).unwrap();
        }
        fd.op_count()
    };

    let step = (total / 20).max(1);
    let mut mid_states = 0u32;
    let mut op = step; // skip op 0: create() itself may not even start
    while op < total {
        let mem = Arc::new(MemDisk::new());
        let fd = Arc::new(FaultyDisk::unlimited(Arc::clone(&mem)));
        fd.inject_at(
            op,
            InjectedFault::TornWrite {
                persist: (splitmix64(op ^ 0xDEAD) as usize) % FRAME_SIZE,
            },
        );
        let pool = Arc::new(BufferPool::new(Arc::clone(&fd), 8));
        let mut inserted = 0u64;
        let crashed = match Mbrqt::create(pool, universe, &qt_cfg()) {
            Err(_) => true,
            Ok(mut tree) => {
                let mut hit = false;
                for &(oid, p) in &pts {
                    match tree.insert(oid, p) {
                        Ok(()) => inserted += 1,
                        Err(_) => {
                            hit = true;
                            break;
                        }
                    }
                }
                hit
            }
        };

        if crashed {
            // Restart over the surviving media. Each insert is one atomic
            // journal commit, so recovery lands on a tree holding exactly
            // the successful prefix — or prefix + 1 when the crash hit
            // after the commit point (insert reported Err, but the batch
            // was durable and replay completes it).
            let pool = Arc::new(BufferPool::new(Arc::clone(&mem), 64));
            match Mbrqt::<2>::open(pool, 0) {
                Ok(tree) => {
                    let objects = validate(&tree).unwrap().objects;
                    assert!(
                        objects == inserted || objects == inserted + 1,
                        "recovered {objects} objects, expected {inserted} or {}",
                        inserted + 1
                    );
                    if objects > 0 && objects < 250 {
                        mid_states += 1;
                    }
                }
                Err(_) => {
                    // Only acceptable when the crash predates the first
                    // durable commit (nothing referenced the meta page yet).
                    assert_eq!(inserted, 0, "an established tree must reopen after a crash");
                }
            }
        }
        op += step;
    }
    assert!(mid_states > 0, "the sweep must hit mid-sequence crashes");
}

#[test]
fn bit_rot_is_detected_or_harmless_never_silent() {
    let pts = random_points(400, 11);
    let total = build_op_count(&pts);
    let step = (total / 24).max(1);
    let (mut detected, mut intact) = (0u32, 0u32);
    let mut op = 0;
    while op < total {
        let mem = Arc::new(MemDisk::new());
        let fd = Arc::new(FaultyDisk::unlimited(Arc::clone(&mem)));
        fd.inject_at(
            op,
            InjectedFault::BitFlip {
                bit: (splitmix64(op ^ 0xB17F) as usize) % (FRAME_SIZE * 8),
            },
        );
        let pool = Arc::new(BufferPool::new(Arc::clone(&fd), 16));
        let built = Mbrqt::bulk_build(pool.clone(), &pts, &qt_cfg());
        let flipped_on_read = match built {
            // A flip on a read is caught immediately by the pool's
            // checksum verification and surfaces as Corrupt.
            Err(e) => {
                assert!(
                    matches!(e, StoreError::Corrupt { .. }),
                    "bit rot must surface as Corrupt, got {e}"
                );
                assert!(pool.stats().checksum_failures > 0);
                true
            }
            Ok(_) => false, // a flip on a write is silent for now
        };

        // Restart and interrogate the media.
        let pool = Arc::new(BufferPool::new(Arc::clone(&mem), 64));
        match Mbrqt::<2>::open(pool.clone(), 0) {
            Ok(tree) => {
                // `open` validated the whole tree, so every reachable page
                // passed its checksum: queries must see the full dataset.
                let out = mba::<2, NxnDist, _, _>(&tree, &tree, &MbaConfig::default())
                    .expect("queries over a validated tree succeed");
                assert_eq!(out.results.len(), 400, "no silently partial results");
                intact += 1;
            }
            Err(e) => {
                assert!(
                    matches!(e, StoreError::Corrupt { .. }),
                    "reopen over rotted media must report Corrupt, got {e}"
                );
                detected += 1;
            }
        }
        let _ = flipped_on_read;
        op += step;
    }
    assert!(detected > 0, "some flips must be caught by checksums");
    assert!(intact > 0, "flips on read paths leave the media intact");
}

#[test]
fn transient_faults_succeed_under_retry_and_are_counted() {
    let pts = random_points(300, 13);
    let fd = Arc::new(FaultyDisk::unlimited(MemDisk::new()));
    for k in [3, 17, 41, 97] {
        fd.inject_at(k, InjectedFault::Transient);
    }
    let pool = Arc::new(BufferPool::new(Arc::clone(&fd), 16));
    // Default policy: 3 attempts, so each scheduled transient recovers.
    let tree = Mbrqt::bulk_build(pool.clone(), &pts, &qt_cfg()).unwrap();
    assert_eq!(validate(&tree).unwrap().objects, 300);
    assert!(
        pool.stats().retries >= 4,
        "each transient fault must be retried and counted"
    );
}

#[test]
fn transient_faults_surface_when_retry_is_disabled() {
    let fd = Arc::new(FaultyDisk::unlimited(MemDisk::new()));
    fd.inject_at(2, InjectedFault::Transient);
    let pool = Arc::new(BufferPool::new(Arc::clone(&fd), 16));
    pool.set_retry_policy(RetryPolicy {
        max_attempts: 1,
        ..Default::default()
    });
    let Err(err) = Mbrqt::bulk_build(pool, &random_points(100, 17), &qt_cfg()) else {
        panic!("the un-retried transient fault must surface");
    };
    assert!(matches!(err, StoreError::Injected { transient: true }));
}

#[test]
fn exhausted_budget_is_a_permanent_injected_fault() {
    let pool = Arc::new(BufferPool::new(FaultyDisk::new(MemDisk::new(), 5), 8));
    let Err(err) = Mbrqt::bulk_build(pool, &random_points(100, 19), &qt_cfg()) else {
        panic!("an exhausted budget must surface");
    };
    assert!(matches!(err, StoreError::Injected { transient: false }));
}
