//! The unified-entrypoint contract: every [`Algorithm`] variant driven
//! through `ann_core::query::run` must match brute-force ground truth,
//! stay counter-identical to the legacy entrypoints, and stay
//! counter-identical with a recording [`TraceSink`] attached (tracing
//! observes; it never steers).


// The per-algorithm entrypoints these tests drive are deprecated thin
// delegates now; exercising them here is the point (they must stay
// identical to the canonical `query::run` path).
#![allow(deprecated)]
use ann_core::bnn::{bnn, BnnConfig};
use ann_core::brute::brute_force_aknn;
use ann_core::hnn::{hnn, HnnConfig};
use ann_core::mba::{mba, Expansion, MbaConfig, Traversal};
use ann_core::mnn::{mnn, MnnConfig};
use ann_core::prelude::*;
use ann_core::trace::Side;
use ann_geom::{NxnDist, Point};
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_rstar::{RStar, RStarConfig};
use ann_store::{BufferPool, MemDisk};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn pool(frames: usize) -> Arc<BufferPool> {
    Arc::new(BufferPool::new(MemDisk::new(), frames))
}

fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<(u64, Point<D>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                *v = rng.gen_range(0.0..100.0);
            }
            (i as u64, Point::new(c))
        })
        .collect()
}

fn mbrqt_cfg() -> MbrqtConfig {
    MbrqtConfig {
        bucket_capacity: 16,
        ..Default::default()
    }
}

fn rstar_cfg() -> RStarConfig {
    RStarConfig {
        max_leaf_entries: 16,
        max_internal_entries: 8,
        ..Default::default()
    }
}

/// The variants the suite drives; BNN's group size is shrunk so the test
/// trees still produce multiple batches.
fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::mba(),
        Algorithm::Mba {
            traversal: Traversal::default(),
            expansion: Expansion::default(),
            threads: 2,
        },
        Algorithm::Bnn { group_size: 64 },
        Algorithm::Mnn,
        Algorithm::hnn(),
    ]
}

fn truth_sorted<const D: usize>(
    r: &[(u64, Point<D>)],
    s: &[(u64, Point<D>)],
    k: usize,
    exclude_self: bool,
) -> Vec<NeighborPair> {
    let mut t = brute_force_aknn(r, s, k, exclude_self);
    t.sort_by(|a, b| {
        (a.r_oid, a.dist, a.s_oid)
            .partial_cmp(&(b.r_oid, b.dist, b.s_oid))
            .unwrap()
    });
    t
}

/// Byte-exact comparison: under the canonical tie-break (per query,
/// ascending `(distance, s_oid)`) every algorithm must reproduce brute
/// force's neighbor ids and bit-identical distances.
fn assert_matches_truth(mut got: AnnOutput, truth: &[NeighborPair], label: &str) {
    got.sort();
    assert_eq!(got.results.len(), truth.len(), "{label}: result count");
    for (g, t) in got.results.iter().zip(truth) {
        assert_eq!(g.r_oid, t.r_oid, "{label}: query order");
        assert_eq!(g.s_oid, t.s_oid, "{label}: r#{} neighbor id", g.r_oid);
        assert_eq!(
            g.dist.to_bits(),
            t.dist.to_bits(),
            "{label}: r#{} got dist {:?} want {:?}",
            g.r_oid,
            g.dist,
            t.dist
        );
    }
}

/// Drives every algorithm × metric through the unified entrypoint against
/// one dataset pair and checks all of them against brute force.
fn check_all_variants<const D: usize>(
    r: &[(u64, Point<D>)],
    s: &[(u64, Point<D>)],
    k: usize,
    exclude_self: bool,
) {
    let truth = truth_sorted(r, s, k, exclude_self);
    let p = pool(256);
    // Mixed index kinds on purpose: the entrypoint is generic per side.
    let ir = Mbrqt::bulk_build(p.clone(), r, &mbrqt_cfg()).unwrap();
    let is = RStar::bulk_build(p, s, &rstar_cfg()).unwrap();
    for alg in algorithms() {
        for metric in [MetricChoice::Nxn, MetricChoice::MaxMax] {
            let label = format!(
                "{} {:?} D={D} k={k} exclude_self={exclude_self}",
                alg.name(),
                metric
            );
            let out = AnnRequest::new(alg)
                .k(k)
                .exclude_self(exclude_self)
                .metric(metric)
                .run(Input::Index(&ir), Input::Index(&is))
                .unwrap();
            assert_matches_truth(out, &truth, &label);
        }
    }
}

#[test]
fn every_variant_matches_brute_force_2d() {
    let r = random_points::<2>(300, 11);
    let s = random_points::<2>(320, 22);
    for k in [1, 10] {
        check_all_variants(&r, &s, k, false);
    }
}

#[test]
fn every_variant_matches_brute_force_2d_self_join() {
    let pts = random_points::<2>(280, 33);
    for k in [1, 10] {
        check_all_variants(&pts, &pts, k, true);
    }
}

#[test]
fn every_variant_matches_brute_force_10d() {
    let r = random_points::<10>(150, 44);
    let s = random_points::<10>(160, 55);
    for k in [1, 10] {
        check_all_variants(&r, &s, k, false);
    }
    let pts = random_points::<10>(140, 66);
    check_all_variants(&pts, &pts, 1, true);
}

/// Builds a fresh (pool, I_R: Mbrqt, I_S: R*) pair — fresh state for every
/// run so cold-cache I/O counters are comparable across runs.
fn fresh_indexes<const D: usize>(
    r: &[(u64, Point<D>)],
    s: &[(u64, Point<D>)],
) -> (Mbrqt<D>, RStar<D>) {
    let p = pool(64);
    let ir = Mbrqt::bulk_build(p.clone(), r, &mbrqt_cfg()).unwrap();
    let is = RStar::bulk_build(p, s, &rstar_cfg()).unwrap();
    (ir, is)
}

/// With no sink (and with one), the unified entrypoint must produce the
/// very same `AnnStats` — including logical/physical page counters — as
/// the legacy per-algorithm entrypoints. Each run gets freshly built
/// indices so every comparison starts from the same cold state.
#[test]
fn unified_entrypoint_is_counter_identical_to_legacy() {
    let r = random_points::<2>(400, 77);
    let s = random_points::<2>(420, 88);

    type Variant<'a> = (
        &'a str,
        Algorithm,
        Box<dyn Fn(&Mbrqt<2>, &RStar<2>) -> AnnOutput>,
    );
    let k = 3;
    let r2 = r.clone();
    let variants: Vec<Variant> = vec![
        (
            "mba",
            Algorithm::Mba {
                traversal: Traversal::default(),
                expansion: Expansion::default(),
                threads: 1,
            },
            Box::new(move |ir, is| {
                let cfg = MbaConfig {
                    k,
                    ..Default::default()
                };
                mba::<2, NxnDist, _, _>(ir, is, &cfg).unwrap()
            }),
        ),
        (
            "bnn",
            Algorithm::Bnn { group_size: 64 },
            Box::new(move |_ir, is| {
                let cfg = BnnConfig {
                    k,
                    group_size: 64,
                    exclude_self: false,
                };
                bnn::<2, NxnDist, _>(&r2, is, &cfg).unwrap()
            }),
        ),
        (
            "mnn",
            Algorithm::Mnn,
            Box::new(move |ir, is| {
                let cfg = MnnConfig {
                    k,
                    exclude_self: false,
                };
                mnn::<2, NxnDist, _, _>(ir, is, &cfg).unwrap()
            }),
        ),
    ];

    for (name, alg, legacy) in variants {
        let (ir, is) = fresh_indexes(&r, &s);
        // The unified entrypoint returns canonical (r_oid, dist, s_oid)
        // order at every thread count; the legacy entrypoints emit
        // traversal order. Canonicalize before comparing content.
        let mut legacy_out = legacy(&ir, &is);
        legacy_out.sort();

        let (ir, is) = fresh_indexes(&r, &s);
        let req = AnnRequest::new(alg).k(k);
        let plain_out = match alg {
            Algorithm::Bnn { .. } => req.run(Input::<2, NoIndex>::Points(&r), Input::Index(&is)),
            _ => req.run(Input::Index(&ir), Input::Index(&is)),
        }
        .unwrap();

        let (ir, is) = fresh_indexes(&r, &s);
        let sink = RecordingSink::new();
        let req = AnnRequest::new(alg).k(k).trace(&sink);
        let traced_out = match alg {
            Algorithm::Bnn { .. } => req.run(Input::<2, NoIndex>::Points(&r), Input::Index(&is)),
            _ => req.run(Input::Index(&ir), Input::Index(&is)),
        }
        .unwrap();

        assert_eq!(
            plain_out.stats, legacy_out.stats,
            "{name}: unified vs legacy stats"
        );
        assert_eq!(
            traced_out.stats, plain_out.stats,
            "{name}: recording sink must not perturb counters"
        );
        assert_eq!(
            plain_out.results, legacy_out.results,
            "{name}: unified vs legacy results"
        );
        assert_eq!(
            traced_out.results, plain_out.results,
            "{name}: recording sink must not perturb results"
        );
    }

    // HNN is poolless; one dataset pair suffices.
    let h_cfg = HnnConfig {
        k,
        ..Default::default()
    };
    let mut legacy_out = hnn(&r, &s, &h_cfg).unwrap();
    legacy_out.sort();
    let sink = RecordingSink::new();
    let traced_out = AnnRequest::new(Algorithm::hnn())
        .k(k)
        .trace(&sink)
        .run(
            Input::<2, NoIndex>::Points(&r),
            Input::<2, NoIndex>::Points(&s),
        )
        .unwrap();
    assert_eq!(traced_out.stats, legacy_out.stats, "hnn stats");
    assert_eq!(traced_out.results, legacy_out.results, "hnn results");
}

/// Every span a traced run opens must be closed by the time it returns,
/// for every algorithm, including the traced index builds.
#[test]
fn recording_sink_sees_balanced_spans() {
    let r = random_points::<2>(300, 99);
    let s = random_points::<2>(310, 110);
    for alg in algorithms() {
        let sink = RecordingSink::new();
        let tracer = Tracer::new(&sink);
        let p = pool(64);
        let ir = Mbrqt::bulk_build_traced(p.clone(), &r, &mbrqt_cfg(), Side::R, tracer).unwrap();
        let is = RStar::bulk_build_traced(p, &s, &rstar_cfg(), Side::S, tracer).unwrap();
        AnnRequest::new(alg)
            .k(2)
            .trace(&sink)
            .run(Input::Index(&ir), Input::Index(&is))
            .unwrap();
        assert_eq!(sink.open_spans(), 0, "{}: spans left open", alg.name());
        let (entered, exited) = sink.span_counts();
        assert_eq!(entered, exited, "{}: span balance", alg.name());
        assert!(entered > 0, "{}: no spans recorded", alg.name());
        let json = sink.report(alg.name()).to_json();
        assert!(
            json.starts_with('{') && json.ends_with('}'),
            "{}: report JSON malformed",
            alg.name()
        );
    }
}

/// The morsel engine is answer-invisible through the unified entrypoint:
/// every variant at every requested thread count (including `0` = one
/// worker per core) matches brute force — and therefore the serial run —
/// byte-for-byte, with and without a recording sink attached.
#[test]
fn every_variant_matches_brute_force_with_request_threads() {
    let r = random_points::<2>(300, 121);
    let s = random_points::<2>(320, 132);
    let k = 3;
    let truth = truth_sorted(&r, &s, k, false);
    let p = pool(256);
    let ir = Mbrqt::bulk_build(p.clone(), &r, &mbrqt_cfg()).unwrap();
    let is = RStar::bulk_build(p, &s, &rstar_cfg()).unwrap();
    for alg in algorithms() {
        for threads in [0usize, 2, 3, 8] {
            let label = format!("{} threads={threads}", alg.name());
            let out = AnnRequest::new(alg)
                .k(k)
                .threads(threads)
                .run(Input::Index(&ir), Input::Index(&is))
                .unwrap();
            assert_matches_truth(out, &truth, &label);
            // Tracing a parallel run observes, never steers.
            let sink = RecordingSink::new();
            let traced = AnnRequest::new(alg)
                .k(k)
                .threads(threads)
                .trace(&sink)
                .run(Input::Index(&ir), Input::Index(&is))
                .unwrap();
            assert_matches_truth(traced, &truth, &format!("{label} traced"));
        }
    }
}

#[test]
#[should_panic(expected = "requires Input::Index")]
fn mba_rejects_point_inputs() {
    let pts = random_points::<2>(10, 5);
    let _ = AnnRequest::new(Algorithm::mba()).run(
        Input::<2, NoIndex>::Points(&pts),
        Input::<2, NoIndex>::Points(&pts),
    );
}
