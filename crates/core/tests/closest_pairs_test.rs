//! Tests for the k-closest-pairs distance join against brute force.

use ann_core::closest_pairs::{closest_pairs, ClosestPairsConfig};
use ann_geom::Point;
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_rstar::{RStar, RStarConfig};
use ann_store::{BufferPool, MemDisk};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::new(MemDisk::new(), 256))
}

fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<(u64, Point<D>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                *v = rng.gen_range(0.0..100.0);
            }
            (i as u64, Point::new(c))
        })
        .collect()
}

/// Brute-force k closest pairs (distances only — ties may swap ids).
fn brute<const D: usize>(
    r: &[(u64, Point<D>)],
    s: &[(u64, Point<D>)],
    k: usize,
    exclude_self: bool,
) -> Vec<f64> {
    let mut dists: Vec<f64> = r
        .iter()
        .flat_map(|(ro, rp)| {
            s.iter().filter_map(move |(so, sp)| {
                if exclude_self && ro == so {
                    None
                } else {
                    Some(rp.dist(sp))
                }
            })
        })
        .collect();
    dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
    dists.truncate(k);
    dists
}

fn check<const D: usize>(
    r: &[(u64, Point<D>)],
    s: &[(u64, Point<D>)],
    k: usize,
    exclude_self: bool,
) {
    let want = brute(r, s, k, exclude_self);
    let p = pool();
    let ir = Mbrqt::bulk_build(
        p.clone(),
        r,
        &MbrqtConfig {
            bucket_capacity: 16,
            ..Default::default()
        },
    )
    .unwrap();
    let is = RStar::bulk_build(
        p,
        s,
        &RStarConfig {
            max_leaf_entries: 16,
            max_internal_entries: 8,
            ..Default::default()
        },
    )
    .unwrap();
    let cfg = ClosestPairsConfig { k, exclude_self };
    let out = closest_pairs(&ir, &is, &cfg).unwrap();
    assert_eq!(out.results.len(), want.len(), "k={k}");
    for (got, want) in out.results.iter().zip(&want) {
        assert!(
            (got.dist - want).abs() < 1e-9,
            "k={k}: got {} want {}",
            got.dist,
            want
        );
    }
    // Ascending order.
    for w in out.results.windows(2) {
        assert!(w[0].dist <= w[1].dist);
    }
}

#[test]
fn matches_brute_force_various_k() {
    let r = random_points::<2>(500, 51);
    let s = random_points::<2>(600, 52);
    for k in [1usize, 2, 10, 50] {
        check(&r, &s, k, false);
    }
}

#[test]
fn three_d_and_mixed_indices() {
    let r = random_points::<3>(400, 53);
    let s = random_points::<3>(400, 54);
    check(&r, &s, 5, false);
}

#[test]
fn self_join_without_exclusion_finds_zero_distances() {
    let pts = random_points::<2>(300, 55);
    let want = brute(&pts, &pts, 3, false);
    assert!(want.iter().all(|&d| d == 0.0), "self pairs dominate");
    check(&pts, &pts, 3, false);
}

#[test]
fn self_join_with_exclusion() {
    let pts = random_points::<2>(300, 56);
    // Both orientations of the closest distinct pair appear.
    check(&pts, &pts, 2, true);
    check(&pts, &pts, 11, true);
}

#[test]
fn known_configuration() {
    // A tiny hand-built instance: closest pair is (1, 10) at distance 1.
    let r = vec![
        (0u64, Point::new([0.0, 0.0])),
        (1u64, Point::new([10.0, 0.0])),
    ];
    let s = vec![
        (10u64, Point::new([11.0, 0.0])),
        (11u64, Point::new([50.0, 50.0])),
    ];
    let p = pool();
    let ir = Mbrqt::bulk_build(p.clone(), &r, &MbrqtConfig::default()).unwrap();
    let is = Mbrqt::bulk_build(p, &s, &MbrqtConfig::default()).unwrap();
    let out = closest_pairs(&ir, &is, &ClosestPairsConfig::default()).unwrap();
    assert_eq!(out.results.len(), 1);
    assert_eq!(out.results[0].r_oid, 1);
    assert_eq!(out.results[0].s_oid, 10);
    assert_eq!(out.results[0].dist, 1.0);
}

#[test]
fn k_exceeding_pair_count() {
    let r = random_points::<2>(3, 57);
    let s = random_points::<2>(4, 58);
    check(&r, &s, 100, false);
}

#[test]
fn empty_inputs() {
    let p = pool();
    let empty = Mbrqt::<2>::bulk_build(p.clone(), &[], &MbrqtConfig::default()).unwrap();
    let some = Mbrqt::bulk_build(p, &random_points::<2>(10, 59), &MbrqtConfig::default()).unwrap();
    let out = closest_pairs(&empty, &some, &ClosestPairsConfig::default()).unwrap();
    assert!(out.results.is_empty());
}
