//! Tests for the standalone kNN / range query primitives.

use ann_core::knn::{knn, within_radius};
use ann_geom::{MaxMaxDist, NxnDist, Point};
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_rstar::{RStar, RStarConfig};
use ann_store::{BufferPool, MemDisk};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::new(MemDisk::new(), 256))
}

fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<(u64, Point<D>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                *v = rng.gen_range(0.0..100.0);
            }
            (i as u64, Point::new(c))
        })
        .collect()
}

fn brute_knn<const D: usize>(pts: &[(u64, Point<D>)], q: &Point<D>, k: usize) -> Vec<(u64, f64)> {
    let mut v: Vec<(u64, f64)> = pts.iter().map(|(o, p)| (*o, p.dist(q))).collect();
    v.sort_by(|a, b| (a.1, a.0).partial_cmp(&(b.1, b.0)).unwrap());
    v.truncate(k);
    v
}

#[test]
fn knn_matches_brute_force_on_both_indices() {
    let pts = random_points::<2>(3000, 31);
    let p = pool();
    let qt = Mbrqt::bulk_build(
        p.clone(),
        &pts,
        &MbrqtConfig {
            bucket_capacity: 32,
            ..Default::default()
        },
    )
    .unwrap();
    let rs = RStar::bulk_build(
        p,
        &pts,
        &RStarConfig {
            max_leaf_entries: 32,
            max_internal_entries: 16,
            ..Default::default()
        },
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..50 {
        let q = Point::new([rng.gen_range(-10.0..110.0), rng.gen_range(-10.0..110.0)]);
        for k in [1usize, 7] {
            let want = brute_knn(&pts, &q, k);
            for got in [
                knn::<2, NxnDist, _>(&qt, &q, k).unwrap(),
                knn::<2, MaxMaxDist, _>(&qt, &q, k).unwrap(),
                knn::<2, NxnDist, _>(&rs, &q, k).unwrap(),
            ] {
                assert_eq!(got.len(), k);
                for (g, w) in got.iter().zip(&want) {
                    assert!((g.1 - w.1).abs() < 1e-9, "dist mismatch: {g:?} vs {w:?}");
                }
            }
        }
    }
}

#[test]
fn knn_results_are_sorted_ascending() {
    let pts = random_points::<3>(1000, 33);
    let tree = Mbrqt::bulk_build(pool(), &pts, &MbrqtConfig::default()).unwrap();
    let got = knn::<3, NxnDist, _>(&tree, &Point::new([50.0, 50.0, 50.0]), 20).unwrap();
    assert_eq!(got.len(), 20);
    for w in got.windows(2) {
        assert!(w[0].1 <= w[1].1);
    }
}

#[test]
fn knn_with_k_exceeding_cardinality() {
    let pts = random_points::<2>(5, 35);
    let tree = Mbrqt::bulk_build(pool(), &pts, &MbrqtConfig::default()).unwrap();
    let got = knn::<2, NxnDist, _>(&tree, &Point::new([0.0, 0.0]), 100).unwrap();
    assert_eq!(got.len(), 5);
}

#[test]
fn knn_on_empty_index() {
    let tree = Mbrqt::<2>::bulk_build(pool(), &[], &MbrqtConfig::default()).unwrap();
    assert!(knn::<2, NxnDist, _>(&tree, &Point::new([0.0, 0.0]), 3)
        .unwrap()
        .is_empty());
}

#[test]
fn within_radius_matches_filtered_brute_force() {
    let pts = random_points::<2>(2000, 37);
    let tree = Mbrqt::bulk_build(pool(), &pts, &MbrqtConfig::default()).unwrap();
    let q = Point::new([42.0, 58.0]);
    for radius in [0.0, 3.0, 25.0] {
        let got = within_radius(&tree, &q, radius).unwrap();
        let mut want: Vec<(u64, f64)> = pts
            .iter()
            .map(|(o, p)| (*o, p.dist(&q)))
            .filter(|(_, d)| *d <= radius)
            .collect();
        want.sort_by(|a, b| (a.1, a.0).partial_cmp(&(b.1, b.0)).unwrap());
        assert_eq!(got.len(), want.len(), "radius {radius}");
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.0, w.0);
        }
    }
}

#[test]
fn within_radius_boundary_is_inclusive() {
    let pts = vec![(0u64, Point::new([3.0, 4.0]))];
    let tree = Mbrqt::bulk_build(pool(), &pts, &MbrqtConfig::default()).unwrap();
    let got = within_radius(&tree, &Point::new([0.0, 0.0]), 5.0).unwrap();
    assert_eq!(got.len(), 1);
}
