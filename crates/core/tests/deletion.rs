//! Deletion tests for both indices: structural invariants hold after
//! arbitrary delete sequences, and queries over the remainder stay exact.


// The per-algorithm entrypoints these tests drive are deprecated thin
// delegates now; exercising them here is the point (they must stay
// identical to the canonical `query::run` path).
#![allow(deprecated)]
use ann_core::brute::brute_force_aknn;
use ann_core::index::{collect_objects, validate};
use ann_core::mba::{mba, MbaConfig};
use ann_core::SpatialIndex;
use ann_geom::{NxnDist, Point};
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_rstar::{RStar, RStarConfig};
use ann_store::{BufferPool, MemDisk};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::new(MemDisk::new(), 256))
}

fn random_points(n: usize, seed: u64) -> Vec<(u64, Point<2>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (
                i as u64,
                Point::new([rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]),
            )
        })
        .collect()
}

#[test]
fn rstar_delete_half_keeps_tree_valid() {
    let pts = random_points(2000, 61);
    let mut tree = RStar::bulk_build(
        pool(),
        &pts,
        &RStarConfig {
            max_leaf_entries: 16,
            max_internal_entries: 8,
            ..Default::default()
        },
    )
    .unwrap();
    let mut order = pts.clone();
    order.shuffle(&mut StdRng::seed_from_u64(1));
    for (i, (oid, p)) in order.iter().take(1000).enumerate() {
        assert!(tree.delete(*oid, p).unwrap(), "delete #{i} (oid {oid})");
        if i % 250 == 249 {
            let shape = validate(&tree).unwrap();
            assert_eq!(shape.objects, 2000 - i as u64 - 1);
        }
    }
    assert_eq!(tree.num_points(), 1000);
    validate(&tree).unwrap();

    // Remaining objects are exactly the undeleted ones.
    let mut got: Vec<u64> = collect_objects(&tree)
        .unwrap()
        .iter()
        .map(|(o, _)| *o)
        .collect();
    got.sort_unstable();
    let mut want: Vec<u64> = order.iter().skip(1000).map(|(o, _)| *o).collect();
    want.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn mbrqt_delete_half_keeps_tree_valid() {
    let pts = random_points(2000, 62);
    let universe = ann_geom::Mbr::new([0.0, 0.0], [100.0, 100.0]);
    let mut tree = Mbrqt::create(
        pool(),
        universe,
        &MbrqtConfig {
            bucket_capacity: 16,
            ..Default::default()
        },
    )
    .unwrap();
    for &(oid, p) in &pts {
        tree.insert(oid, p).unwrap();
    }
    let mut order = pts.clone();
    order.shuffle(&mut StdRng::seed_from_u64(2));
    for (i, (oid, p)) in order.iter().take(1500).enumerate() {
        assert!(tree.delete(*oid, p).unwrap(), "delete #{i}");
        if i % 300 == 299 {
            let shape = validate(&tree).unwrap();
            assert_eq!(shape.objects, 2000 - i as u64 - 1);
        }
    }
    assert_eq!(tree.num_points(), 500);
    // Collapse should have shrunk the tree considerably.
    let shape = validate(&tree).unwrap();
    assert_eq!(shape.objects, 500);
}

#[test]
fn queries_stay_exact_under_churn() {
    // Interleave inserts and deletes, then check ANN against brute force
    // over the surviving set.
    let pts = random_points(1200, 63);
    let mut tree = RStar::bulk_build(pool(), &pts[..800], &RStarConfig::default()).unwrap();
    let mut live: Vec<(u64, Point<2>)> = pts[..800].to_vec();
    let mut rng = StdRng::seed_from_u64(3);
    for &(oid, p) in &pts[800..] {
        // Insert one, delete one random existing.
        tree.insert(oid, p).unwrap();
        live.push((oid, p));
        let victim = rng.gen_range(0..live.len());
        let (v_oid, v_p) = live.swap_remove(victim);
        assert!(tree.delete(v_oid, &v_p).unwrap());
    }
    validate(&tree).unwrap();

    let mut out = mba::<2, NxnDist, _, _>(
        &tree,
        &tree,
        &MbaConfig {
            exclude_self: true,
            ..Default::default()
        },
    )
    .unwrap();
    out.sort();
    let mut truth = brute_force_aknn(&live, &live, 1, true);
    truth.sort_by(|a, b| {
        (a.r_oid, a.dist, a.s_oid)
            .partial_cmp(&(b.r_oid, b.dist, b.s_oid))
            .unwrap()
    });
    assert_eq!(out.results.len(), truth.len());
    for (g, t) in out.results.iter().zip(&truth) {
        assert_eq!(g.r_oid, t.r_oid);
        assert!((g.dist - t.dist).abs() < 1e-9);
    }
}

#[test]
fn delete_missing_returns_false() {
    let pts = random_points(100, 64);
    let mut rs = RStar::bulk_build(pool(), &pts, &RStarConfig::default()).unwrap();
    let mut qt = Mbrqt::bulk_build(pool(), &pts, &MbrqtConfig::default()).unwrap();
    // Wrong id at a real location; right id at a wrong location; both wrong.
    let (oid, p) = pts[0];
    assert!(!rs.delete(9999, &p).unwrap());
    assert!(!rs.delete(oid, &Point::new([-5.0, -5.0])).unwrap());
    assert!(!qt.delete(9999, &p).unwrap());
    assert!(
        !qt.delete(oid, &Point::new([5.0, 5.0])).unwrap() || pts[0].1 == Point::new([5.0, 5.0])
    );
    assert_eq!(rs.num_points(), 100);
    assert_eq!(qt.num_points(), 100);
}

#[test]
fn delete_everything_leaves_usable_empty_trees() {
    let pts = random_points(300, 65);
    let mut rs = RStar::bulk_build(pool(), &pts, &RStarConfig::default()).unwrap();
    let universe = ann_geom::Mbr::new([0.0, 0.0], [100.0, 100.0]);
    let mut qt = Mbrqt::create(pool(), universe, &MbrqtConfig::default()).unwrap();
    for &(oid, p) in &pts {
        qt.insert(oid, p).unwrap();
    }
    for &(oid, p) in &pts {
        assert!(rs.delete(oid, &p).unwrap());
        assert!(qt.delete(oid, &p).unwrap());
    }
    assert_eq!(rs.num_points(), 0);
    assert_eq!(qt.num_points(), 0);
    assert_eq!(validate(&rs).unwrap().objects, 0);
    assert_eq!(validate(&qt).unwrap().objects, 0);
    // Both accept fresh inserts afterwards.
    rs.insert(7, Point::new([1.0, 1.0])).unwrap();
    qt.insert(7, Point::new([1.0, 1.0])).unwrap();
    assert_eq!(collect_objects(&rs).unwrap().len(), 1);
    assert_eq!(collect_objects(&qt).unwrap().len(), 1);
}

#[test]
fn duplicate_positions_delete_by_oid() {
    // Several objects at the same position: deletion must remove exactly
    // the requested oid.
    let p = Point::new([5.0, 5.0]);
    let pts: Vec<(u64, Point<2>)> = (0..20).map(|i| (i, p)).collect();
    let mut tree = RStar::bulk_build(pool(), &pts, &RStarConfig::default()).unwrap();
    assert!(tree.delete(7, &p).unwrap());
    assert!(!tree.delete(7, &p).unwrap(), "already gone");
    let left: Vec<u64> = collect_objects(&tree)
        .unwrap()
        .iter()
        .map(|(o, _)| *o)
        .collect();
    assert_eq!(left.len(), 19);
    assert!(!left.contains(&7));
}
