//! Wire-schema gates for the serving API (DESIGN.md §14):
//!
//! * **golden fixtures** — one pinned JSON document per `Algorithm` ×
//!   `MetricChoice` combination. These bytes are the v1 wire contract;
//!   a diff here means the schema changed and `WIRE_SCHEMA_VERSION`
//!   must be bumped (see the rule on the constant).
//! * **property round-trip** — for fuzz-generated specs,
//!   `QuerySpec → to_json → from_json` is the identity and re-serializing
//!   is byte-stable (the serving differential test leans on this).
//! * **`f64` transit** — distances survive JSON bit-exactly.
//! * **error-surface stability** — numeric codes and HTTP statuses are
//!   frozen; renumbering is a breaking wire change.
//! * **`AnnRequest` Debug completeness** — server request logs must show
//!   the resilience fields (the PR 7 omission this PR fixes).

use std::time::{Duration, Instant};

use ann_core::mba::{Expansion, Traversal};
use ann_core::prelude::*;
use ann_core::resilience::CancelToken;
use ann_core::stats::NeighborPair;

/// Tiny deterministic generator (splitmix64) so the property tests need
/// no external crate.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[(self.next() % xs.len() as u64) as usize]
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

fn arbitrary_spec(rng: &mut Rng) -> QuerySpec {
    let algorithm = match rng.next() % 5 {
        0 => Algorithm::mba(),
        1 => Algorithm::Mba {
            traversal: rng.pick(&[Traversal::DepthFirst, Traversal::BreadthFirst]),
            expansion: rng.pick(&[Expansion::Bidirectional, Expansion::Unidirectional]),
            threads: rng.pick(&[0, 1, 2, 8]),
        },
        2 => Algorithm::Bnn {
            group_size: rng.pick(&[1, 4, 4096]),
        },
        3 => Algorithm::Mnn,
        _ => Algorithm::Hnn {
            avg_cell_occupancy: rng.pick(&[0.5, 1.0, 8.0, 1e-3]),
        },
    };
    let mut spec = QuerySpec::new(algorithm);
    spec.k = rng.pick(&[0, 1, 2, 17, usize::MAX >> 11]);
    spec.exclude_self = rng.chance(50);
    spec.metric = rng.pick(&[MetricChoice::Nxn, MetricChoice::MaxMax]);
    if rng.chance(40) {
        spec.deadline_ms = Some(rng.next() % 1_000_000);
    }
    if rng.chance(40) {
        spec.io_budget = Some(rng.next() % 100_000);
    }
    if rng.chance(40) {
        spec.visit_budget = Some(rng.next() % 100_000);
    }
    if rng.chance(30) {
        spec.retry = Some(RetryPolicy {
            max_attempts: (rng.next() % 7 + 1) as u32,
            backoff: Duration::from_millis(rng.next() % 500),
        });
    }
    if rng.chance(40) {
        spec.version = Some((rng.next() % 10_000 + 1) as u32);
    }
    spec
}

#[test]
fn property_round_trip_is_identity_and_byte_stable() {
    let mut rng = Rng(0xC0FFEE);
    for case in 0..2000 {
        let spec = arbitrary_spec(&mut rng);
        let json = spec.to_json();
        let back = QuerySpec::from_json(&json)
            .unwrap_or_else(|e| panic!("case {case}: parse failed: {e}\n{json}"));
        assert_eq!(back, spec, "case {case}: round-trip changed the spec");
        assert_eq!(
            back.to_json(),
            json,
            "case {case}: re-serialization not byte-stable"
        );
    }
}

/// The v1 golden fixtures: every `Algorithm` shape × both metrics. These
/// exact bytes are what v1 clients send; changing any of them requires a
/// `WIRE_SCHEMA_VERSION` bump.
#[test]
fn golden_fixtures_per_algorithm_and_metric() {
    let algorithms: Vec<(Algorithm, &str)> = vec![
        (
            Algorithm::mba(),
            r#""algorithm":{"name":"mba","traversal":"depth-first","expansion":"bidirectional","threads":1}"#,
        ),
        (
            Algorithm::Mba {
                traversal: Traversal::BreadthFirst,
                expansion: Expansion::Unidirectional,
                threads: 8,
            },
            r#""algorithm":{"name":"mba","traversal":"breadth-first","expansion":"unidirectional","threads":8}"#,
        ),
        (
            Algorithm::Bnn { group_size: 4096 },
            r#""algorithm":{"name":"bnn","group_size":4096}"#,
        ),
        (Algorithm::Mnn, r#""algorithm":{"name":"mnn"}"#),
        (
            Algorithm::Hnn {
                avg_cell_occupancy: 8.0,
            },
            r#""algorithm":{"name":"hnn","avg_cell_occupancy":8.0}"#,
        ),
    ];
    for (algorithm, alg_json) in algorithms {
        for (metric, metric_name) in [(MetricChoice::Nxn, "nxn"), (MetricChoice::MaxMax, "maxmax")]
        {
            let mut spec = QuerySpec::new(algorithm);
            spec.metric = metric;
            spec.k = 2;
            spec.exclude_self = true;
            let expected = format!(
                "{{\"v\":1,{alg_json},\"metric\":\"{metric_name}\",\"k\":2,\"exclude_self\":true}}"
            );
            assert_eq!(spec.to_json(), expected, "golden fixture drifted");
            let parsed = QuerySpec::from_json(&expected).expect("golden fixture must parse");
            assert_eq!(parsed, spec);
        }
    }
}

#[test]
fn golden_fixture_with_all_optional_fields() {
    let mut spec = QuerySpec::new(Algorithm::mba());
    spec.k = 3;
    spec.deadline_ms = Some(1500);
    spec.io_budget = Some(10_000);
    spec.visit_budget = Some(50_000);
    spec.retry = Some(RetryPolicy {
        max_attempts: 3,
        backoff: Duration::from_millis(10),
    });
    let expected = concat!(
        "{\"v\":1,",
        "\"algorithm\":{\"name\":\"mba\",\"traversal\":\"depth-first\",",
        "\"expansion\":\"bidirectional\",\"threads\":1},",
        "\"metric\":\"nxn\",\"k\":3,\"exclude_self\":false,",
        "\"deadline_ms\":1500,\"io_budget\":10000,\"visit_budget\":50000,",
        "\"retry\":{\"max_attempts\":3,\"backoff_ms\":10}}"
    );
    assert_eq!(spec.to_json(), expected);
    assert_eq!(QuerySpec::from_json(expected).expect("parses"), spec);
}

#[test]
fn newer_schema_versions_are_rejected() {
    let json = QuerySpec::default().to_json().replacen("\"v\":1", "\"v\":2", 1);
    match QuerySpec::from_json(&json) {
        Err(WireError::UnsupportedVersion(2)) => {}
        other => panic!("expected UnsupportedVersion(2), got {other:?}"),
    }
}

#[test]
fn outcome_distances_survive_json_bit_exactly() {
    let awkward = [
        0.1 + 0.2,
        1.0 / 3.0,
        f64::MIN_POSITIVE,
        5e-324, // subnormal
        1.7976931348623157e308,
        123456789.123456789,
        0.0,
    ];
    let outcome = QueryOutcome {
        results: awkward
            .iter()
            .enumerate()
            .map(|(i, &d)| NeighborPair {
                r_oid: i as u64,
                s_oid: i as u64 + 1,
                dist: d,
            })
            .collect(),
        stats: AnnStats::default(),
        report: None,
        version: Some(3),
    };
    let json = outcome.to_json();
    let back = QueryOutcome::from_json(&json).expect("outcome parses");
    assert_eq!(back.results.len(), awkward.len());
    for (orig, parsed) in outcome.results.iter().zip(&back.results) {
        assert_eq!(
            orig.dist.to_bits(),
            parsed.dist.to_bits(),
            "distance {} lost bits over the wire",
            orig.dist
        );
    }
}

/// Numeric error codes and their HTTP mappings are frozen wire contract.
#[test]
fn error_codes_and_http_statuses_are_stable() {
    let table: [(ErrorCode, u16, u16, &str); 12] = [
        (ErrorCode::BadRequest, 1000, 400, "bad-request"),
        (ErrorCode::Cancelled, 1001, 499, "cancelled"),
        (ErrorCode::DeadlineExceeded, 1002, 504, "deadline-exceeded"),
        (ErrorCode::VisitBudgetExhausted, 1003, 422, "visit-budget-exhausted"),
        (ErrorCode::IoBudgetExhausted, 1004, 422, "io-budget-exhausted"),
        (ErrorCode::StorageFailed, 1005, 500, "storage-failed"),
        (ErrorCode::CollectionNotFound, 2000, 404, "collection-not-found"),
        (ErrorCode::CollectionExists, 2001, 409, "collection-exists"),
        (ErrorCode::InvalidCollection, 2002, 400, "invalid-collection"),
        (ErrorCode::Overloaded, 3000, 429, "overloaded"),
        (ErrorCode::ShuttingDown, 3001, 503, "shutting-down"),
        (ErrorCode::Internal, 5000, 500, "internal"),
    ];
    for (code, num, status, label) in table {
        assert_eq!(code.code(), num, "{code:?} renumbered");
        assert_eq!(code.http_status(), status, "{code:?} HTTP status changed");
        assert_eq!(code.label(), label, "{code:?} label changed");
    }
}

/// The PR 7 resilience fields must all appear in `AnnRequest`'s Debug
/// output — server request logs print it.
#[test]
fn ann_request_debug_includes_resilience_fields() {
    let token = CancelToken::new();
    token.cancel();
    let req = AnnRequest::new(Algorithm::mba())
        .k(2)
        .deadline(Instant::now() + Duration::from_secs(5))
        .cancel_token(token)
        .io_budget(123)
        .visit_budget(456)
        .retry(RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(7),
        });
    let dbg = format!("{req:?}");
    for needle in [
        "deadline_in",
        "cancellable: true",
        "cancelled: true",
        "io_budget: Some(123)",
        "visit_budget: Some(456)",
        "max_attempts: 3",
        "traced: false",
    ] {
        assert!(dbg.contains(needle), "Debug output missing {needle:?}: {dbg}");
    }
}

/// Request → spec → request preserves every wire-visible field.
#[test]
fn request_spec_conversions_are_lossless() {
    let req = AnnRequest::new(Algorithm::Bnn { group_size: 7 })
        .k(4)
        .exclude_self(true)
        .metric(MetricChoice::MaxMax)
        .io_budget(1000)
        .visit_budget(2000)
        .retry(RetryPolicy {
            max_attempts: 2,
            backoff: Duration::from_millis(1),
        });
    let spec = QuerySpec::from(&req);
    let back: AnnRequest<'static> = AnnRequest::from(&spec);
    assert_eq!(back.k, req.k);
    assert_eq!(back.exclude_self, req.exclude_self);
    assert_eq!(back.metric, req.metric);
    assert_eq!(back.algorithm, req.algorithm);
    assert_eq!(back.io_budget, req.io_budget);
    assert_eq!(back.visit_budget, req.visit_budget);
    assert_eq!(back.retry, req.retry);
}
