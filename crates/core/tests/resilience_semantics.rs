//! Request-level resilience semantics: deadlines, cancellation, and work
//! budgets threaded through [`AnnRequest`] must abort promptly, report
//! accurate partial work, release every pool pin, and leave the system in
//! a state where a clean re-run is byte-identical to a fresh one.

use ann_core::prelude::*;
use ann_geom::Point;
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_rstar::{RStar, RStarConfig};
use ann_store::{BufferPool, FaultyDisk, InjectedFault, MemDisk};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn random_points(n: usize, seed: u64) -> Vec<(u64, Point<2>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (
                i as u64,
                Point::new([rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]),
            )
        })
        .collect()
}

/// Small nodes so a few hundred points span many pages and expansions.
fn qt_cfg() -> MbrqtConfig {
    MbrqtConfig {
        bucket_capacity: 16,
        ..Default::default()
    }
}

fn rs_cfg() -> RStarConfig {
    RStarConfig {
        max_leaf_entries: 16,
        max_internal_entries: 8,
        ..Default::default()
    }
}

struct Fixture {
    pool: Arc<BufferPool>,
    ir: Mbrqt<2>,
    is: RStar<2>,
}

fn fixture(n: usize, seed: u64, frames: usize) -> Fixture {
    let pts = random_points(n, seed);
    let pool = Arc::new(BufferPool::new(MemDisk::new(), frames));
    let ir = Mbrqt::bulk_build(pool.clone(), &pts, &qt_cfg()).unwrap();
    let is = RStar::bulk_build(pool.clone(), &pts, &rs_cfg()).unwrap();
    Fixture { pool, ir, is }
}

/// Drops every decoded-node cache and pool frame so the next run pays
/// real I/O (the caches otherwise serve repeats without touching disk).
fn chill(f: &Fixture) {
    if let Some(c) = f.ir.node_cache() {
        c.clear();
    }
    if let Some(c) = f.is.node_cache() {
        c.clear();
    }
    f.pool.clear().unwrap();
}

/// Canonical comparison content: sorted pairs plus io-zeroed counters
/// (cache state legitimately differs between runs; decisions must not).
fn canon(out: &AnnOutput) -> (Vec<NeighborPair>, AnnStats) {
    let mut o = out.clone();
    o.sort();
    let mut stats = o.stats;
    stats.io = Default::default();
    (o.results, stats)
}

fn request(alg: Algorithm) -> AnnRequest<'static> {
    AnnRequest::new(alg).k(2)
}

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::mba(),
        Algorithm::Bnn { group_size: 64 },
        Algorithm::Mnn,
    ]
}

/// A token cancelled before the request starts aborts before the
/// traversal touches a single page.
#[test]
fn cancel_before_start_aborts_without_reading() {
    let f = fixture(400, 1, 64);
    for alg in algorithms() {
        chill(&f);
        let before = f.pool.stats();
        let token = CancelToken::new();
        token.cancel();
        let err = request(alg)
            .cancel_token(token)
            .run(Input::Index(&f.ir), Input::Index(&f.is))
            .expect_err("pre-cancelled request must not run");
        assert!(
            matches!(err, QueryError::Cancelled),
            "{}: wrong abort: {err}",
            alg.name()
        );
        let after = f.pool.stats();
        assert_eq!(
            after.logical_reads, before.logical_reads,
            "{}: a pre-cancelled query must not touch the pool",
            alg.name()
        );
        assert_eq!(f.pool.pinned_frames(), 0, "{}: leaked pins", alg.name());
    }
}

/// A deadline already in the past aborts before the first expansion, and
/// a mid-flight cancellation from another thread stops a long query.
#[test]
fn expired_deadline_aborts_before_first_expansion() {
    let f = fixture(400, 2, 64);
    for alg in algorithms() {
        chill(&f);
        let before = f.pool.stats();
        let err = request(alg)
            .deadline(Instant::now() - Duration::from_millis(1))
            .run(Input::Index(&f.ir), Input::Index(&f.is))
            .expect_err("expired deadline must abort");
        assert!(
            matches!(err, QueryError::DeadlineExceeded),
            "{}: wrong abort: {err}",
            alg.name()
        );
        assert_eq!(
            f.pool.stats().logical_reads,
            before.logical_reads,
            "{}: an expired-deadline query must not touch the pool",
            alg.name()
        );
        assert_eq!(f.pool.pinned_frames(), 0, "{}: leaked pins", alg.name());
    }
}

/// `deadline_in` is sugar for `deadline(now + timeout)`: a generous
/// timeout lets the query complete normally.
#[test]
fn generous_deadline_does_not_perturb_the_run() {
    let f = fixture(300, 3, 64);
    chill(&f);
    let plain = request(Algorithm::mba())
        .run(Input::Index(&f.ir), Input::Index(&f.is))
        .unwrap();
    chill(&f);
    let deadlined = request(Algorithm::mba())
        .deadline_in(Duration::from_secs(600))
        .run(Input::Index(&f.ir), Input::Index(&f.is))
        .unwrap();
    assert_eq!(canon(&deadlined), canon(&plain));
}

/// Visit budgets bound the number of node expansions: the abort arrives
/// within one expansion of the limit and carries partial counters whose
/// expansion total is exactly the spent budget.
#[test]
fn visit_budget_aborts_with_accurate_partial_stats() {
    let f = fixture(500, 4, 64);
    for alg in algorithms() {
        chill(&f);
        let full = request(alg)
            .run(Input::Index(&f.ir), Input::Index(&f.is))
            .unwrap();
        let full_visits = full.stats.r_nodes_expanded + full.stats.s_nodes_expanded;
        assert!(
            full_visits > 4,
            "{}: fixture too small to budget",
            alg.name()
        );

        let budget = full_visits / 2;
        chill(&f);
        let err = request(alg)
            .visit_budget(budget)
            .run(Input::Index(&f.ir), Input::Index(&f.is))
            .expect_err("half the expansions cannot finish the join");
        match err {
            QueryError::BudgetExhausted { budget: kind, partial } => {
                assert_eq!(kind, BudgetKind::Visits, "{}", alg.name());
                // The guard charges a tick per expansion (plus a handful of
                // entry/boundary ticks), so the partial expansion count is
                // bounded by the budget and strictly mid-run.
                let spent = partial.r_nodes_expanded + partial.s_nodes_expanded;
                assert!(
                    spent > 0,
                    "{}: partial stats must record the work done",
                    alg.name()
                );
                assert!(
                    spent <= budget,
                    "{}: expansions ({spent}) cannot exceed the budget \
                     ({budget})",
                    alg.name()
                );
                assert!(
                    spent < full_visits,
                    "{}: the abort must strike mid-run",
                    alg.name()
                );
                assert!(
                    partial.io.logical_reads > 0,
                    "{}: partial stats must include the I/O delta",
                    alg.name()
                );
            }
            other => panic!("{}: wrong abort: {other}", alg.name()),
        }
        assert_eq!(f.pool.pinned_frames(), 0, "{}: leaked pins", alg.name());
    }
}

/// I/O budgets bound physical reads; the abort is detected within one
/// expansion of crossing the limit, so the partial I/O delta can overrun
/// by at most the reads of a single expansion.
#[test]
fn io_budget_aborts_once_physical_reads_cross_the_limit() {
    let f = fixture(500, 5, 8); // tiny pool: every run faults pages in
    chill(&f);
    let full = request(Algorithm::mba())
        .run(Input::Index(&f.ir), Input::Index(&f.is))
        .unwrap();
    assert!(full.stats.io.physical_reads > 8, "fixture must thrash");

    let budget = full.stats.io.physical_reads / 2;
    chill(&f);
    let err = request(Algorithm::mba())
        .io_budget(budget)
        .run(Input::Index(&f.ir), Input::Index(&f.is))
        .expect_err("half the physical reads cannot finish the join");
    match err {
        QueryError::BudgetExhausted { budget: kind, partial } => {
            assert_eq!(kind, BudgetKind::Io);
            assert!(
                partial.io.physical_reads > budget,
                "the abort fires only after the limit is crossed"
            );
            assert!(
                partial.io.physical_reads < full.stats.io.physical_reads,
                "the abort must strike mid-run"
            );
        }
        other => panic!("wrong abort: {other}"),
    }
    assert_eq!(f.pool.pinned_frames(), 0);
}

/// The clean-abort contract end-to-end: after a cancelled, budgeted, or
/// deadline-aborted run, a fault-free re-run over the very same indexes
/// and pool is byte-identical to the never-aborted baseline.
#[test]
fn aborted_queries_leave_reruns_byte_identical() {
    let f = fixture(400, 6, 16);
    for alg in algorithms() {
        chill(&f);
        let baseline = request(alg)
            .run(Input::Index(&f.ir), Input::Index(&f.is))
            .unwrap();

        // Abort three different ways, interleaved with verified re-runs.
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let aborts: Vec<AnnRequest> = vec![
            request(alg).cancel_token(cancelled),
            request(alg).deadline(Instant::now() - Duration::from_secs(1)),
            request(alg).visit_budget(2),
        ];
        for req in aborts {
            chill(&f);
            req.run(Input::Index(&f.ir), Input::Index(&f.is))
                .expect_err("the abort must fire");
            assert_eq!(f.pool.pinned_frames(), 0, "{}: leaked pins", alg.name());
            chill(&f);
            let rerun = request(alg)
                .run(Input::Index(&f.ir), Input::Index(&f.is))
                .unwrap();
            assert_eq!(
                canon(&rerun),
                canon(&baseline),
                "{}: re-run after abort diverged",
                alg.name()
            );
        }
    }
}

/// A store failure mid-traversal (budget-exhausted faulty disk) unwinds
/// through every `?` with all pins released — the pool stays usable.
#[test]
fn store_errors_mid_traversal_release_every_pin() {
    let pts = random_points(400, 7);
    // Calibrate the op budget so the device dies mid-query: ops through
    // build + the pre-query clear (which flushes dirty build pages), so
    // only `extra` operations remain for the query itself.
    let setup_ops = {
        let fd = Arc::new(FaultyDisk::unlimited(MemDisk::new()));
        let pool = Arc::new(BufferPool::new(Arc::clone(&fd), 8));
        let _ir = Mbrqt::bulk_build(pool.clone(), &pts, &qt_cfg()).unwrap();
        let _is = RStar::bulk_build(pool.clone(), &pts, &rs_cfg()).unwrap();
        pool.clear().unwrap();
        fd.op_count()
    };
    for extra in [1u64, 5, 17, 49] {
        let fd = Arc::new(FaultyDisk::new(MemDisk::new(), setup_ops + extra));
        let pool = Arc::new(BufferPool::new(Arc::clone(&fd), 8));
        let ir = Mbrqt::bulk_build(pool.clone(), &pts, &qt_cfg()).unwrap();
        let is = RStar::bulk_build(pool.clone(), &pts, &rs_cfg()).unwrap();
        pool.clear().unwrap();
        let err = request(Algorithm::mba())
            .run(Input::Index(&ir), Input::Index(&is))
            .expect_err("the budgeted device must die mid-query");
        assert!(
            matches!(err, QueryError::Io(_)),
            "store failures surface as QueryError::Io, got {err}"
        );
        assert_eq!(
            pool.pinned_frames(),
            0,
            "a mid-traversal store error (+{extra} ops) must release every pin"
        );
    }
}

/// Retry accounting through the parallel fold: transients absorbed during
/// a 2-thread MBA run are counted once each, and the per-query I/O
/// snapshot agrees with the pool's own global counters.
#[test]
fn parallel_fold_accounts_retries_exactly_once() {
    let pts = random_points(600, 8);
    let fd = Arc::new(FaultyDisk::unlimited(MemDisk::new()));
    let pool = Arc::new(BufferPool::new(Arc::clone(&fd), 8));
    let ir = Mbrqt::bulk_build(pool.clone(), &pts, &qt_cfg()).unwrap();
    let is = RStar::bulk_build(pool.clone(), &pts, &rs_cfg()).unwrap();
    pool.clear().unwrap();

    // Schedule a burst of transients inside the query window; the default
    // policy (3 attempts) absorbs each.
    let start = fd.op_count();
    for i in 0..6u64 {
        fd.inject_at(start + 3 + 7 * i, InjectedFault::Transient);
    }
    let before = pool.stats();
    let out = AnnRequest::new(Algorithm::Mba {
        traversal: Default::default(),
        expansion: Default::default(),
        threads: 2,
    })
    .k(2)
    .run(Input::Index(&ir), Input::Index(&is))
    .unwrap();
    let delta = pool.stats().since(&before);
    assert!(delta.retries >= 1, "some scheduled transients must fire");
    assert_eq!(
        out.stats.io.retries, delta.retries,
        "the folded per-query snapshot must count each retry exactly once"
    );
    assert_eq!(
        out.stats.io.logical_reads, delta.logical_reads,
        "fold must not double-count the shared pool"
    );
    assert_eq!(out.results.len(), 600 * 2, "retried run completes in full");
}
