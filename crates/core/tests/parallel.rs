//! Tests for the parallel MBA extension: identical results to the serial
//! algorithm, across thread counts, configurations and index types.


// The per-algorithm entrypoints these tests drive are deprecated thin
// delegates now; exercising them here is the point (they must stay
// identical to the canonical `query::run` path).
#![allow(deprecated)]
use ann_core::brute::brute_force_aknn;
use ann_core::mba::{mba, mba_parallel, MbaConfig};
use ann_geom::{NxnDist, Point};
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_rstar::{RStar, RStarConfig};
use ann_store::{BufferPool, MemDisk};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn pool(frames: usize) -> Arc<BufferPool> {
    Arc::new(BufferPool::new(MemDisk::new(), frames))
}

fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<(u64, Point<D>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                *v = rng.gen_range(0.0..100.0);
            }
            (i as u64, Point::new(c))
        })
        .collect()
}

fn canonical(mut out: ann_core::stats::AnnOutput) -> Vec<(u64, u64)> {
    out.sort();
    out.results
        .into_iter()
        .map(|p| (p.r_oid, p.dist.to_bits()))
        .collect()
}

#[test]
fn parallel_matches_serial_exactly() {
    let r = random_points::<2>(3000, 41);
    let s = random_points::<2>(3200, 42);
    let p = pool(1024);
    let ir = Mbrqt::bulk_build(p.clone(), &r, &MbrqtConfig::default()).unwrap();
    let is = Mbrqt::bulk_build(p, &s, &MbrqtConfig::default()).unwrap();
    let cfg = MbaConfig::default();
    let serial = canonical(mba::<2, NxnDist, _, _>(&ir, &is, &cfg).unwrap());
    for threads in [1usize, 2, 4, 7] {
        let par = canonical(mba_parallel::<2, NxnDist, _, _>(&ir, &is, &cfg, threads).unwrap());
        assert_eq!(par, serial, "threads={threads}");
    }
}

#[test]
fn parallel_matches_brute_force_aknn() {
    let pts = random_points::<3>(1500, 43);
    let p = pool(1024);
    let tree = RStar::bulk_build(p, &pts, &RStarConfig::default()).unwrap();
    let cfg = MbaConfig {
        k: 4,
        exclude_self: true,
        ..Default::default()
    };
    let mut out = mba_parallel::<3, NxnDist, _, _>(&tree, &tree, &cfg, 0).unwrap();
    out.sort();
    let mut truth = brute_force_aknn(&pts, &pts, 4, true);
    truth.sort_by(|a, b| {
        (a.r_oid, a.dist, a.s_oid)
            .partial_cmp(&(b.r_oid, b.dist, b.s_oid))
            .unwrap()
    });
    assert_eq!(out.results.len(), truth.len());
    for (g, t) in out.results.iter().zip(&truth) {
        assert_eq!(g.r_oid, t.r_oid);
        assert!((g.dist - t.dist).abs() < 1e-9);
    }
}

#[test]
fn parallel_on_empty_and_tiny_inputs() {
    let p = pool(64);
    let empty = Mbrqt::<2>::bulk_build(p.clone(), &[], &MbrqtConfig::default()).unwrap();
    let one =
        Mbrqt::bulk_build(p, &[(7, Point::new([1.0, 1.0]))], &MbrqtConfig::default()).unwrap();
    assert!(
        mba_parallel::<2, NxnDist, _, _>(&empty, &one, &MbaConfig::default(), 4)
            .unwrap()
            .results
            .is_empty()
    );
    let out = mba_parallel::<2, NxnDist, _, _>(&one, &one, &MbaConfig::default(), 4).unwrap();
    assert_eq!(out.results.len(), 1);
}

#[test]
fn parallel_work_counters_match_serial() {
    // Same pruning decisions happen in each subtree regardless of which
    // thread runs it, so the aggregate counters are identical.
    let pts = random_points::<2>(4000, 44);
    let p = pool(4096);
    let tree = Mbrqt::bulk_build(p, &pts, &MbrqtConfig::default()).unwrap();
    let cfg = MbaConfig::default();
    let serial = mba::<2, NxnDist, _, _>(&tree, &tree, &cfg).unwrap().stats;
    let par = mba_parallel::<2, NxnDist, _, _>(&tree, &tree, &cfg, 4)
        .unwrap()
        .stats;
    assert_eq!(serial.distance_computations, par.distance_computations);
    assert_eq!(serial.enqueued, par.enqueued);
    assert_eq!(serial.r_nodes_expanded, par.r_nodes_expanded);
    assert_eq!(serial.s_nodes_expanded, par.s_nodes_expanded);
}

#[test]
fn parallel_speedup_on_large_input() {
    // Not a strict benchmark — just assert the parallel path is not
    // pathologically slower than serial on a workload big enough to
    // amortize thread startup.
    if std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        < 2
    {
        return; // single-core runner: nothing to measure
    }
    let pts = ann_datagen::tac_like(40_000, 45);
    let p = pool(16384);
    let tree = Mbrqt::bulk_build(p, &pts, &MbrqtConfig::default()).unwrap();
    let cfg = MbaConfig {
        exclude_self: true,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let serial = mba::<2, NxnDist, _, _>(&tree, &tree, &cfg).unwrap();
    let t_serial = t0.elapsed();
    let t0 = std::time::Instant::now();
    let par = mba_parallel::<2, NxnDist, _, _>(&tree, &tree, &cfg, 0).unwrap();
    let t_par = t0.elapsed();
    assert_eq!(serial.results.len(), par.results.len());
    // Wall-clock assertions are inherently flaky on throttled or
    // oversubscribed CI cores; opt in with ANN_ASSERT_SPEEDUP=1 (scripts/
    // ci.sh does on runners known to have real cores).
    if std::env::var_os("ANN_ASSERT_SPEEDUP").is_some_and(|v| v == "1") {
        assert!(
            t_par < t_serial * 2,
            "parallel run degenerated: {t_par:?} vs serial {t_serial:?}"
        );
    }
    eprintln!("serial {t_serial:?}, parallel {t_par:?}");
}

// ---- the shared morsel engine, via AnnRequest::threads ----

use ann_core::query::{Algorithm, AnnRequest, Input, NoIndex};
use ann_core::{CancelToken, QueryError};

fn triples(mut out: ann_core::stats::AnnOutput) -> Vec<(u64, u64, u64)> {
    out.sort();
    out.results
        .into_iter()
        .map(|p| (p.r_oid, p.s_oid, p.dist.to_bits()))
        .collect()
}

/// Every algorithm must produce byte-identical (canonicalized) output at
/// every thread count, on clustered data that stresses work stealing.
#[test]
fn request_threads_identical_across_algorithms() {
    let r = ann_datagen::tac_like(2500, 46);
    let s = ann_datagen::tac_like(2700, 47);
    let p = pool(1024);
    let ir = Mbrqt::bulk_build(p.clone(), &r, &MbrqtConfig::default()).unwrap();
    let is = Mbrqt::bulk_build(p, &s, &MbrqtConfig::default()).unwrap();
    for algorithm in [
        Algorithm::mba(),
        Algorithm::bnn(),
        Algorithm::Mnn,
        Algorithm::hnn(),
    ] {
        let base = AnnRequest::new(algorithm).k(3);
        let serial = triples(
            base.clone()
                .run(Input::Index(&ir), Input::Index(&is))
                .unwrap(),
        );
        for threads in [0usize, 2, 3, 8] {
            let par = triples(
                base.clone()
                    .threads(threads)
                    .run(Input::Index(&ir), Input::Index(&is))
                    .unwrap(),
            );
            assert_eq!(
                par,
                serial,
                "algorithm={} threads={threads}",
                algorithm.name()
            );
        }
    }
}

/// Work counters are scheduling-invariant sums for every parallel path.
#[test]
fn request_threads_counters_match_serial() {
    let pts = ann_datagen::gaussian_clusters::<2>(3000, 12, 0.02, 48);
    let p = pool(2048);
    let tree = Mbrqt::bulk_build(p, &pts, &MbrqtConfig::default()).unwrap();
    for algorithm in [Algorithm::mba(), Algorithm::bnn(), Algorithm::Mnn] {
        let base = AnnRequest::new(algorithm).k(2).exclude_self(true);
        let serial = base
            .clone()
            .run(Input::Index(&tree), Input::Index(&tree))
            .unwrap()
            .stats;
        let par = base
            .clone()
            .threads(3)
            .run(Input::Index(&tree), Input::Index(&tree))
            .unwrap()
            .stats;
        let name = algorithm.name();
        assert_eq!(
            serial.distance_computations, par.distance_computations,
            "{name}"
        );
        assert_eq!(serial.enqueued, par.enqueued, "{name}");
        assert_eq!(serial.pruned_on_probe, par.pruned_on_probe, "{name}");
        assert_eq!(serial.r_nodes_expanded, par.r_nodes_expanded, "{name}");
        assert_eq!(serial.s_nodes_expanded, par.s_nodes_expanded, "{name}");
    }
}

/// HNN's parallel path accepts plain point inputs (no index anywhere).
#[test]
fn hnn_parallel_over_plain_points() {
    let r = random_points::<2>(1200, 49);
    let s = random_points::<2>(1300, 50);
    let req = AnnRequest::new(Algorithm::hnn()).k(2);
    let serial = triples(
        req.clone()
            .run(
                Input::<2, NoIndex>::Points(&r),
                Input::<2, NoIndex>::Points(&s),
            )
            .unwrap(),
    );
    let par = triples(
        req.threads(4)
            .run(
                Input::<2, NoIndex>::Points(&r),
                Input::<2, NoIndex>::Points(&s),
            )
            .unwrap(),
    );
    assert_eq!(par, serial);
}

/// A pre-cancelled token aborts every worker with the typed error, and no
/// buffer-pool pin survives the abort at any thread count.
#[test]
fn parallel_cancel_aborts_all_workers_and_leaks_no_pins() {
    let pts = random_points::<2>(4000, 51);
    let p = pool(1024);
    let tree = Mbrqt::bulk_build(p.clone(), &pts, &MbrqtConfig::default()).unwrap();
    for algorithm in [
        Algorithm::mba(),
        Algorithm::bnn(),
        Algorithm::Mnn,
        Algorithm::hnn(),
    ] {
        let token = CancelToken::new();
        token.cancel();
        let err = AnnRequest::new(algorithm)
            .threads(4)
            .cancel_token(token)
            .run(Input::Index(&tree), Input::Index(&tree))
            .unwrap_err();
        assert!(
            matches!(err, QueryError::Cancelled),
            "algorithm={} err={err:?}",
            algorithm.name()
        );
        assert_eq!(p.pinned_frames(), 0, "algorithm={}", algorithm.name());
    }
}

/// A tiny visit budget trips mid-join inside the workers; the typed error
/// surfaces, pins are released, and a cold rerun without the budget is
/// identical to serial (aborts leave no residue).
#[test]
fn parallel_budget_abort_then_identical_rerun() {
    let pts = ann_datagen::tac_like(3000, 52);
    let p = pool(1024);
    let tree = Mbrqt::bulk_build(p.clone(), &pts, &MbrqtConfig::default()).unwrap();
    for algorithm in [Algorithm::mba(), Algorithm::bnn(), Algorithm::Mnn] {
        let err = AnnRequest::new(algorithm)
            .threads(3)
            .visit_budget(5)
            .run(Input::Index(&tree), Input::Index(&tree))
            .unwrap_err();
        assert!(
            matches!(err, QueryError::BudgetExhausted { .. }),
            "algorithm={} err={err:?}",
            algorithm.name()
        );
        assert_eq!(p.pinned_frames(), 0);
        let serial = triples(
            AnnRequest::new(algorithm)
                .run(Input::Index(&tree), Input::Index(&tree))
                .unwrap(),
        );
        let rerun = triples(
            AnnRequest::new(algorithm)
                .threads(3)
                .run(Input::Index(&tree), Input::Index(&tree))
                .unwrap(),
        );
        assert_eq!(rerun, serial, "algorithm={}", algorithm.name());
    }
}
