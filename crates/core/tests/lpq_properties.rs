//! Property-based tests of the LPQ / BoundTracker machinery — the pruning
//! data structures the whole MBA algorithm rests on.

use ann_core::lpq::{BoundTracker, Lpq, QueuedEntry};
use ann_core::node::{Entry, NodeEntry, ObjectEntry};
use ann_geom::{Mbr, Point};
use proptest::prelude::*;

fn obj_entry(oid: u64) -> Entry<2> {
    Entry::Object(ObjectEntry {
        oid,
        point: Point::new([0.0, 0.0]),
    })
}

fn owner() -> Entry<2> {
    Entry::Node(NodeEntry {
        page: 0,
        count: 1,
        mbr: Mbr::new([0.0, 0.0], [1.0, 1.0]),
    })
}

/// A queued entry with mind <= maxd, as geometry guarantees.
fn qe(oid: u64, mind: f64, slack: f64) -> QueuedEntry<2> {
    QueuedEntry {
        mind_sq: mind,
        maxd_sq: mind + slack,
        entry: obj_entry(oid),
    }
}

proptest! {
    /// Dequeue order is always ascending MIND, whatever the insert order.
    #[test]
    fn dequeue_is_sorted(
        entries in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..60)
    ) {
        let mut lpq = Lpq::new(owner(), 1, f64::INFINITY);
        for (i, (mind, slack)) in entries.iter().enumerate() {
            lpq.try_enqueue(qe(i as u64, *mind, *slack));
        }
        let mut last = f64::NEG_INFINITY;
        while let Some(e) = lpq.dequeue() {
            prop_assert!(e.mind_sq >= last);
            last = e.mind_sq;
        }
    }

    /// Every entry surviving in the queue respects the bound, and the
    /// bound equals the minimum MAXD that was ever accepted (k = 1,
    /// no inherited bound).
    #[test]
    fn k1_bound_is_min_accepted_maxd(
        entries in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..60)
    ) {
        let mut lpq = Lpq::new(owner(), 1, f64::INFINITY);
        let mut min_accepted: f64 = f64::INFINITY;
        for (i, (mind, slack)) in entries.iter().enumerate() {
            let e = qe(i as u64, *mind, *slack);
            let (accepted, _) = lpq.try_enqueue(e);
            if accepted {
                min_accepted = min_accepted.min(e.maxd_sq);
            }
        }
        prop_assert_eq!(lpq.bound_sq(), min_accepted);
        let bound = lpq.bound_sq() * (1.0 + 1e-12);
        while let Some(e) = lpq.dequeue() {
            prop_assert!(e.mind_sq <= bound);
        }
    }

    /// The Filter stage never drops an entry whose MIND is within the
    /// final bound — i.e. filtering is exactly the tail truncation.
    #[test]
    fn filter_only_drops_beyond_bound(
        entries in proptest::collection::vec((0.0f64..100.0, 0.0f64..20.0), 1..60)
    ) {
        let mut lpq = Lpq::new(owner(), 1, f64::INFINITY);
        let mut accepted: Vec<QueuedEntry<2>> = vec![];
        for (i, (mind, slack)) in entries.iter().enumerate() {
            let e = qe(i as u64, *mind, *slack);
            let (acc, _) = lpq.try_enqueue(e);
            if acc {
                accepted.push(e);
            }
        }
        let bound = lpq.bound_sq() * (1.0 + 1e-12);
        let surviving: Vec<u64> = std::iter::from_fn(|| lpq.dequeue())
            .filter_map(|e| match e.entry {
                Entry::Object(o) => Some(o.oid),
                _ => None,
            })
            .collect();
        // Everything accepted whose mind is within the final bound must
        // still be present.
        for e in &accepted {
            let Entry::Object(o) = e.entry else { unreachable!() };
            if e.mind_sq <= bound {
                prop_assert!(
                    surviving.contains(&o.oid),
                    "entry {} (mind {}) missing though within bound {}",
                    o.oid, e.mind_sq, bound
                );
            }
        }
    }

    /// BoundTracker with k entries: the bound is never below the true
    /// k-th smallest live offer and never above the inherited bound… and
    /// satisfy_one only ever tightens or keeps it.
    #[test]
    fn tracker_bound_is_kth_smallest_live(
        offers in proptest::collection::vec(0.0f64..100.0, 1..40),
        k in 2usize..6,
    ) {
        let mut t = BoundTracker::new(k, f64::INFINITY);
        for &o in &offers {
            t.offer(o);
        }
        let mut sorted = offers.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if offers.len() >= k {
            prop_assert_eq!(t.bound_sq(), sorted[k - 1]);
        } else {
            prop_assert_eq!(t.bound_sq(), f64::INFINITY);
        }
        // Removing the largest live offer can only tighten or keep the
        // k-th smallest of the rest… recompute and compare.
        if offers.len() > k {
            let largest = *sorted.last().unwrap();
            t.remove(largest);
            prop_assert_eq!(t.bound_sq(), sorted[k - 1]);
        }
    }

    /// satisfy_one monotonically tightens the tracker's bound.
    #[test]
    fn satisfy_one_never_loosens(
        offers in proptest::collection::vec(0.0f64..100.0, 4..40),
    ) {
        let mut t = BoundTracker::new(4, f64::INFINITY);
        for &o in &offers {
            t.offer(o);
        }
        let mut prev = t.bound_sq();
        for _ in 0..4 {
            t.satisfy_one();
            let now = t.bound_sq();
            prop_assert!(now <= prev);
            prev = now;
        }
    }

    /// An inherited bound caps the tracker regardless of offers.
    #[test]
    fn inherited_bound_caps(
        offers in proptest::collection::vec(0.0f64..100.0, 0..40),
        inherited in 0.0f64..50.0,
    ) {
        let mut t = BoundTracker::new(1, inherited);
        for &o in &offers {
            t.offer(o);
        }
        prop_assert!(t.bound_sq() <= inherited);
    }
}
