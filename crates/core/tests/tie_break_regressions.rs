//! Shrunk reproducers from the differential checker (`crates/checker`),
//! checked in as permanent regressions. Each test pins one historical
//! bug class:
//!
//! 1. tie-break nondeterminism — equal-distance neighbors must resolve
//!    to the smallest `s_oid`, in every algorithm, even when candidates
//!    arrive through different heap/queue orders;
//! 2. `exclude_self` with duplicate points — `k_eff = k + 1` must make
//!    room for the excluded self so a coincident *other* point (distance
//!    zero, different oid) still surfaces;
//! 3. degenerate cardinalities — `k = 0`, empty `R` or `S`, `|S| = 1`
//!    self-joins, and `k > |S|` return fewer-than-`k` results uniformly,
//!    never panic;
//! 4. byte-exactness at cancellation-prone offsets — large translated
//!    lattices keep distances bit-identical to brute force.

use ann_core::brute::brute_force_aknn;
use ann_core::mba::{Expansion, Traversal};
use ann_core::prelude::*;
use ann_geom::Point;
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_rstar::{RStar, RStarConfig};
use ann_store::{BufferPool, MemDisk};
use std::sync::Arc;

fn qt_cfg() -> MbrqtConfig {
    MbrqtConfig {
        bucket_capacity: 8,
        ..Default::default()
    }
}

fn rs_cfg() -> RStarConfig {
    RStarConfig {
        max_leaf_entries: 8,
        max_internal_entries: 4,
        ..Default::default()
    }
}

fn variants() -> Vec<Algorithm> {
    vec![
        Algorithm::mba(),
        Algorithm::Mba {
            traversal: Traversal::BreadthFirst,
            expansion: Expansion::Unidirectional,
            threads: 1,
        },
        Algorithm::Mba {
            traversal: Traversal::default(),
            expansion: Expansion::default(),
            threads: 2,
        },
        Algorithm::Bnn { group_size: 1 },
        Algorithm::Bnn { group_size: 64 },
        Algorithm::Mnn,
        Algorithm::Hnn {
            avg_cell_occupancy: 1.0,
        },
    ]
}

/// Runs every variant × metric and asserts byte-exact agreement with
/// canonically sorted brute force.
fn check<const D: usize>(
    r: &[(u64, Point<D>)],
    s: &[(u64, Point<D>)],
    k: usize,
    exclude_self: bool,
    label: &str,
) {
    let mut want = brute_force_aknn(r, s, k, exclude_self);
    want.sort_by(|a, b| {
        (a.r_oid, a.dist, a.s_oid)
            .partial_cmp(&(b.r_oid, b.dist, b.s_oid))
            .unwrap()
    });
    let pool = Arc::new(BufferPool::new(MemDisk::new(), 128));
    let ir = Mbrqt::bulk_build(pool.clone(), r, &qt_cfg()).unwrap();
    let is = RStar::bulk_build(pool, s, &rs_cfg()).unwrap();
    for alg in variants() {
        for metric in [MetricChoice::Nxn, MetricChoice::MaxMax] {
            let tag = format!("{label}: {} {:?}", alg.name(), metric);
            let mut got = AnnRequest::new(alg)
                .k(k)
                .exclude_self(exclude_self)
                .metric(metric)
                .run(Input::Index(&ir), Input::Index(&is))
                .unwrap();
            got.sort();
            assert_eq!(got.results.len(), want.len(), "{tag}: count");
            for (g, w) in got.results.iter().zip(&want) {
                assert_eq!(
                    (g.r_oid, g.s_oid, g.dist.to_bits()),
                    (w.r_oid, w.s_oid, w.dist.to_bits()),
                    "{tag}"
                );
            }
        }
    }
    // Index-free paths share the contract.
    let mut got = AnnRequest::new(Algorithm::Hnn {
        avg_cell_occupancy: 1.0,
    })
    .k(k)
    .exclude_self(exclude_self)
    .run(Input::<D, NoIndex>::Points(r), Input::<D, NoIndex>::Points(s))
    .unwrap();
    got.sort();
    assert_eq!(got.results.len(), want.len(), "{label}: hnn points count");
    for (g, w) in got.results.iter().zip(&want) {
        assert_eq!(
            (g.r_oid, g.s_oid, g.dist.to_bits()),
            (w.r_oid, w.s_oid, w.dist.to_bits()),
            "{label}: hnn points"
        );
    }
}

fn pts<const D: usize>(coords: &[[f64; D]], stride: u64) -> Vec<(u64, Point<D>)> {
    coords
        .iter()
        .enumerate()
        .map(|(i, c)| (i as u64 * stride, Point::new(*c)))
        .collect()
}

/// Bug class 1: four corners of a unit square querying its center — every
/// S point ties; each algorithm must pick the smallest `s_oid`, and with
/// `k = 2` the two smallest.
#[test]
fn equal_distance_ties_resolve_to_smallest_oid() {
    let r = pts::<2>(&[[1.0, 1.0]], 1);
    // Non-unit stride decouples oid order from insertion order.
    let s = pts::<2>(&[[0.0, 0.0], [2.0, 0.0], [0.0, 2.0], [2.0, 2.0]], 3);
    for k in [1, 2, 3] {
        check(&r, &s, k, false, "tied corners");
    }
}

/// Bug class 1 (heap-order variant): duplicated grid points mean ties at
/// distance zero *and* at positive distances simultaneously.
#[test]
fn duplicate_grid_points_stay_canonical() {
    let coords: Vec<[f64; 2]> = vec![
        [0.0, 0.0],
        [0.0, 0.0],
        [1.0, 0.0],
        [1.0, 0.0],
        [0.0, 1.0],
        [2.0, 2.0],
        [2.0, 2.0],
        [2.0, 2.0],
    ];
    let p = pts::<2>(&coords, 1);
    for k in [1, 2, 4] {
        check(&p, &p, k, false, "duplicate grid");
    }
}

/// Bug class 2: self-join over duplicated points with `exclude_self`.
/// Each point's nearest neighbor is its coincident twin (distance 0,
/// different oid) — dropping the self match must not consume the k-slot.
#[test]
fn exclude_self_with_coincident_duplicates() {
    let coords: Vec<[f64; 2]> = vec![
        [3.0, 3.0],
        [3.0, 3.0],
        [3.0, 3.0],
        [5.0, 3.0],
        [5.0, 3.0],
    ];
    let p = pts::<2>(&coords, 1);
    for k in [1, 2, 4] {
        check(&p, &p, k, true, "exclude_self duplicates");
    }
}

/// Bug class 3: the degenerate request matrix — `k = 0`, empty sides,
/// `k > |S|`, and the `|S| = 1` exclude_self self-join (zero neighbors
/// available) must all return uniformly, never panic.
#[test]
fn degenerate_cardinalities_never_panic() {
    let one = pts::<2>(&[[1.0, 2.0]], 1);
    let some = pts::<2>(&[[0.0, 0.0], [4.0, 1.0], [2.0, 7.0]], 1);
    let empty: Vec<(u64, Point<2>)> = Vec::new();

    check(&some, &some, 0, false, "k=0");
    check(&empty, &some, 2, false, "empty R");
    check(&some, &empty, 2, false, "empty S");
    check(&empty, &empty, 2, false, "both empty");
    check(&some, &one, 5, false, "k > |S|");
    check(&one, &one, 1, true, "|S|=1 exclude_self");
    check(&some, &some, 7, true, "k > |S|-1 exclude_self");
}

/// Bug class 4: a lattice translated by 1e8 — subtraction-based metric
/// shortcuts would lose the low bits; results must stay byte-identical
/// to brute force.
#[test]
fn large_offset_lattice_stays_byte_exact() {
    const OFF: f64 = 1.0e8;
    let coords: Vec<[f64; 2]> = (0..5)
        .flat_map(|x| (0..3).map(move |y| [OFF + x as f64, OFF + y as f64]))
        .collect();
    let p = pts::<2>(&coords, 3);
    for k in [1, 3] {
        check(&p, &p, k, false, "offset lattice");
        check(&p, &p, k, true, "offset lattice exclude_self");
    }
}

/// 1-D is the degenerate dimensionality where every MBR is an interval
/// and ties are maximal; 8-D exercises the face-dominant branch of the
/// metrics. Same canonical contract in both.
#[test]
fn extreme_dimensionalities_stay_canonical() {
    let r1 = pts::<1>(&[[0.0], [2.0], [2.0], [4.0]], 1);
    for k in [1, 2] {
        check(&r1, &r1, k, false, "1-D line");
        check(&r1, &r1, k, true, "1-D line exclude_self");
    }
    let coords8: Vec<[f64; 8]> = vec![
        [0.0; 8],
        [0.0; 8],
        [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        [0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        [1.0; 8],
    ];
    let r8 = pts::<8>(&coords8, 1);
    for k in [1, 3] {
        check(&r8, &r8, k, false, "8-D ties");
    }
}
