//! Property-based round-trip tests of the shared node codec, including
//! nodes that chain across continuation pages.

use ann_core::node::{read_node, write_node, Entry, Node, NodeEntry, ObjectEntry};
use ann_geom::{Mbr, Point};
use ann_store::{BufferPool, MemDisk};
use proptest::prelude::*;
use std::sync::Arc;

fn leaf_strategy() -> impl Strategy<Value = Node<3>> {
    proptest::collection::vec(
        (any::<u64>(), proptest::array::uniform3(-1e6f64..1e6)),
        0..900, // up to ~3 pages of 3-D leaf entries
    )
    .prop_map(|objs| {
        let mut node = Node::empty_leaf();
        node.entries = objs
            .into_iter()
            .map(|(oid, c)| {
                Entry::Object(ObjectEntry {
                    oid,
                    point: Point::new(c),
                })
            })
            .collect();
        node.recompute_mbr();
        node
    })
}

fn internal_strategy() -> impl Strategy<Value = Node<3>> {
    proptest::collection::vec(
        (
            0u32..1_000_000,
            any::<u64>(),
            proptest::array::uniform3(-1e6f64..1e6),
            proptest::array::uniform3(0.0f64..1e3),
        ),
        1..400,
    )
    .prop_map(|children| {
        let mut node = Node {
            is_leaf: false,
            aux: 0,
            mbr: Mbr::empty(),
            entries: children
                .into_iter()
                .map(|(page, count, lo, ext)| {
                    let mut hi = lo;
                    for d in 0..3 {
                        hi[d] += ext[d];
                    }
                    Entry::Node(NodeEntry {
                        page,
                        count,
                        mbr: Mbr::new(lo, hi),
                    })
                })
                .collect(),
        };
        node.recompute_mbr();
        node
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn leaf_round_trips(mut node in leaf_strategy(), aux in any::<u8>()) {
        node.aux = aux;
        let pool = Arc::new(BufferPool::new(MemDisk::new(), 32));
        let page = pool.allocate().unwrap();
        write_node(&pool, page, &node).unwrap();
        let back = read_node::<3>(&pool, page).unwrap();
        prop_assert_eq!(back, node);
    }

    #[test]
    fn internal_round_trips(mut node in internal_strategy(), aux in any::<u8>()) {
        node.aux = aux;
        let pool = Arc::new(BufferPool::new(MemDisk::new(), 32));
        let page = pool.allocate().unwrap();
        write_node(&pool, page, &node).unwrap();
        let back = read_node::<3>(&pool, page).unwrap();
        prop_assert_eq!(back, node);
    }

    /// Rewriting a page with a sequence of different nodes always reads
    /// back the last one (chains are reused safely).
    #[test]
    fn sequential_rewrites_read_back_latest(
        sizes in proptest::collection::vec(0usize..900, 1..6)
    ) {
        let pool = Arc::new(BufferPool::new(MemDisk::new(), 32));
        let page = pool.allocate().unwrap();
        for (round, size) in sizes.iter().enumerate() {
            let mut node = Node::<3>::empty_leaf();
            node.entries = (0..*size as u64)
                .map(|i| {
                    Entry::Object(ObjectEntry {
                        oid: i * 1000 + round as u64,
                        point: Point::new([i as f64, round as f64, 0.0]),
                    })
                })
                .collect();
            node.recompute_mbr();
            write_node(&pool, page, &node).unwrap();
            let back = read_node::<3>(&pool, page).unwrap();
            prop_assert_eq!(back, node);
        }
    }
}
