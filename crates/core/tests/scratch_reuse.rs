//! The [`QueryScratch`] zero-steady-state-allocation contract: after a
//! warm-up query, repeated identical queries through the same scratch
//! must not grow any pooled buffer. The scratch's
//! [`footprint_bytes`](QueryScratch::footprint_bytes) sums the *parked*
//! capacity of every pool, and pooled capacities never shrink — so a
//! byte-stable footprint across 100 queries proves the pooled paths
//! performed no reallocation after warm-up.
//!
//! Also asserts that the scratch-threaded entrypoints return exactly what
//! the transient-scratch entrypoints return: pooling is invisible.


// The per-algorithm entrypoints these tests drive are deprecated thin
// delegates now; exercising them here is the point (they must stay
// identical to the canonical `query::run` path).
#![allow(deprecated)]
use ann_core::bnn::{bnn, bnn_traced_scratch, BnnConfig};
use ann_core::hnn::{hnn, hnn_traced_scratch, HnnConfig};
use ann_core::knn::{knn, knn_scratch};
use ann_core::mba::{mba, mba_scratch, MbaConfig};
use ann_core::mnn::{mnn, mnn_traced_scratch, MnnConfig};
use ann_core::prelude::*;
use ann_core::trace::Tracer;
use ann_core::QueryScratch;
use ann_geom::{NxnDist, Point};
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_store::{BufferPool, MemDisk};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<(u64, Point<D>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                *v = rng.gen_range(0.0..100.0);
            }
            (i as u64, Point::new(c))
        })
        .collect()
}

fn build_tree(pts: &[(u64, Point<2>)]) -> Mbrqt<2> {
    let pool = Arc::new(BufferPool::new(MemDisk::new(), 256));
    let cfg = MbrqtConfig {
        bucket_capacity: 16,
        ..Default::default()
    };
    Mbrqt::bulk_build(pool, pts, &cfg).unwrap()
}

/// Warms one scratch until its parked footprint reaches the high-water
/// mark (the LIFO pools may rotate buffers through differently-sized
/// roles for a few rounds, growing capacities toward the orbit maximum),
/// then asserts 100 further queries are allocation-free: byte-identical
/// footprint and parked-buffer count on every one.
fn assert_steady_state<F: FnMut(&mut QueryScratch<2>)>(label: &str, mut query: F) {
    let mut scratch = QueryScratch::new();
    query(&mut scratch);
    assert!(
        scratch.footprint_bytes() > 0,
        "{label}: warm-up should park buffers"
    );
    let mut warm = scratch.footprint_bytes();
    let mut converged = false;
    // Convergence is guaranteed within #buffers rounds (capacities are
    // monotone and the take/put pattern repeats); 200 is a safe cap.
    for _ in 0..200 {
        query(&mut scratch);
        if scratch.footprint_bytes() == warm {
            converged = true;
            break;
        }
        warm = scratch.footprint_bytes();
    }
    assert!(converged, "{label}: footprint never reached a fixed point");
    let parked = scratch.parked();
    for i in 0..100 {
        query(&mut scratch);
        assert_eq!(
            scratch.footprint_bytes(),
            warm,
            "{label}: query {i} grew the scratch footprint"
        );
        assert_eq!(
            scratch.parked(),
            parked,
            "{label}: query {i} leaked or duplicated a pooled buffer"
        );
    }
}

#[test]
fn mba_steady_state_reallocates_nothing() {
    let r = random_points::<2>(600, 1);
    let s = random_points::<2>(700, 2);
    let ir = build_tree(&r);
    let is = build_tree(&s);
    let cfg = MbaConfig {
        k: 3,
        ..Default::default()
    };
    let want = mba::<2, NxnDist, _, _>(&ir, &is, &cfg).unwrap();
    assert_steady_state("mba", |scratch| {
        let got = mba_scratch::<2, NxnDist, _, _>(&ir, &is, &cfg, scratch).unwrap();
        assert_eq!(got.results, want.results);
        assert_eq!(got.stats.distance_computations, want.stats.distance_computations);
        assert_eq!(got.stats.enqueued, want.stats.enqueued);
    });
}

#[test]
fn mnn_steady_state_reallocates_nothing() {
    let r = random_points::<2>(300, 3);
    let s = random_points::<2>(400, 4);
    let ir = build_tree(&r);
    let is = build_tree(&s);
    let cfg = MnnConfig {
        k: 2,
        ..Default::default()
    };
    let want = mnn::<2, NxnDist, _, _>(&ir, &is, &cfg).unwrap();
    assert_steady_state("mnn", |scratch| {
        let got =
            mnn_traced_scratch::<2, NxnDist, _, _>(&ir, &is, &cfg, Tracer::disabled(), scratch)
                .unwrap();
        assert_eq!(got.results, want.results);
        assert_eq!(got.stats.distance_computations, want.stats.distance_computations);
    });
}

#[test]
fn bnn_steady_state_reallocates_nothing() {
    let r = random_points::<2>(500, 5);
    let s = random_points::<2>(500, 6);
    let is = build_tree(&s);
    let cfg = BnnConfig {
        k: 2,
        group_size: 64,
        ..Default::default()
    };
    let want = bnn::<2, NxnDist, _>(&r, &is, &cfg).unwrap();
    assert_steady_state("bnn", |scratch| {
        let got =
            bnn_traced_scratch::<2, NxnDist, _>(&r, &is, &cfg, Tracer::disabled(), scratch)
                .unwrap();
        assert_eq!(got.results, want.results);
        assert_eq!(got.stats.distance_computations, want.stats.distance_computations);
    });
}

#[test]
fn hnn_steady_state_reallocates_nothing() {
    let r = random_points::<2>(400, 7);
    let s = random_points::<2>(400, 8);
    let cfg = HnnConfig {
        k: 2,
        ..Default::default()
    };
    let want = hnn(&r, &s, &cfg).unwrap();
    assert_steady_state("hnn", |scratch| {
        let got = hnn_traced_scratch(&r, &s, &cfg, Tracer::disabled(), scratch).unwrap();
        assert_eq!(got.results, want.results);
        assert_eq!(got.stats.distance_computations, want.stats.distance_computations);
    });
}

#[test]
fn knn_steady_state_reallocates_nothing() {
    let s = random_points::<2>(800, 9);
    let is = build_tree(&s);
    let queries = random_points::<2>(50, 10);
    let want: Vec<_> = queries
        .iter()
        .map(|(_, q)| knn::<2, NxnDist, _>(&is, q, 5).unwrap())
        .collect();
    assert_steady_state("knn", |scratch| {
        for ((_, q), w) in queries.iter().zip(&want) {
            let got = knn_scratch::<2, NxnDist, _>(&is, q, 5, scratch).unwrap();
            assert_eq!(&got, w);
        }
    });
}
