//! End-to-end correctness of every ANN algorithm against brute force,
//! on both index structures, with both pruning metrics, across k values
//! and traversal variants.


// The per-algorithm entrypoints these tests drive are deprecated thin
// delegates now; exercising them here is the point (they must stay
// identical to the canonical `query::run` path).
#![allow(deprecated)]
use ann_core::bnn::{bnn, BnnConfig};
use ann_core::brute::brute_force_aknn;
use ann_core::index::SpatialIndex;
use ann_core::mba::{mba, Expansion, MbaConfig, Traversal};
use ann_core::mnn::{mnn, MnnConfig};
use ann_core::stats::{AnnOutput, NeighborPair};
use ann_geom::{MaxMaxDist, NxnDist, Point};
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_rstar::{RStar, RStarConfig};
use ann_store::{BufferPool, MemDisk};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn pool(frames: usize) -> Arc<BufferPool> {
    Arc::new(BufferPool::new(MemDisk::new(), frames))
}

fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<(u64, Point<D>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                *v = rng.gen_range(0.0..100.0);
            }
            (i as u64, Point::new(c))
        })
        .collect()
}

/// Small node capacities force multi-level trees even at test scale.
fn mbrqt_cfg() -> MbrqtConfig {
    MbrqtConfig {
        bucket_capacity: 16,
        ..Default::default()
    }
}

fn rstar_cfg() -> RStarConfig {
    RStarConfig {
        max_leaf_entries: 16,
        max_internal_entries: 8,
        ..Default::default()
    }
}

/// Verifies `got` equals brute-force ground truth. Neighbor *ids* may
/// legitimately differ on exact distance ties, so the comparison is on
/// `(r_oid, rank, dist)`.
fn assert_matches_truth(mut got: AnnOutput, truth: &[NeighborPair], label: &str) {
    got.sort();
    assert_eq!(got.results.len(), truth.len(), "{label}: result count");
    for (g, t) in got.results.iter().zip(truth) {
        assert_eq!(g.r_oid, t.r_oid, "{label}: query order");
        assert!(
            (g.dist - t.dist).abs() <= 1e-9 * (1.0 + t.dist),
            "{label}: r#{} got dist {} want {}",
            g.r_oid,
            g.dist,
            t.dist
        );
    }
}

fn truth_sorted<const D: usize>(
    r: &[(u64, Point<D>)],
    s: &[(u64, Point<D>)],
    k: usize,
    exclude_self: bool,
) -> Vec<NeighborPair> {
    let mut t = brute_force_aknn(r, s, k, exclude_self);
    t.sort_by(|a, b| {
        (a.r_oid, a.dist, a.s_oid)
            .partial_cmp(&(b.r_oid, b.dist, b.s_oid))
            .unwrap()
    });
    t
}

#[test]
fn mba_on_mbrqt_matches_brute_force_2d() {
    let r = random_points::<2>(800, 101);
    let s = random_points::<2>(900, 202);
    let truth = truth_sorted(&r, &s, 1, false);
    let pool = pool(256);
    let ir = Mbrqt::bulk_build(pool.clone(), &r, &mbrqt_cfg()).unwrap();
    let is = Mbrqt::bulk_build(pool, &s, &mbrqt_cfg()).unwrap();
    for cfg in [
        MbaConfig::default(),
        MbaConfig {
            traversal: Traversal::BreadthFirst,
            ..Default::default()
        },
        MbaConfig {
            expansion: Expansion::Unidirectional,
            ..Default::default()
        },
        MbaConfig {
            traversal: Traversal::BreadthFirst,
            expansion: Expansion::Unidirectional,
            ..Default::default()
        },
    ] {
        let out = mba::<2, NxnDist, _, _>(&ir, &is, &cfg).unwrap();
        assert_matches_truth(out, &truth, &format!("MBA {cfg:?}"));
        let out = mba::<2, MaxMaxDist, _, _>(&ir, &is, &cfg).unwrap();
        assert_matches_truth(out, &truth, &format!("MBA maxmax {cfg:?}"));
    }
}

#[test]
fn rba_on_rstar_matches_brute_force_2d() {
    let r = random_points::<2>(700, 303);
    let s = random_points::<2>(750, 404);
    let truth = truth_sorted(&r, &s, 1, false);
    let pool = pool(256);
    let ir = RStar::bulk_build(pool.clone(), &r, &rstar_cfg()).unwrap();
    let is = RStar::bulk_build(pool, &s, &rstar_cfg()).unwrap();
    let out = mba::<2, NxnDist, _, _>(&ir, &is, &MbaConfig::default()).unwrap();
    assert_matches_truth(out, &truth, "RBA NXNDIST");
    let out = mba::<2, MaxMaxDist, _, _>(&ir, &is, &MbaConfig::default()).unwrap();
    assert_matches_truth(out, &truth, "RBA MAXMAXDIST");
}

#[test]
fn mixed_index_kinds_work_together() {
    // I_R a quadtree, I_S an R*-tree — the traversal is index-agnostic.
    let r = random_points::<2>(400, 505);
    let s = random_points::<2>(450, 606);
    let truth = truth_sorted(&r, &s, 1, false);
    let pool = pool(256);
    let ir = Mbrqt::bulk_build(pool.clone(), &r, &mbrqt_cfg()).unwrap();
    let is = RStar::bulk_build(pool, &s, &rstar_cfg()).unwrap();
    let out = mba::<2, NxnDist, _, _>(&ir, &is, &MbaConfig::default()).unwrap();
    assert_matches_truth(out, &truth, "mixed indices");
}

#[test]
fn aknn_matches_brute_force_for_k_up_to_10() {
    let r = random_points::<2>(300, 707);
    let s = random_points::<2>(320, 808);
    let pool = pool(256);
    let ir = Mbrqt::bulk_build(pool.clone(), &r, &mbrqt_cfg()).unwrap();
    let is = Mbrqt::bulk_build(pool, &s, &mbrqt_cfg()).unwrap();
    for k in [1, 2, 3, 5, 10] {
        let truth = truth_sorted(&r, &s, k, false);
        let cfg = MbaConfig {
            k,
            ..Default::default()
        };
        let out = mba::<2, NxnDist, _, _>(&ir, &is, &cfg).unwrap();
        assert_matches_truth(out, &truth, &format!("AkNN k={k}"));
    }
}

#[test]
fn self_join_with_exclusion() {
    let pts = random_points::<2>(500, 909);
    let truth = truth_sorted(&pts, &pts, 3, true);
    let pool = pool(256);
    let tree = Mbrqt::bulk_build(pool, &pts, &mbrqt_cfg()).unwrap();
    let cfg = MbaConfig {
        k: 3,
        exclude_self: true,
        ..Default::default()
    };
    let out = mba::<2, NxnDist, _, _>(&tree, &tree, &cfg).unwrap();
    assert_matches_truth(out, &truth, "self-join k=3");
}

#[test]
fn higher_dimensions_4d_and_6d() {
    let r4 = random_points::<4>(400, 111);
    let s4 = random_points::<4>(420, 222);
    let truth = truth_sorted(&r4, &s4, 1, false);
    let p = pool(256);
    let ir = Mbrqt::bulk_build(p.clone(), &r4, &mbrqt_cfg()).unwrap();
    let is = Mbrqt::bulk_build(p, &s4, &mbrqt_cfg()).unwrap();
    let out = mba::<4, NxnDist, _, _>(&ir, &is, &MbaConfig::default()).unwrap();
    assert_matches_truth(out, &truth, "4D");

    let r6 = random_points::<6>(300, 333);
    let s6 = random_points::<6>(310, 444);
    let truth = truth_sorted(&r6, &s6, 1, false);
    let p = pool(256);
    let ir = RStar::bulk_build(p.clone(), &r6, &rstar_cfg()).unwrap();
    let is = RStar::bulk_build(p, &s6, &rstar_cfg()).unwrap();
    let out = mba::<6, NxnDist, _, _>(&ir, &is, &MbaConfig::default()).unwrap();
    assert_matches_truth(out, &truth, "6D");
}

#[test]
fn bnn_matches_brute_force() {
    let r = random_points::<2>(600, 555);
    let s = random_points::<2>(650, 666);
    let pool = pool(256);
    let is = RStar::bulk_build(pool, &s, &rstar_cfg()).unwrap();
    for k in [1, 4] {
        let truth = truth_sorted(&r, &s, k, false);
        let cfg = BnnConfig {
            k,
            group_size: 64,
            exclude_self: false,
        };
        let out = bnn::<2, NxnDist, _>(&r, &is, &cfg).unwrap();
        assert_matches_truth(out, &truth, &format!("BNN nxn k={k}"));
        let out = bnn::<2, MaxMaxDist, _>(&r, &is, &cfg).unwrap();
        assert_matches_truth(out, &truth, &format!("BNN maxmax k={k}"));
    }
}

#[test]
fn bnn_group_size_is_just_performance() {
    let r = random_points::<2>(300, 777);
    let s = random_points::<2>(310, 888);
    let pool = pool(256);
    let is = RStar::bulk_build(pool, &s, &rstar_cfg()).unwrap();
    let truth = truth_sorted(&r, &s, 1, false);
    for group_size in [1, 7, 64, 1000] {
        let cfg = BnnConfig {
            k: 1,
            group_size,
            exclude_self: false,
        };
        let out = bnn::<2, NxnDist, _>(&r, &is, &cfg).unwrap();
        assert_matches_truth(out, &truth, &format!("BNN group={group_size}"));
    }
}

#[test]
fn mnn_matches_brute_force() {
    let r = random_points::<2>(400, 121);
    let s = random_points::<2>(410, 232);
    let pool = pool(256);
    let ir = Mbrqt::bulk_build(pool.clone(), &r, &mbrqt_cfg()).unwrap();
    let is = RStar::bulk_build(pool, &s, &rstar_cfg()).unwrap();
    for k in [1, 5] {
        let truth = truth_sorted(&r, &s, k, false);
        let cfg = MnnConfig {
            k,
            exclude_self: false,
        };
        let out = mnn::<2, NxnDist, _, _>(&ir, &is, &cfg).unwrap();
        assert_matches_truth(out, &truth, &format!("MNN k={k}"));
    }
}

#[test]
fn nxndist_prunes_more_than_maxmaxdist() {
    // The paper's central claim, in counter form: the NXNDIST bound is
    // never looser than MAXMAXDIST, so with everything else fixed it
    // retains strictly fewer queue entries and never does more work.
    // (EXPERIMENTS.md quantifies how far the measured gap is from the
    // paper's reported factors and why.)
    let r = ann_datagen::gaussian_clusters::<2>(4000, 30, 0.02, 1);
    let s = ann_datagen::gaussian_clusters::<2>(4000, 30, 0.02, 2);
    let pool = pool(1024);
    let cfg = MbrqtConfig {
        bucket_capacity: 32, // deeper tree: more internal levels to prune
        ..Default::default()
    };
    let ir = Mbrqt::bulk_build(pool.clone(), &r, &cfg).unwrap();
    let is = Mbrqt::bulk_build(pool, &s, &cfg).unwrap();
    let nxn = mba::<2, NxnDist, _, _>(&ir, &is, &MbaConfig::default()).unwrap();
    let mm = mba::<2, MaxMaxDist, _, _>(&ir, &is, &MbaConfig::default()).unwrap();
    assert!(
        nxn.stats.enqueued < mm.stats.enqueued,
        "NXNDIST must retain fewer entries: {} vs {}",
        nxn.stats.enqueued,
        mm.stats.enqueued
    );
    assert!(
        nxn.stats.distance_computations <= mm.stats.distance_computations,
        "NXNDIST must not do more distance work: {} vs {}",
        nxn.stats.distance_computations,
        mm.stats.distance_computations
    );
    // Note: the *count of pruning events* is not comparable — with the
    // tighter metric fewer entries ever reach a probe in the first place.
}

#[test]
fn empty_inputs_produce_empty_results() {
    let pts = random_points::<2>(100, 343);
    let p = pool(64);
    let empty = Mbrqt::<2>::bulk_build(p.clone(), &[], &mbrqt_cfg()).unwrap();
    let full = Mbrqt::bulk_build(p, &pts, &mbrqt_cfg()).unwrap();
    assert!(
        mba::<2, NxnDist, _, _>(&empty, &full, &MbaConfig::default())
            .unwrap()
            .results
            .is_empty()
    );
    assert!(
        mba::<2, NxnDist, _, _>(&full, &empty, &MbaConfig::default())
            .unwrap()
            .results
            .is_empty()
    );
}

#[test]
fn k_exceeding_target_cardinality_returns_all() {
    let r = random_points::<2>(50, 454);
    let s = random_points::<2>(5, 565);
    let p = pool(64);
    let ir = Mbrqt::bulk_build(p.clone(), &r, &mbrqt_cfg()).unwrap();
    let is = Mbrqt::bulk_build(p, &s, &mbrqt_cfg()).unwrap();
    let cfg = MbaConfig {
        k: 20,
        ..Default::default()
    };
    let out = mba::<2, NxnDist, _, _>(&ir, &is, &cfg).unwrap();
    // Each query finds all 5 targets.
    assert_eq!(out.results.len(), 50 * 5);
    let truth = truth_sorted(&r, &s, 20, false);
    assert_matches_truth(out, &truth, "k > |S|");
}

#[test]
fn identical_coincident_points() {
    // Many duplicates: distances of zero everywhere must not break
    // ordering or pruning.
    let mut pts: Vec<(u64, Point<2>)> = (0..100).map(|i| (i, Point::new([5.0, 5.0]))).collect();
    pts.extend((100..200).map(|i| (i, Point::new([7.0, 7.0]))));
    let truth = truth_sorted(&pts, &pts, 1, false);
    let p = pool(64);
    let t = Mbrqt::bulk_build(p, &pts, &mbrqt_cfg()).unwrap();
    let out = mba::<2, NxnDist, _, _>(&t, &t, &MbaConfig::default()).unwrap();
    assert_matches_truth(out, &truth, "coincident");
}

#[test]
fn tiny_buffer_pool_does_not_affect_results() {
    let r = random_points::<2>(500, 676);
    let s = random_points::<2>(500, 787);
    let truth = truth_sorted(&r, &s, 1, false);
    let p = pool(8); // pathologically small
    let ir = Mbrqt::bulk_build(p.clone(), &r, &mbrqt_cfg()).unwrap();
    let is = Mbrqt::bulk_build(p.clone(), &s, &mbrqt_cfg()).unwrap();
    let out = mba::<2, NxnDist, _, _>(&ir, &is, &MbaConfig::default()).unwrap();
    assert!(out.stats.io.physical_reads > 0, "must thrash");
    assert_matches_truth(out, &truth, "tiny pool");
}

#[test]
fn stats_are_populated() {
    let r = random_points::<2>(300, 898);
    let s = random_points::<2>(300, 989);
    let p = pool(32);
    let ir = Mbrqt::bulk_build(p.clone(), &r, &mbrqt_cfg()).unwrap();
    let is = Mbrqt::bulk_build(p, &s, &mbrqt_cfg()).unwrap();
    let out = mba::<2, NxnDist, _, _>(&ir, &is, &MbaConfig::default()).unwrap();
    let st = out.stats;
    assert!(st.distance_computations > 0);
    assert!(st.lpqs_created > 1);
    assert!(st.enqueued > 0);
    assert!(st.r_nodes_expanded > 0);
    assert!(st.s_nodes_expanded > 0);
    assert!(st.io.logical_reads > 0);
}

#[test]
fn plain_quadrant_ablation_correct_with_maxmaxdist() {
    // The no-subtree-MBR quadtree is only sound with MAXMAXDIST (see the
    // ann-mbrqt crate docs); verify it still produces exact results then.
    let r = random_points::<2>(400, 135);
    let s = random_points::<2>(400, 246);
    let truth = truth_sorted(&r, &s, 1, false);
    let cfg = MbrqtConfig {
        bucket_capacity: 16,
        use_subtree_mbrs: false,
        ..Default::default()
    };
    let p = pool(256);
    let ir = Mbrqt::bulk_build(p.clone(), &r, &cfg).unwrap();
    let is = Mbrqt::bulk_build(p, &s, &cfg).unwrap();
    let out = mba::<2, MaxMaxDist, _, _>(&ir, &is, &MbaConfig::default()).unwrap();
    assert_matches_truth(out, &truth, "quadrant ablation");
}

#[test]
fn results_identical_across_index_structures() {
    let r = random_points::<3>(350, 357);
    let s = random_points::<3>(360, 468);
    let p = pool(512);
    let qt_r = Mbrqt::bulk_build(p.clone(), &r, &mbrqt_cfg()).unwrap();
    let qt_s = Mbrqt::bulk_build(p.clone(), &s, &mbrqt_cfg()).unwrap();
    let rs_r = RStar::bulk_build(p.clone(), &r, &rstar_cfg()).unwrap();
    let rs_s = RStar::bulk_build(p, &s, &rstar_cfg()).unwrap();
    let mut a = mba::<3, NxnDist, _, _>(&qt_r, &qt_s, &MbaConfig::default()).unwrap();
    let mut b = mba::<3, NxnDist, _, _>(&rs_r, &rs_s, &MbaConfig::default()).unwrap();
    a.sort();
    b.sort();
    assert_eq!(a.results.len(), b.results.len());
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x.r_oid, y.r_oid);
        assert!((x.dist - y.dist).abs() < 1e-9);
    }
}

#[test]
fn incremental_trees_query_identically_to_bulk() {
    let pts = random_points::<2>(800, 579);
    let p = pool(512);
    let bulk = Mbrqt::bulk_build(p.clone(), &pts, &mbrqt_cfg()).unwrap();
    let mut inc = Mbrqt::create(p.clone(), bulk.universe(), &mbrqt_cfg()).unwrap();
    for &(oid, pt) in &pts {
        inc.insert(oid, pt).unwrap();
    }
    assert_eq!(inc.num_points(), bulk.num_points());
    let truth = truth_sorted(&pts, &pts, 1, false);
    let out = mba::<2, NxnDist, _, _>(&inc, &bulk, &MbaConfig::default()).unwrap();
    assert_matches_truth(out, &truth, "incremental vs bulk");
}
