//! The disk-resident node model shared by every index in the workspace.
//!
//! Both the MBRQT and the R*-tree serialize their nodes with the codec in
//! this module, one node per page (with transparent continuation-page
//! chaining for nodes whose fanout exceeds one page — a PR quadtree in 10
//! dimensions has up to 2¹⁰ children). Sharing the representation keeps the
//! traversal algorithms in [`crate::mba`] completely index-agnostic: an
//! index only has to say where its root page is.
//!
//! # On-page format
//!
//! First page of a node:
//!
//! ```text
//! version: u8 | flags: u8 (bit0 = leaf) | aux: u8 | reserved: u8
//! entry_count: u32 | next_page: u32 (continuation, INVALID_PAGE if none)
//! mbr: 2 * D * f64
//! entry stream ...
//! ```
//!
//! Continuation page: `next_page: u32 | reserved: u32 | entry stream ...`.
//! The entry stream is treated as one contiguous byte string split across
//! the chain, so entries may straddle page boundaries.
//!
//! Entry encodings:
//!
//! * child entry: `page: u32 | count: u64 | mbr: 2 * D * f64`
//! * object entry: `oid: u64 | point: D * f64`

use ann_geom::{Mbr, Point, SoaMbrs, SoaPoints};
use ann_store::{PageId, PageStore, Result, StoreError, INVALID_PAGE, PAGE_SIZE};
use std::ops::Deref;

const VERSION: u8 = 1;
/// Marks a continuation page as written-by-us, so that a stale or zeroed
/// `next` pointer is never mistaken for a real page id.
const CONT_MAGIC: u32 = 0xC047_1AB5;
const FIRST_HEADER: usize = 12;
const CONT_HEADER: usize = 8;

/// A reference to a child node, as stored inside its parent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeEntry<const D: usize> {
    /// First page of the child node.
    pub page: PageId,
    /// Number of data objects in the child's subtree.
    pub count: u64,
    /// Tight MBR of the child's subtree.
    ///
    /// For the MBRQT this is the *enhancement* the paper adds to the plain
    /// PR quadtree: the true bounding box of the points below, not the
    /// quadrant box.
    pub mbr: Mbr<D>,
}

/// A data object stored in a leaf.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObjectEntry<const D: usize> {
    /// Caller-assigned object identifier.
    pub oid: u64,
    /// The object's location.
    pub point: Point<D>,
}

/// One entry of a node: either a child pointer or a data object.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Entry<const D: usize> {
    /// Child subtree.
    Node(NodeEntry<D>),
    /// Data object.
    Object(ObjectEntry<D>),
}

impl<const D: usize> Entry<D> {
    /// The MBR of this entry (degenerate for objects).
    #[inline]
    pub fn mbr(&self) -> Mbr<D> {
        match self {
            Entry::Node(n) => n.mbr,
            Entry::Object(o) => Mbr::from_point(&o.point),
        }
    }

    /// Number of data objects under this entry.
    #[inline]
    pub fn count(&self) -> u64 {
        match self {
            Entry::Node(n) => n.count,
            Entry::Object(_) => 1,
        }
    }
}

/// An in-memory, decoded index node.
#[derive(Clone, Debug, PartialEq)]
pub struct Node<const D: usize> {
    /// `true` when the node stores objects, `false` when it stores children.
    pub is_leaf: bool,
    /// One byte of index-private metadata, persisted in the node header.
    /// The MBRQT stores the number of packed decomposition levels here so
    /// insertion can re-derive each child entry's grid cell; the R*-tree
    /// leaves it 0.
    pub aux: u8,
    /// Tight MBR over everything below this node.
    pub mbr: Mbr<D>,
    /// The node's entries (homogeneous: all objects or all children).
    pub entries: Vec<Entry<D>>,
}

impl<const D: usize> Node<D> {
    /// An empty leaf.
    pub fn empty_leaf() -> Self {
        Node {
            is_leaf: true,
            aux: 0,
            mbr: Mbr::empty(),
            entries: Vec::new(),
        }
    }

    /// Recomputes this node's MBR from its entries.
    pub fn recompute_mbr(&mut self) {
        let mut mbr = Mbr::empty();
        for e in &self.entries {
            mbr.expand(&e.mbr());
        }
        self.mbr = mbr;
    }

    /// Total objects under this node (sum of entry counts).
    pub fn count(&self) -> u64 {
        self.entries.iter().map(Entry::count).sum()
    }

    /// Serialized size of one entry for this dimensionality.
    pub const fn entry_size(is_leaf: bool) -> usize {
        if is_leaf {
            8 + 8 * D
        } else {
            4 + 8 + 16 * D
        }
    }

    /// How many entries fit in a single (non-chained) page.
    pub const fn single_page_capacity(is_leaf: bool) -> usize {
        (PAGE_SIZE - FIRST_HEADER - 16 * D) / Self::entry_size(is_leaf)
    }
}

/// Column-major (SoA) mirror of a node's entry list, built once at decode
/// time so the batched kernels in [`ann_geom::kernels`] can scan a node
/// without per-entry AoS gathers.
///
/// A node's entries are homogeneous, so the mirror is an enum: leaves keep
/// parallel oid + coordinate columns, internal nodes keep parallel page /
/// count arrays plus MBR bound columns. Coordinate/bound `d` of entry `i`
/// lives at `d * len + i`, matching [`SoaPoints`] / [`SoaMbrs`].
#[derive(Clone, Debug, PartialEq)]
pub enum NodeColumns {
    /// Leaf: `oids[i]` owns coordinates `coords[d * len + i]`.
    Leaf {
        /// Object identifiers in entry order.
        oids: Vec<u64>,
        /// Column-major point coordinates, `D * len` long.
        coords: Vec<f64>,
    },
    /// Internal node: parallel child metadata + MBR bound columns.
    Internal {
        /// First page of each child, in entry order.
        pages: Vec<PageId>,
        /// Subtree object count of each child, in entry order.
        counts: Vec<u64>,
        /// Column-major MBR lower bounds, `D * len` long.
        lo: Vec<f64>,
        /// Column-major MBR upper bounds, `D * len` long.
        hi: Vec<f64>,
    },
}

/// A decoded node plus its [`NodeColumns`] SoA mirror — the unit the
/// [`crate::node_cache::NodeCache`] stores and
/// [`crate::index::SpatialIndex::read_node_cached`] returns.
///
/// `DerefMut` is deliberately absent and both fields are private: the
/// columns are derived from the entries at construction, so the pair is
/// immutable-by-construction and can never drift apart. `Deref` keeps
/// every existing `node.entries` / `node.mbr` call site compiling
/// unchanged.
#[derive(Clone, Debug)]
pub struct DecodedNode<const D: usize> {
    node: Node<D>,
    columns: NodeColumns,
}

impl<const D: usize> DecodedNode<D> {
    /// Builds the SoA mirror for `node`.
    ///
    /// # Panics
    ///
    /// When an entry disagrees with the node's leaf flag. The codec rejects
    /// such nodes on both write and read, so a decoded node can never trip
    /// this.
    pub fn new(node: Node<D>) -> Self {
        let len = node.entries.len();
        let columns = if node.is_leaf {
            let mut oids = Vec::with_capacity(len);
            let mut coords = vec![0.0; D * len];
            for (i, e) in node.entries.iter().enumerate() {
                let Entry::Object(o) = e else {
                    panic!("child entry in a leaf node")
                };
                oids.push(o.oid);
                for d in 0..D {
                    coords[d * len + i] = o.point[d];
                }
            }
            NodeColumns::Leaf { oids, coords }
        } else {
            let mut pages = Vec::with_capacity(len);
            let mut counts = Vec::with_capacity(len);
            let mut lo = vec![0.0; D * len];
            let mut hi = vec![0.0; D * len];
            for (i, e) in node.entries.iter().enumerate() {
                let Entry::Node(n) = e else {
                    panic!("object entry in an internal node")
                };
                pages.push(n.page);
                counts.push(n.count);
                for d in 0..D {
                    lo[d * len + i] = n.mbr.lo[d];
                    hi[d * len + i] = n.mbr.hi[d];
                }
            }
            NodeColumns::Internal {
                pages,
                counts,
                lo,
                hi,
            }
        };
        DecodedNode { node, columns }
    }

    /// The decoded node (also reachable through `Deref`).
    #[inline]
    pub fn node(&self) -> &Node<D> {
        &self.node
    }

    /// The SoA mirror of the entry list.
    #[inline]
    pub fn columns(&self) -> &NodeColumns {
        &self.columns
    }

    /// Column-major view of every entry's MBR: degenerate (`lo == hi`,
    /// aliasing the coordinate columns) for leaves — exactly how the
    /// scalar path treats objects via [`Entry::mbr`] /
    /// [`Mbr::from_point`] — and the child MBRs for internal nodes.
    #[inline]
    pub fn soa_mbrs(&self) -> SoaMbrs<'_> {
        let len = self.node.entries.len();
        match &self.columns {
            NodeColumns::Leaf { coords, .. } => SoaPoints::new(len, coords).as_mbrs(),
            NodeColumns::Internal { lo, hi, .. } => SoaMbrs::new(len, lo, hi),
        }
    }

    /// Column-major view of a leaf's points; `None` for internal nodes.
    #[inline]
    pub fn leaf_points(&self) -> Option<SoaPoints<'_>> {
        match &self.columns {
            NodeColumns::Leaf { coords, .. } => {
                Some(SoaPoints::new(self.node.entries.len(), coords))
            }
            NodeColumns::Internal { .. } => None,
        }
    }
}

impl<const D: usize> Deref for DecodedNode<D> {
    type Target = Node<D>;
    #[inline]
    fn deref(&self) -> &Node<D> {
        &self.node
    }
}

impl<const D: usize> PartialEq for DecodedNode<D> {
    fn eq(&self, other: &Self) -> bool {
        // The columns are a pure function of the node, so comparing them
        // too would be redundant.
        self.node == other.node
    }
}

impl<const D: usize> PartialEq<Node<D>> for DecodedNode<D> {
    fn eq(&self, other: &Node<D>) -> bool {
        self.node == *other
    }
}

impl<const D: usize> From<Node<D>> for DecodedNode<D> {
    fn from(node: Node<D>) -> Self {
        DecodedNode::new(node)
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let s = self
            .bytes
            .get(self.at..self.at + n)
            .ok_or(StoreError::corrupt("node entry stream truncated"))?;
        self.at += n;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(array4(self.take(4)?)))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(array8(self.take(8)?)))
    }
    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(array8(self.take(8)?)))
    }
}

/// First four bytes of `s` as an array (`s` is always at least that long
/// at the call sites — the cursor checked).
#[inline]
fn array4(s: &[u8]) -> [u8; 4] {
    [s[0], s[1], s[2], s[3]]
}

/// First eight bytes of `s` as an array.
#[inline]
fn array8(s: &[u8]) -> [u8; 8] {
    [s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]
}

fn encode_mbr<const D: usize>(buf: &mut Vec<u8>, mbr: &Mbr<D>) {
    for d in 0..D {
        put_f64(buf, mbr.lo[d]);
    }
    for d in 0..D {
        put_f64(buf, mbr.hi[d]);
    }
}

fn decode_mbr<const D: usize>(c: &mut Cursor) -> Result<Mbr<D>> {
    let mut lo = [0.0; D];
    let mut hi = [0.0; D];
    for v in lo.iter_mut() {
        *v = c.f64()?;
    }
    for v in hi.iter_mut() {
        *v = c.f64()?;
    }
    Ok(Mbr { lo, hi })
}

/// Writes `node` starting at `first_page`, reusing the existing
/// continuation chain where possible and allocating more pages when the
/// node outgrew it.
///
/// Pages freed by a shrinking node are left orphaned on the chain's tail
/// (they keep their `next` pointers but `entry_count` stops before them);
/// index bulk-builds write each node once, so in practice nothing leaks.
pub fn write_node<const D: usize>(
    store: &impl PageStore,
    first_page: PageId,
    node: &Node<D>,
) -> Result<()> {
    // Serialize the entry stream.
    let mut stream = Vec::with_capacity(node.entries.len() * Node::<D>::entry_size(node.is_leaf));
    for e in &node.entries {
        match (node.is_leaf, e) {
            (false, Entry::Node(n)) => {
                put_u32(&mut stream, n.page);
                put_u64(&mut stream, n.count);
                encode_mbr(&mut stream, &n.mbr);
            }
            (true, Entry::Object(o)) => {
                put_u64(&mut stream, o.oid);
                for d in 0..D {
                    put_f64(&mut stream, o.point[d]);
                }
            }
            _ => {
                return Err(StoreError::corrupt(
                    "node entries do not match its leaf flag",
                ))
            }
        }
    }

    // Header of the first page.
    let mut header = Vec::with_capacity(FIRST_HEADER + 16 * D);
    header.push(VERSION);
    header.push(u8::from(node.is_leaf));
    header.push(node.aux);
    header.push(0);
    put_u32(&mut header, node.entries.len() as u32);
    put_u32(&mut header, INVALID_PAGE); // patched below if chained
    encode_mbr(&mut header, &node.mbr);

    let first_payload = PAGE_SIZE - header.len();
    let cont_payload = PAGE_SIZE - CONT_HEADER;

    let mut remaining: &[u8] = &stream;
    let mut page = first_page;
    let mut is_first = true;
    loop {
        let payload = if is_first {
            first_payload
        } else {
            cont_payload
        };
        let (chunk, rest) = remaining.split_at(remaining.len().min(payload));
        remaining = rest;
        let need_next = !remaining.is_empty();

        // Determine the continuation page: reuse the one already linked
        // from this page, else allocate. A fresh (zeroed) or foreign page
        // has no valid link — detect that via the version / magic marker.
        let existing_next = store.with_page(page, |bytes| {
            if is_first {
                if bytes[0] == VERSION {
                    u32::from_le_bytes(array4(&bytes[8..12]))
                } else {
                    INVALID_PAGE
                }
            } else if u32::from_le_bytes(array4(&bytes[4..8])) == CONT_MAGIC {
                u32::from_le_bytes(array4(&bytes[0..4]))
            } else {
                INVALID_PAGE
            }
        })?;
        let next = if need_next && existing_next == INVALID_PAGE {
            store.allocate()?
        } else {
            // Keep the existing link even when this write does not use it:
            // `entry_count` bounds how much of the chain is read, and a
            // later, larger rewrite can then reuse the orphaned tail.
            existing_next
        };

        store.with_page_mut(page, |bytes| {
            if is_first {
                bytes[..header.len()].copy_from_slice(&header);
                bytes[8..12].copy_from_slice(&next.to_le_bytes());
                bytes[header.len()..header.len() + chunk.len()].copy_from_slice(chunk);
            } else {
                bytes[0..4].copy_from_slice(&next.to_le_bytes());
                bytes[4..8].copy_from_slice(&CONT_MAGIC.to_le_bytes());
                bytes[CONT_HEADER..CONT_HEADER + chunk.len()].copy_from_slice(chunk);
            }
        })?;

        if !need_next {
            return Ok(());
        }
        page = next;
        is_first = false;
    }
}

/// Reads and decodes the node starting at `first_page`.
pub fn read_node<const D: usize>(store: &impl PageStore, first_page: PageId) -> Result<Node<D>> {
    // Read the first page: header + initial chunk of the entry stream.
    let (is_leaf, aux, entry_count, mut next, mbr, mut stream) =
        store.with_page(first_page, |bytes| -> Result<_> {
            if bytes[0] != VERSION {
                return Err(StoreError::corrupt_page(first_page, "unknown node version"));
            }
            let is_leaf = match bytes[1] {
                0 => false,
                1 => true,
                _ => return Err(StoreError::corrupt_page(first_page, "bad leaf flag")),
            };
            let aux = bytes[2];
            let entry_count = u32::from_le_bytes(array4(&bytes[4..8])) as usize;
            let next = u32::from_le_bytes(array4(&bytes[8..12]));
            let mut c = Cursor {
                bytes,
                at: FIRST_HEADER,
            };
            let mbr = decode_mbr::<D>(&mut c)?;
            let entry_size = Node::<D>::entry_size(is_leaf);
            let total = entry_count * entry_size;
            let here = total.min(PAGE_SIZE - c.at);
            let mut stream = Vec::with_capacity(total);
            stream.extend_from_slice(c.take(here)?);
            Ok((is_leaf, aux, entry_count, next, mbr, stream))
        })??;

    let entry_size = Node::<D>::entry_size(is_leaf);
    let total = entry_count * entry_size;
    while stream.len() < total {
        if next == INVALID_PAGE {
            return Err(StoreError::corrupt_page(
                first_page,
                "node chain ended early",
            ));
        }
        next = store.with_page(next, |bytes| {
            let n = u32::from_le_bytes(array4(&bytes[0..4]));
            let here = (total - stream.len()).min(PAGE_SIZE - CONT_HEADER);
            stream.extend_from_slice(&bytes[CONT_HEADER..CONT_HEADER + here]);
            n
        })?;
    }

    let mut c = Cursor {
        bytes: &stream,
        at: 0,
    };
    let mut entries = Vec::with_capacity(entry_count);
    for _ in 0..entry_count {
        if is_leaf {
            let oid = c.u64()?;
            let mut coords = [0.0; D];
            for v in coords.iter_mut() {
                *v = c.f64()?;
            }
            entries.push(Entry::Object(ObjectEntry {
                oid,
                point: Point::new(coords),
            }));
        } else {
            let page = c.u32()?;
            let count = c.u64()?;
            let mbr = decode_mbr::<D>(&mut c)?;
            entries.push(Entry::Node(NodeEntry { page, count, mbr }));
        }
    }
    Ok(Node {
        is_leaf,
        aux,
        mbr,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ann_store::{BufferPool, MemDisk};
    use std::sync::Arc;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(MemDisk::new(), 16))
    }

    fn sample_leaf(n: usize) -> Node<2> {
        let mut node = Node::empty_leaf();
        for i in 0..n {
            node.entries.push(Entry::Object(ObjectEntry {
                oid: i as u64,
                point: Point::new([i as f64, -(i as f64)]),
            }));
        }
        node.recompute_mbr();
        node
    }

    #[test]
    fn leaf_roundtrip() {
        let pool = pool();
        let page = pool.allocate().unwrap();
        let node = sample_leaf(10);
        write_node(&pool, page, &node).unwrap();
        let back = read_node::<2>(&pool, page).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn internal_roundtrip() {
        let pool = pool();
        let page = pool.allocate().unwrap();
        let mut node = Node {
            is_leaf: false,
            aux: 0,
            mbr: Mbr::empty(),
            entries: vec![],
        };
        for i in 0..5u32 {
            node.entries.push(Entry::Node(NodeEntry {
                page: i + 100,
                count: (i as u64 + 1) * 7,
                mbr: Mbr::new([i as f64, 0.0], [i as f64 + 1.0, 2.0]),
            }));
        }
        node.recompute_mbr();
        write_node(&pool, page, &node).unwrap();
        let back = read_node::<2>(&pool, page).unwrap();
        assert_eq!(back, node);
        assert_eq!(back.count(), 7 + 14 + 21 + 28 + 35);
    }

    #[test]
    fn empty_node_roundtrip() {
        let pool = pool();
        let page = pool.allocate().unwrap();
        let node = Node::<2>::empty_leaf();
        write_node(&pool, page, &node).unwrap();
        let back = read_node::<2>(&pool, page).unwrap();
        assert!(back.entries.is_empty());
        assert!(back.mbr.is_empty());
    }

    #[test]
    fn oversized_node_chains_across_pages() {
        let pool = pool();
        let page = pool.allocate().unwrap();
        // 2-D leaf entries are 24 bytes; ~340 fit on one page. Store 2000.
        let node = sample_leaf(2000);
        let before = pool.num_pages();
        write_node(&pool, page, &node).unwrap();
        assert!(pool.num_pages() > before, "continuation pages allocated");
        let back = read_node::<2>(&pool, page).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn rewrite_reuses_continuation_chain() {
        let pool = pool();
        let page = pool.allocate().unwrap();
        write_node(&pool, page, &sample_leaf(2000)).unwrap();
        let pages_after_first = pool.num_pages();
        // Rewriting the same node must not allocate fresh pages.
        write_node(&pool, page, &sample_leaf(2000)).unwrap();
        assert_eq!(pool.num_pages(), pages_after_first);
        // A smaller rewrite also reuses the chain head.
        write_node(&pool, page, &sample_leaf(10)).unwrap();
        assert_eq!(pool.num_pages(), pages_after_first);
        assert_eq!(read_node::<2>(&pool, page).unwrap(), sample_leaf(10));
        // Growing again reuses the orphaned tail.
        write_node(&pool, page, &sample_leaf(2000)).unwrap();
        assert_eq!(pool.num_pages(), pages_after_first);
    }

    #[test]
    fn high_dimensional_roundtrip() {
        let pool = pool();
        let page = pool.allocate().unwrap();
        let mut node = Node::<10>::empty_leaf();
        for i in 0..200u64 {
            node.entries.push(Entry::Object(ObjectEntry {
                oid: i,
                point: Point::new([i as f64 * 0.1; 10]),
            }));
        }
        node.recompute_mbr();
        write_node(&pool, page, &node).unwrap();
        assert_eq!(read_node::<10>(&pool, page).unwrap(), node);
    }

    #[test]
    fn mixed_entries_rejected() {
        let pool = pool();
        let page = pool.allocate().unwrap();
        let node = Node::<2> {
            is_leaf: true,
            aux: 0,
            mbr: Mbr::empty(),
            entries: vec![Entry::Node(NodeEntry {
                page: 1,
                count: 1,
                mbr: Mbr::empty(),
            })],
        };
        assert!(write_node(&pool, page, &node).is_err());
    }

    #[test]
    fn decoded_leaf_columns_mirror_entries() {
        let node = sample_leaf(13);
        let dec = DecodedNode::new(node.clone());
        assert_eq!(*dec, node, "Deref target is the node itself");
        let NodeColumns::Leaf { oids, coords } = dec.columns() else {
            panic!("leaf must decode to leaf columns")
        };
        assert_eq!(coords.len(), 2 * 13);
        let pts = dec.leaf_points().expect("leaf has points");
        let mbrs = dec.soa_mbrs();
        for (i, e) in node.entries.iter().enumerate() {
            let Entry::Object(o) = e else { unreachable!() };
            assert_eq!(oids[i], o.oid);
            assert_eq!(pts.point::<2>(i), o.point);
            // The MBR view is degenerate and aliases the same columns.
            assert_eq!(mbrs.mbr::<2>(i), Mbr::from_point(&o.point));
        }
    }

    #[test]
    fn decoded_internal_columns_mirror_entries() {
        let mut node = Node::<2> {
            is_leaf: false,
            aux: 0,
            mbr: Mbr::empty(),
            entries: vec![],
        };
        for i in 0..7u32 {
            node.entries.push(Entry::Node(NodeEntry {
                page: i + 10,
                count: u64::from(i) * 3 + 1,
                mbr: Mbr::new([f64::from(i), -1.0], [f64::from(i) + 0.5, 4.0]),
            }));
        }
        node.recompute_mbr();
        let dec = DecodedNode::new(node.clone());
        let NodeColumns::Internal {
            pages,
            counts,
            lo,
            hi,
        } = dec.columns()
        else {
            panic!("internal node must decode to internal columns")
        };
        assert_eq!(lo.len(), 2 * 7);
        assert_eq!(hi.len(), 2 * 7);
        assert!(dec.leaf_points().is_none());
        let mbrs = dec.soa_mbrs();
        for (i, e) in node.entries.iter().enumerate() {
            let Entry::Node(n) = e else { unreachable!() };
            assert_eq!(pages[i], n.page);
            assert_eq!(counts[i], n.count);
            assert_eq!(mbrs.mbr::<2>(i), n.mbr);
        }
    }

    #[test]
    fn decoded_empty_leaf_is_empty_everywhere() {
        let dec = DecodedNode::new(Node::<2>::empty_leaf());
        assert_eq!(dec.soa_mbrs().len, 0);
        assert_eq!(dec.leaf_points().unwrap().len, 0);
    }

    #[test]
    fn capacities_are_sane() {
        // 2-D: leaf entries 24 B, internal 44 B.
        assert_eq!(Node::<2>::entry_size(true), 24);
        assert_eq!(Node::<2>::entry_size(false), 44);
        assert!(Node::<2>::single_page_capacity(true) >= 300);
        assert!(Node::<2>::single_page_capacity(false) >= 180);
        // 10-D still fits a healthy fanout on one page.
        assert!(Node::<10>::single_page_capacity(true) >= 90);
        assert!(Node::<10>::single_page_capacity(false) >= 45);
    }
}
