//! Single-query k-nearest-neighbor search — the point-query counterpart
//! of the ANN join, exposed as a standalone primitive.
//!
//! This is the classic best-first (Hjaltason–Samet) search augmented with
//! the paper's pruning-metric upper bound, shared with the MNN baseline.
//! Use it when you need neighbors of a handful of query points; use
//! [`crate::mba`] when you need neighbors of *every* indexed point.

use crate::index::SpatialIndex;
use crate::lpq::BoundTracker;
use crate::node::Entry;
use crate::resilience::{QueryGuard, QueryResult};
use crate::scratch::{BestFirstItem, QueryScratch};
use ann_geom::{kernels, min_min_dist_sq, Mbr, Point, PruneMetric};

/// Finds the `k` nearest indexed points to `query`, closest first.
///
/// Returns fewer than `k` results only when the index holds fewer than
/// `k` points.
///
/// ```no_run
/// use ann_core::knn::knn;
/// use ann_core::SpatialIndex;
/// use ann_geom::{NxnDist, Point};
/// # fn demo<I: SpatialIndex<2>>(index: &I) -> ann_core::QueryResult<()> {
/// let hits = knn::<2, NxnDist, _>(index, &Point::new([1.0, 2.0]), 5)?;
/// for (oid, dist) in hits {
///     println!("#{oid} at {dist}");
/// }
/// # Ok(()) }
/// ```
pub fn knn<const D: usize, M, I>(
    index: &I,
    query: &Point<D>,
    k: usize,
) -> QueryResult<Vec<(u64, f64)>>
where
    M: PruneMetric,
    I: SpatialIndex<D>,
{
    knn_scratch::<D, M, I>(index, query, k, &mut QueryScratch::new())
}

/// [`knn`] with a caller-owned [`QueryScratch`]: repeated queries through
/// the same scratch reuse its heap and distance buffers instead of
/// allocating fresh ones per call.
pub fn knn_scratch<const D: usize, M, I>(
    index: &I,
    query: &Point<D>,
    k: usize,
    scratch: &mut QueryScratch<D>,
) -> QueryResult<Vec<(u64, f64)>>
where
    M: PruneMetric,
    I: SpatialIndex<D>,
{
    knn_guarded::<D, M, I>(index, query, k, scratch, &QueryGuard::disabled())
}

/// [`knn_scratch`] under a [`QueryGuard`], consulted before every node
/// read.
pub fn knn_guarded<const D: usize, M, I>(
    index: &I,
    query: &Point<D>,
    k: usize,
    scratch: &mut QueryScratch<D>,
    guard: &QueryGuard<'_>,
) -> QueryResult<Vec<(u64, f64)>>
where
    M: PruneMetric,
    I: SpatialIndex<D>,
{
    let mut out = Vec::with_capacity(k);
    guard.tick()?;
    if k == 0 || index.num_points() == 0 {
        return Ok(out);
    }
    let qmbr = Mbr::from_point(query);
    let mut bound = BoundTracker::new(k, f64::INFINITY);
    let mut heap = scratch.take_best_first();
    let mut mind_buf = scratch.take_f64();
    let mut maxd_buf = scratch.take_f64();
    let mut hints = scratch.take_hints();
    let hinting = index.pool().prefetch_enabled();

    let root_mbr = index.bounds();
    let root = Entry::Node(crate::node::NodeEntry {
        page: index.root_page(),
        count: index.num_points(),
        mbr: root_mbr,
    });
    let maxd_sq = M::upper_sq(&qmbr, &root_mbr);
    bound.offer(maxd_sq);
    heap.push(BestFirstItem {
        mind_sq: min_min_dist_sq(&qmbr, &root_mbr),
        maxd_sq,
        entry: root,
    });

    while let Some(item) = heap.pop() {
        if bound.prunes(item.mind_sq) {
            break;
        }
        bound.remove(item.maxd_sq);
        match item.entry {
            Entry::Object(o) => {
                out.push((o.oid, item.mind_sq.sqrt()));
                bound.satisfy_one();
                if out.len() == k {
                    break;
                }
            }
            Entry::Node(n) => {
                guard.tick()?;
                let node = index.read_node_cached(n.page)?;
                // Batch the per-entry bounds over the node's SoA columns,
                // then replay the accept/prune decisions sequentially under
                // the evolving bound — bit-identical to the scalar loop.
                let cols = node.soa_mbrs();
                kernels::min_min_dist_sq_batch(&qmbr, &cols, &mut mind_buf);
                M::upper_sq_batch(&qmbr, &cols, &mut maxd_buf);
                for (i, e) in node.entries.iter().enumerate() {
                    if !bound.prunes(mind_buf[i]) {
                        bound.offer(maxd_buf[i]);
                        heap.push(BestFirstItem {
                            mind_sq: mind_buf[i],
                            maxd_sq: maxd_buf[i],
                            entry: *e,
                        });
                        if hinting {
                            if let Entry::Node(c) = e {
                                // First touch only: a node-cached page is
                                // served without a pool read, so hinting it
                                // would be pure wasted disk I/O.
                                if !index.node_is_cached(c.page) {
                                    hints.push((
                                        c.page,
                                        crate::readahead::depth_priority(c.count),
                                    ));
                                }
                            }
                        }
                    }
                }
                // Readahead for the pages just pushed: changes only when
                // their physical reads happen, never the search decisions.
                crate::readahead::submit(index.pool(), &mut hints);
            }
        }
    }
    scratch.put_best_first(heap);
    scratch.put_f64(mind_buf);
    scratch.put_f64(maxd_buf);
    scratch.put_hints(hints);
    Ok(out)
}

/// Finds every indexed point within `radius` of `query`, closest first.
///
/// A range counterpart to [`knn`]; subtrees are pruned with the same
/// `MINMINDIST` lower bound.
pub fn within_radius<const D: usize, I>(
    index: &I,
    query: &Point<D>,
    radius: f64,
) -> QueryResult<Vec<(u64, f64)>>
where
    I: SpatialIndex<D>,
{
    within_radius_guarded(index, query, radius, &QueryGuard::disabled())
}

/// [`within_radius`] under a [`QueryGuard`], consulted before every node
/// read.
pub fn within_radius_guarded<const D: usize, I>(
    index: &I,
    query: &Point<D>,
    radius: f64,
    guard: &QueryGuard<'_>,
) -> QueryResult<Vec<(u64, f64)>>
where
    I: SpatialIndex<D>,
{
    assert!(radius >= 0.0, "radius must be non-negative");
    let mut out = Vec::new();
    guard.tick()?;
    if index.num_points() == 0 {
        return Ok(out);
    }
    let qmbr = Mbr::from_point(query);
    let radius_sq = radius * radius;
    let mut stack = vec![index.root_page()];
    while let Some(page) = stack.pop() {
        guard.tick()?;
        let node = index.read_node_cached(page)?;
        for e in &node.entries {
            match e {
                Entry::Object(o) => {
                    let d2 = query.dist_sq(&o.point);
                    if d2 <= radius_sq {
                        out.push((o.oid, d2.sqrt()));
                    }
                }
                Entry::Node(n) => {
                    if min_min_dist_sq(&qmbr, &n.mbr) <= radius_sq {
                        stack.push(n.page);
                    }
                }
            }
        }
    }
    out.sort_by(|a, b| (a.1, a.0).partial_cmp(&(b.1, b.0)).expect("finite"));
    Ok(out)
}
