//! Single-query k-nearest-neighbor search — the point-query counterpart
//! of the ANN join, exposed as a standalone primitive.
//!
//! This is the classic best-first (Hjaltason–Samet) search augmented with
//! the paper's pruning-metric upper bound, shared with the MNN baseline.
//! Use it when you need neighbors of a handful of query points; use
//! [`crate::mba`] when you need neighbors of *every* indexed point.

use crate::index::SpatialIndex;
use crate::lpq::BoundTracker;
use crate::node::Entry;
use ann_geom::{min_min_dist_sq, Mbr, Point, PruneMetric};
use ann_store::Result;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct HeapItem<const D: usize> {
    mind_sq: f64,
    maxd_sq: f64,
    entry: Entry<D>,
}

impl<const D: usize> HeapItem<D> {
    /// Pop order: ascending `(MIND, nodes-before-objects, oid)`. A child's
    /// MIND never undercuts its parent's, so popping tied nodes first
    /// guarantees every object at distance `d` is in the heap before any
    /// tied object is emitted — equal-distance hits then surface in the
    /// canonical smaller-oid-first order.
    fn key(&self) -> (f64, u8, u64) {
        match self.entry {
            Entry::Node(n) => (self.mind_sq, 0, u64::from(n.page)),
            Entry::Object(o) => (self.mind_sq, 1, o.oid),
        }
    }
}

impl<const D: usize> PartialEq for HeapItem<D> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<const D: usize> Eq for HeapItem<D> {}
impl<const D: usize> PartialOrd for HeapItem<D> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize> Ord for HeapItem<D> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key()
            .partial_cmp(&self.key())
            .expect("distances are finite")
    }
}

/// Finds the `k` nearest indexed points to `query`, closest first.
///
/// Returns fewer than `k` results only when the index holds fewer than
/// `k` points.
///
/// ```no_run
/// use ann_core::knn::knn;
/// use ann_core::SpatialIndex;
/// use ann_geom::{NxnDist, Point};
/// # fn demo<I: SpatialIndex<2>>(index: &I) -> ann_store::Result<()> {
/// let hits = knn::<2, NxnDist, _>(index, &Point::new([1.0, 2.0]), 5)?;
/// for (oid, dist) in hits {
///     println!("#{oid} at {dist}");
/// }
/// # Ok(()) }
/// ```
pub fn knn<const D: usize, M, I>(index: &I, query: &Point<D>, k: usize) -> Result<Vec<(u64, f64)>>
where
    M: PruneMetric,
    I: SpatialIndex<D>,
{
    let mut out = Vec::with_capacity(k);
    if k == 0 || index.num_points() == 0 {
        return Ok(out);
    }
    let qmbr = Mbr::from_point(query);
    let mut bound = BoundTracker::new(k, f64::INFINITY);
    let mut heap: BinaryHeap<HeapItem<D>> = BinaryHeap::new();

    let root_mbr = index.bounds();
    let root = Entry::Node(crate::node::NodeEntry {
        page: index.root_page(),
        count: index.num_points(),
        mbr: root_mbr,
    });
    let maxd_sq = M::upper_sq(&qmbr, &root_mbr);
    bound.offer(maxd_sq);
    heap.push(HeapItem {
        mind_sq: min_min_dist_sq(&qmbr, &root_mbr),
        maxd_sq,
        entry: root,
    });

    while let Some(item) = heap.pop() {
        if bound.prunes(item.mind_sq) {
            break;
        }
        bound.remove(item.maxd_sq);
        match item.entry {
            Entry::Object(o) => {
                out.push((o.oid, item.mind_sq.sqrt()));
                bound.satisfy_one();
                if out.len() == k {
                    break;
                }
            }
            Entry::Node(n) => {
                let node = index.read_node_cached(n.page)?;
                for e in node.entries.iter().copied() {
                    let embr = e.mbr();
                    let mind_sq = min_min_dist_sq(&qmbr, &embr);
                    let maxd_sq = M::upper_sq(&qmbr, &embr);
                    if !bound.prunes(mind_sq) {
                        bound.offer(maxd_sq);
                        heap.push(HeapItem {
                            mind_sq,
                            maxd_sq,
                            entry: e,
                        });
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Finds every indexed point within `radius` of `query`, closest first.
///
/// A range counterpart to [`knn`]; subtrees are pruned with the same
/// `MINMINDIST` lower bound.
pub fn within_radius<const D: usize, I>(
    index: &I,
    query: &Point<D>,
    radius: f64,
) -> Result<Vec<(u64, f64)>>
where
    I: SpatialIndex<D>,
{
    assert!(radius >= 0.0, "radius must be non-negative");
    let mut out = Vec::new();
    if index.num_points() == 0 {
        return Ok(out);
    }
    let qmbr = Mbr::from_point(query);
    let radius_sq = radius * radius;
    let mut stack = vec![index.root_page()];
    while let Some(page) = stack.pop() {
        let node = index.read_node_cached(page)?;
        for e in &node.entries {
            match e {
                Entry::Object(o) => {
                    let d2 = query.dist_sq(&o.point);
                    if d2 <= radius_sq {
                        out.push((o.oid, d2.sqrt()));
                    }
                }
                Entry::Node(n) => {
                    if min_min_dist_sq(&qmbr, &n.mbr) <= radius_sq {
                        stack.push(n.page);
                    }
                }
            }
        }
    }
    out.sort_by(|a, b| (a.1, a.0).partial_cmp(&(b.1, b.0)).expect("finite"));
    Ok(out)
}
