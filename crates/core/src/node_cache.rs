//! A bounded, sharded cache of *decoded* nodes.
//!
//! The buffer pool caches page bytes; every traversal that revisits a node
//! still pays `read_node`'s decode (header parse, entry unpacking,
//! continuation-chain walk) plus a trip through the pool's shard lock. The
//! `NodeCache` sits above the pool and memoizes the decoded node — as a
//! [`DecodedNode`], i.e. together with its column-major SoA mirror for the
//! batched kernels — behind an `Arc`, so repeat visits — ubiquitous in MBA's bidirectional
//! expansion, kNN re-descents and the BNN/MNN baselines — are a lock-brief
//! hash probe returning a shared pointer.
//!
//! # Invalidation
//!
//! Entries are keyed by `(key, PageId)`, where `key` is either a tree
//! epoch or an MVCC version (see below). Structural mutation (MBRQT /
//! R*-tree insert and delete) bumps the tree's epoch, which atomically
//! invalidates every cached node: stale entries can never match a post-bump
//! lookup, and the bump also drops them eagerly to free memory. The cache
//! additionally maintains a **retired floor**: inserts under a key below
//! the floor are dropped on arrival, so a lookup/insert pair racing a bump
//! can never park an unreachable entry in a shard ([`NodeCache::stale_len`]
//! counts any that slip through, and stays zero). Bulk-built trees never
//! mutate, so their caches stay hot for the life of the tree.
//!
//! # Versioned trees
//!
//! An index backed by an [`ann_store::VersionedStore`] keys the cache by
//! **version** instead of epoch (via `SpatialIndex::cache_key`). Commits
//! then never clear the cache: entries cached under version `v` stay
//! valid and shareable for every reader pinning `v`, while readers of
//! `v+1` simply miss and fill their own entries. When the store's GC
//! floor advances, [`NodeCache::retire_below`] drops entries for
//! versions no snapshot can pin anymore.
//!
//! Cache hits bypass the buffer pool entirely, so a traversal over a hot
//! node cache charges *no* logical or physical page reads for the cached
//! nodes; benchmarks that want the paper's cold-cache I/O accounting clear
//! the node cache alongside the pool between phases
//! ([`NodeCache::clear`]).
//!
//! # Concurrency
//!
//! The map is striped into shards, each behind its own `std::sync::Mutex`,
//! so parallel MBA workers probing different nodes rarely contend.
//! Eviction is per shard by least-recent access stamp. The cache is
//! purely an accelerator: it never holds the only copy of anything, and
//! any entry may be evicted at any time.

use crate::node::DecodedNode;
use ann_store::PageId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default capacity in decoded nodes. Sized to hold the working set of the
/// benchmark trees many times over; decoded nodes are at most a few KiB,
/// so the worst case is a few MiB per tree.
pub const DEFAULT_NODE_CACHE_CAPACITY: usize = 1024;

/// Default number of lock stripes (fixed, for determinism across machines).
const DEFAULT_SHARDS: usize = 8;

struct Slot<const D: usize> {
    node: Arc<DecodedNode<D>>,
    /// Last-access stamp from the cache-wide clock; the per-shard eviction
    /// victim is the minimum-stamp slot.
    stamp: u64,
}

/// Hit/miss counters for one [`NodeCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeCacheStats {
    /// Lookups served from the cache (no pool access, no decode).
    pub hits: u64,
    /// Lookups that fell through to `read_node`.
    pub misses: u64,
}

/// A sharded `(epoch, page) → Arc<Node>` cache with per-shard
/// least-recently-stamped eviction. See the module docs.
pub struct NodeCache<const D: usize> {
    shards: Box<[Mutex<HashMap<(u64, PageId), Slot<D>>>]>,
    per_shard_capacity: usize,
    epoch: AtomicU64,
    /// Keys strictly below this floor are retired: inserts under them are
    /// dropped and resident entries are purged when the floor advances.
    floor: AtomicU64,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<const D: usize> NodeCache<D> {
    /// A cache bounded to `capacity` decoded nodes (minimum one per
    /// shard), striped into a fixed number of shards.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// A cache bounded to `capacity` nodes across exactly `shards` lock
    /// stripes (clamped so every stripe holds at least one node).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, capacity.max(1));
        NodeCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard_capacity: (capacity / shards).max(1),
            epoch: AtomicU64::new(0),
            floor: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Total node capacity (per-shard bound × shard count).
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    /// The current epoch. Readers snapshot this once per lookup/insert
    /// pair so a concurrent bump can never publish a stale node under the
    /// new epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Invalidates every cached node: future lookups miss until re-filled
    /// under the new epoch. Called by the owning tree on structural
    /// mutation (insert/delete).
    ///
    /// The new epoch also becomes the retired floor, so an insert racing
    /// this bump (its key snapshotted pre-bump) is dropped on arrival
    /// instead of lingering invisibly in a shard until LRU pressure.
    pub fn bump_epoch(&self) {
        let new_epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        self.floor.fetch_max(new_epoch, Ordering::AcqRel);
        // Eager drop: stale epochs can never be read again, so free them
        // now rather than waiting for capacity eviction to find them.
        for shard in self.shards.iter() {
            shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// Retires every key strictly below `floor`: resident entries under
    /// retired keys are purged and future inserts under them are dropped.
    /// Versioned indexes call this when the store's GC floor advances;
    /// the floor never moves backwards.
    pub fn retire_below(&self, floor: u64) {
        let prev = self.floor.fetch_max(floor, Ordering::AcqRel);
        if prev >= floor {
            return;
        }
        for shard in self.shards.iter() {
            shard
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .retain(|(key, _), _| *key >= floor);
        }
    }

    /// Number of resident entries keyed below the retired floor. The
    /// insert-side floor check keeps this at zero; mutation paths assert
    /// it to catch any regression in the invalidation protocol.
    pub fn stale_len(&self) -> usize {
        let floor = self.floor.load(Ordering::Acquire);
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .keys()
                    .filter(|(key, _)| *key < floor)
                    .count()
            })
            .sum()
    }

    #[inline]
    fn shard(&self, page: PageId) -> &Mutex<HashMap<(u64, PageId), Slot<D>>> {
        &self.shards[page as usize % self.shards.len()]
    }

    /// Reports whether `page` is cached under `epoch` without refreshing
    /// its access stamp or recording a hit/miss. Prefetch hook sites use
    /// this to hint only pages the traversal will actually demand from the
    /// buffer pool: a node-cached page is never read again, so hinting it
    /// would be pure wasted I/O.
    pub fn contains(&self, epoch: u64, page: PageId) -> bool {
        self.shard(page)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(&(epoch, page))
    }

    /// Looks up `page` under `epoch`, refreshing its access stamp.
    pub fn get(&self, epoch: u64, page: PageId) -> Option<Arc<DecodedNode<D>>> {
        let mut shard = self.shard(page).lock().unwrap_or_else(|e| e.into_inner());
        match shard.get_mut(&(epoch, page)) {
            Some(slot) => {
                slot.stamp = self.clock.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&slot.node))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Caches `node` for `page` under `epoch`, evicting the shard's
    /// least-recently-stamped slot if the shard is full. Inserts under a
    /// retired key (below the floor set by [`NodeCache::bump_epoch`] /
    /// [`NodeCache::retire_below`]) are dropped: they could never match a
    /// lookup, and admitting them would waste slots until LRU pressure.
    pub fn insert(&self, epoch: u64, page: PageId, node: Arc<DecodedNode<D>>) {
        if epoch < self.floor.load(Ordering::Acquire) {
            return;
        }
        let mut shard = self.shard(page).lock().unwrap_or_else(|e| e.into_inner());
        if shard.len() >= self.per_shard_capacity && !shard.contains_key(&(epoch, page)) {
            if let Some(victim) = shard
                .iter()
                .min_by_key(|(_, slot)| slot.stamp)
                .map(|(&k, _)| k)
            {
                shard.remove(&victim);
            }
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        shard.insert((epoch, page), Slot { node, stamp });
    }

    /// Drops every cached node without changing the epoch. Benchmarks use
    /// this (with [`ann_store::BufferPool::clear`]) to start a phase cold.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// Number of cached nodes (any epoch).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Whether the cache currently holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time hit/miss counters.
    pub fn stats(&self) -> NodeCacheStats {
        NodeCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the hit/miss counters.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

impl<const D: usize> Default for NodeCache<D> {
    fn default() -> Self {
        Self::new(DEFAULT_NODE_CACHE_CAPACITY)
    }
}

impl<const D: usize> std::fmt::Debug for NodeCache<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("NodeCache")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("epoch", &self.epoch())
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(tag: u8) -> Arc<DecodedNode<2>> {
        Arc::new(DecodedNode::new(crate::node::Node {
            is_leaf: true,
            aux: tag,
            mbr: ann_geom::Mbr::empty(),
            entries: vec![],
        }))
    }

    #[test]
    fn get_after_insert_hits() {
        let c: NodeCache<2> = NodeCache::new(8);
        assert!(c.get(c.epoch(), 3).is_none());
        c.insert(c.epoch(), 3, leaf(1));
        let got = c.get(c.epoch(), 3).expect("cached");
        assert_eq!(got.aux, 1);
        assert_eq!(c.stats(), NodeCacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn epoch_bump_invalidates_everything() {
        let c: NodeCache<2> = NodeCache::new(8);
        let e = c.epoch();
        c.insert(e, 1, leaf(1));
        c.insert(e, 2, leaf(2));
        c.bump_epoch();
        assert_ne!(c.epoch(), e);
        assert!(c.get(c.epoch(), 1).is_none());
        assert!(c.get(c.epoch(), 2).is_none());
        assert!(c.is_empty(), "bump drops stale entries eagerly");
    }

    #[test]
    fn stale_epoch_insert_is_invisible_and_dropped() {
        let c: NodeCache<2> = NodeCache::new(8);
        let old = c.epoch();
        c.bump_epoch();
        c.insert(old, 5, leaf(9)); // raced with the bump
        assert!(c.get(c.epoch(), 5).is_none());
        // The raced insert must not occupy a slot either: it is dropped
        // at the floor check, not parked until LRU pressure finds it.
        assert!(c.is_empty());
        assert_eq!(c.stale_len(), 0);
    }

    #[test]
    fn retire_below_purges_old_versions_and_keeps_new() {
        let c: NodeCache<2> = NodeCache::new(16);
        for v in 1..=4u64 {
            c.insert(v, 10 + v as PageId, leaf(v as u8));
        }
        c.retire_below(3);
        assert!(c.get(1, 11).is_none());
        assert!(c.get(2, 12).is_none());
        assert_eq!(c.get(3, 13).unwrap().aux, 3);
        assert_eq!(c.get(4, 14).unwrap().aux, 4);
        assert_eq!(c.stale_len(), 0);
        // Late insert under a retired version is dropped.
        c.insert(2, 12, leaf(2));
        assert!(c.get(2, 12).is_none());
        assert_eq!(c.stale_len(), 0);
        // The floor never regresses.
        c.retire_below(1);
        assert_eq!(c.get(4, 14).unwrap().aux, 4);
    }

    #[test]
    fn versioned_keys_coexist_without_invalidation() {
        let c: NodeCache<2> = NodeCache::new(16);
        c.insert(1, 7, leaf(1));
        c.insert(2, 7, leaf(2));
        // Same page cached under two versions: both remain servable.
        assert_eq!(c.get(1, 7).unwrap().aux, 1);
        assert_eq!(c.get(2, 7).unwrap().aux, 2);
    }

    #[test]
    fn capacity_bound_evicts_least_recent() {
        // One shard so the eviction order is fully observable.
        let c: NodeCache<2> = NodeCache::with_shards(2, 1);
        let e = c.epoch();
        c.insert(e, 1, leaf(1));
        c.insert(e, 2, leaf(2));
        c.get(e, 1); // 1 is now more recent than 2
        c.insert(e, 3, leaf(3)); // evicts 2
        assert!(c.get(e, 1).is_some());
        assert!(c.get(e, 2).is_none());
        assert!(c.get(e, 3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_of_resident_page_does_not_evict_neighbors() {
        let c: NodeCache<2> = NodeCache::with_shards(2, 1);
        let e = c.epoch();
        c.insert(e, 1, leaf(1));
        c.insert(e, 2, leaf(2));
        c.insert(e, 1, leaf(7)); // refresh in place
        assert_eq!(c.get(e, 1).unwrap().aux, 7);
        assert!(c.get(e, 2).is_some());
    }

    #[test]
    fn clear_keeps_epoch_but_drops_contents() {
        let c: NodeCache<2> = NodeCache::new(8);
        let e = c.epoch();
        c.insert(e, 1, leaf(1));
        c.clear();
        assert_eq!(c.epoch(), e);
        assert!(c.get(e, 1).is_none());
    }

    #[test]
    fn shards_clamped() {
        let c: NodeCache<2> = NodeCache::with_shards(3, 64);
        assert!(c.capacity() >= 3);
        let c: NodeCache<2> = NodeCache::with_shards(0, 4);
        assert!(c.capacity() >= 1, "zero capacity clamps to one per shard");
    }

    #[test]
    fn concurrent_probes_share_one_decode() {
        let c: Arc<NodeCache<2>> = Arc::new(NodeCache::new(64));
        let e = c.epoch();
        c.insert(e, 7, leaf(7));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..100 {
                        assert_eq!(c.get(e, 7).unwrap().aux, 7);
                    }
                });
            }
        });
        assert_eq!(c.stats().hits, 400);
    }
}
