//! **HNN** — hash-based ANN over a spatial grid (Zhang et al. SSDBM 2004,
//! building on the PBSM partitioning of Patel & DeWitt).
//!
//! Neither input needs an index: the target set `S` is hashed into a
//! uniform grid whose cell edge is chosen so the average occupancy is a
//! small constant, and each query point searches its own cell and then
//! expanding Chebyshev "rings" of cells, stopping when the nearest
//! possible point of the next ring is farther than the current `k`-th
//! best candidate.
//!
//! Cell contents are stored structure-of-arrays (oids beside column-major
//! coordinates), so each visited cell feeds one
//! [`ann_geom::kernels::dist_sq_batch`] call instead of a pointer-chasing
//! scalar loop.
//!
//! The paper (§2) notes two weaknesses that this implementation makes
//! measurable rather than hides:
//!
//! * **skew** — a uniform grid puts thousands of points in hot cells, and
//!   ring pruning does not help within a cell;
//! * **dimensionality** — a ring at Chebyshev radius ρ contains
//!   `(2ρ+1)^D − (2ρ−1)^D` cells, which explodes with `D`, so HNN is only
//!   sensible in low dimensions.

#![allow(clippy::needless_range_loop)] // fixed-D kernels index 0..D

use crate::resilience::{attach_partial_stats, QueryGuard, QueryResult};
use crate::scratch::{KBest, QueryScratch};
use crate::stats::{AnnOutput, NeighborPair};
use crate::trace::{Phase, PruneReason, TraceEvent, Tracer};
use ann_geom::{kernels, Mbr, Point, SoaPoints};
use ann_store::IoSnapshot;
use std::collections::{BinaryHeap, HashMap};

/// Configuration for [`hnn`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HnnConfig {
    /// Neighbors per query object.
    pub k: usize,
    /// Target average number of `S` points per grid cell.
    pub avg_cell_occupancy: f64,
    /// Self-join mode: skip same-oid pairs.
    pub exclude_self: bool,
}

impl Default for HnnConfig {
    fn default() -> Self {
        HnnConfig {
            k: 1,
            avg_cell_occupancy: 8.0,
            exclude_self: false,
        }
    }
}

/// One grid cell's points, structure-of-arrays.
struct CellSoa<const D: usize> {
    oids: Vec<u64>,
    /// Column-major: `coords[d * len + i]` is dimension `d` of point `i`.
    coords: Vec<f64>,
}

impl<const D: usize> CellSoa<D> {
    fn from_points(points: Vec<(u64, Point<D>)>) -> Self {
        let len = points.len();
        let mut oids = Vec::with_capacity(len);
        let mut coords = Vec::with_capacity(D * len);
        for d in 0..D {
            coords.extend(points.iter().map(|(_, p)| p[d]));
        }
        oids.extend(points.iter().map(|(oid, _)| *oid));
        CellSoa { oids, coords }
    }

    fn len(&self) -> usize {
        self.oids.len()
    }

    fn points(&self) -> SoaPoints<'_> {
        SoaPoints::new(self.oids.len(), &self.coords)
    }
}

struct Grid<const D: usize> {
    cells: HashMap<[i32; D], CellSoa<D>>,
    origin: [f64; D],
    cell_edge: f64,
    /// Componentwise bounds of the occupied cells.
    cell_lo: [i32; D],
    cell_hi: [i32; D],
}

impl<const D: usize> Grid<D> {
    fn build(s: &[(u64, Point<D>)], avg_occupancy: f64) -> Self {
        let bounds = Mbr::from_points(s.iter().map(|(_, p)| p));
        let cells_wanted = (s.len() as f64 / avg_occupancy).max(1.0);
        // Edge length so the grid has ≈ cells_wanted cells. Naively that
        // is (volume / cells_wanted)^(1/D), but flat or near-flat extents
        // (collinear data, duplicated coordinates) would drive the
        // geometric mean toward zero and explode the per-dimension cell
        // counts of the wide extents. Water-fill instead: find the prefix
        // of the largest extents whose edge swallows every smaller extent
        // in a single cell, so only genuinely wide dimensions are split.
        let mut ext: Vec<f64> = (0..D).map(|d| bounds.extent(d)).filter(|e| *e > 0.0).collect();
        ext.sort_by(|a, b| b.partial_cmp(a).expect("finite extents"));
        let mut cell_edge = 1.0; // all points coincident: one cell
        let mut prod = 1.0f64;
        for (j, &e) in ext.iter().enumerate() {
            prod *= e;
            let edge = (prod / cells_wanted).powf(1.0 / (j + 1) as f64);
            let next = ext.get(j + 1).copied().unwrap_or(0.0);
            if edge >= next {
                cell_edge = edge.max(1e-12);
                break;
            }
        }
        let mut grid = Grid {
            cells: HashMap::new(),
            origin: bounds.lo,
            cell_edge,
            cell_lo: [i32::MAX; D],
            cell_hi: [i32::MIN; D],
        };
        // Bucket row-wise first, then freeze each bucket into its SoA
        // layout (column-major layouts cannot grow a point at a time).
        let mut buckets: HashMap<[i32; D], Vec<(u64, Point<D>)>> = HashMap::new();
        for &(oid, p) in s {
            let c = grid.cell_of(&p);
            for d in 0..D {
                grid.cell_lo[d] = grid.cell_lo[d].min(c[d]);
                grid.cell_hi[d] = grid.cell_hi[d].max(c[d]);
            }
            buckets.entry(c).or_default().push((oid, p));
        }
        grid.cells = buckets
            .into_iter()
            .map(|(c, pts)| (c, CellSoa::from_points(pts)))
            .collect();
        grid
    }

    /// Chebyshev distance from `home` to the farthest occupied cell —
    /// rings beyond this are guaranteed empty.
    fn max_ring_from(&self, home: &[i32; D]) -> i32 {
        let mut reach = 0i32;
        for d in 0..D {
            reach = reach
                .max((home[d] - self.cell_lo[d]).abs())
                .max((self.cell_hi[d] - home[d]).abs());
        }
        reach
    }

    /// Chebyshev distance from `home` to the *nearest* occupied-box cell —
    /// all smaller rings are guaranteed empty, so the search starts here.
    fn min_ring_from(&self, home: &[i32; D]) -> i32 {
        let mut need = 0i32;
        for d in 0..D {
            if home[d] < self.cell_lo[d] {
                need = need.max(self.cell_lo[d] - home[d]);
            } else if home[d] > self.cell_hi[d] {
                need = need.max(home[d] - self.cell_hi[d]);
            }
        }
        need
    }

    fn cell_of(&self, p: &Point<D>) -> [i32; D] {
        let mut c = [0i32; D];
        for d in 0..D {
            c[d] = ((p[d] - self.origin[d]) / self.cell_edge).floor() as i32;
        }
        c
    }

    /// Visits every cell at Chebyshev distance exactly `ring` from `home`.
    fn for_ring(&self, home: &[i32; D], ring: i32, mut f: impl FnMut(&CellSoa<D>)) {
        let mut offset = [0i32; D];
        self.ring_rec(home, ring, 0, false, &mut offset, &mut f);
    }

    fn ring_rec(
        &self,
        home: &[i32; D],
        ring: i32,
        dim: usize,
        pinned: bool,
        offset: &mut [i32; D],
        f: &mut impl FnMut(&CellSoa<D>),
    ) {
        if dim == D {
            if !pinned {
                return; // interior cell: belongs to a smaller ring
            }
            let mut cell = *home;
            for d in 0..D {
                cell[d] += offset[d];
            }
            if let Some(points) = self.cells.get(&cell) {
                f(points);
            }
            return;
        }
        // Clip the offset range to the occupied cell box: rings mostly
        // outside the box would otherwise enumerate millions of empty
        // cells on skewed data.
        let lo = (-ring).max(self.cell_lo[dim] - home[dim]);
        let hi = ring.min(self.cell_hi[dim] - home[dim]);
        for o in lo..=hi {
            offset[dim] = o;
            self.ring_rec(home, ring, dim + 1, pinned || o.abs() == ring, offset, f);
        }
    }
}

/// Evaluates AkNN without any index: spatial-hash `S`, ring-search per
/// query point.
#[deprecated(
    since = "0.1.0",
    note = "thin delegate kept for compatibility; use ann_core::query::run / run_scratch (or the *_guarded canonical path)"
)]
pub fn hnn<const D: usize>(
    r: &[(u64, Point<D>)],
    s: &[(u64, Point<D>)],
    cfg: &HnnConfig,
) -> QueryResult<AnnOutput> {
    hnn_guarded(
        r,
        s,
        cfg,
        Tracer::disabled(),
        &mut QueryScratch::new(),
        &QueryGuard::disabled(),
    )
}

/// [`hnn`] with an attached [`Tracer`]. HNN reads no buffer pool, so its
/// span I/O deltas are all-zero; the interesting signals are the phase
/// wall times (grid build vs ring search) and the ring-cutoff prunes.
/// With `Tracer::disabled()` this is exactly [`hnn`].
#[deprecated(
    since = "0.1.0",
    note = "thin delegate kept for compatibility; use ann_core::query::run / run_scratch (or the *_guarded canonical path)"
)]
pub fn hnn_traced<const D: usize>(
    r: &[(u64, Point<D>)],
    s: &[(u64, Point<D>)],
    cfg: &HnnConfig,
    tracer: Tracer<'_>,
) -> QueryResult<AnnOutput> {
    hnn_guarded(r, s, cfg, tracer, &mut QueryScratch::new(), &QueryGuard::disabled())
}

/// [`hnn_traced`] with a caller-owned [`QueryScratch`] — per-query k-best
/// heaps and the cell distance buffer are recycled across query points.
#[deprecated(
    since = "0.1.0",
    note = "thin delegate kept for compatibility; use ann_core::query::run / run_scratch (or the *_guarded canonical path)"
)]
pub fn hnn_traced_scratch<const D: usize>(
    r: &[(u64, Point<D>)],
    s: &[(u64, Point<D>)],
    cfg: &HnnConfig,
    tracer: Tracer<'_>,
    scratch: &mut QueryScratch<D>,
) -> QueryResult<AnnOutput> {
    hnn_guarded(r, s, cfg, tracer, scratch, &QueryGuard::disabled())
}

/// [`hnn_traced_scratch`] under a [`QueryGuard`]. HNN performs no I/O, so
/// an I/O budget never trips here; cancellation, deadlines and the visit
/// budget are checked once per query point (the poolless analogue of one
/// node expansion).
pub fn hnn_guarded<const D: usize>(
    r: &[(u64, Point<D>)],
    s: &[(u64, Point<D>)],
    cfg: &HnnConfig,
    tracer: Tracer<'_>,
    scratch: &mut QueryScratch<D>,
    guard: &QueryGuard<'_>,
) -> QueryResult<AnnOutput> {
    assert!(cfg.avg_cell_occupancy > 0.0);
    let mut out = AnnOutput::default();
    if cfg.k == 0 || r.is_empty() || s.is_empty() {
        guard.tick()?;
        return Ok(out);
    }
    let span_q = tracer.span_enter(Phase::Query, IoSnapshot::default);
    let abort_phase = std::cell::Cell::new(Phase::Query.name());
    let walk = (|out: &mut AnnOutput| -> QueryResult<()> {
        guard.tick()?;
        let span_b = tracer.span_enter(Phase::Build, IoSnapshot::default);
        abort_phase.set(Phase::Build.name());
        let grid = Grid::build(s, cfg.avg_cell_occupancy);
        tracer.span_exit(Phase::Build, span_b, IoSnapshot::default);
        let k_eff = cfg.k + usize::from(cfg.exclude_self);
        let span_j = tracer.span_enter(Phase::Join, IoSnapshot::default);
        abort_phase.set(Phase::Join.name());
        let mut rings_cut_total = 0u64;
        let mut dist_buf = scratch.take_f64();

        let join = (|| -> QueryResult<()> {
            for &(r_oid, r_pt) in r {
                guard.tick()?;
                run_point(
                    r_oid,
                    r_pt,
                    s,
                    cfg,
                    k_eff,
                    &grid,
                    out,
                    tracer,
                    &mut rings_cut_total,
                    &mut dist_buf,
                    scratch,
                );
            }
            Ok(())
        })();
        scratch.put_f64(dist_buf);
        if rings_cut_total > 0 {
            tracer.event(|| TraceEvent::Pruned {
                metric: "euclidean",
                reason: PruneReason::RingCutoff,
                count: rings_cut_total,
            });
        }
        tracer.span_exit(Phase::Join, span_j, IoSnapshot::default);
        join
    })(&mut out);
    tracer.span_exit(Phase::Query, span_q, IoSnapshot::default);
    match walk {
        Ok(()) => Ok(out),
        Err(e) => {
            tracer.event(|| TraceEvent::QueryAborted {
                reason: e.reason(),
                phase: abort_phase.get(),
            });
            Err(attach_partial_stats(e, &out.stats))
        }
    }
}

/// [`hnn_guarded`] with the per-point ring searches fanned out over the
/// shared morsel engine ([`crate::par::run_workers`]).
///
/// The grid build stays serial (one pass over `S`, shared read-only by
/// every worker); morsels are [`crate::morsel::POINT_MORSEL`]-sized
/// slices of `R`. Each point's ring search touches only its own heap and
/// buffers, so per-point results are independent of scheduling and the
/// engine's canonical merge makes the output byte-identical to (sorted)
/// serial at any thread count.
pub fn hnn_parallel_guarded<const D: usize>(
    r: &[(u64, Point<D>)],
    s: &[(u64, Point<D>)],
    cfg: &HnnConfig,
    threads: usize,
    tracer: Tracer<'_>,
    guard: &QueryGuard<'_>,
) -> QueryResult<AnnOutput> {
    assert!(cfg.avg_cell_occupancy > 0.0);
    let mut out = AnnOutput::default();
    if cfg.k == 0 || r.is_empty() || s.is_empty() {
        guard.tick()?;
        return Ok(out);
    }
    let threads = crate::morsel::resolve_threads(threads);
    if threads <= 1 {
        let mut out = hnn_guarded(r, s, cfg, tracer, &mut QueryScratch::new(), guard)?;
        out.sort();
        return Ok(out);
    }
    let span_q = tracer.span_enter(Phase::Query, IoSnapshot::default);
    let abort_phase = std::cell::Cell::new(Phase::Query.name());
    let walk = (|out: &mut AnnOutput| -> QueryResult<()> {
        guard.tick()?;
        let span_b = tracer.span_enter(Phase::Build, IoSnapshot::default);
        abort_phase.set(Phase::Build.name());
        let grid = Grid::build(s, cfg.avg_cell_occupancy);
        tracer.span_exit(Phase::Build, span_b, IoSnapshot::default);
        let k_eff = cfg.k + usize::from(cfg.exclude_self);
        let span_j = tracer.span_enter(Phase::Join, IoSnapshot::default);
        abort_phase.set(Phase::Join.name());
        let seeds = crate::morsel::chunk_ranges(r.len(), crate::morsel::POINT_MORSEL);
        let grid = &grid;
        let (pout, err) = crate::par::run_workers(threads, seeds, tracer, |h| {
            let mut scratch = QueryScratch::new();
            let mut wout = AnnOutput::default();
            let mut rings_cut_total = 0u64;
            let mut dist_buf = scratch.take_f64();
            let wt = h.tracer();
            let join = (|| -> QueryResult<()> {
                while let Some(range) = h.pop() {
                    let step = (|| -> QueryResult<()> {
                        for &(r_oid, r_pt) in &r[range.clone()] {
                            guard.tick()?;
                            run_point(
                                r_oid,
                                r_pt,
                                s,
                                cfg,
                                k_eff,
                                grid,
                                &mut wout,
                                wt,
                                &mut rings_cut_total,
                                &mut dist_buf,
                                &mut scratch,
                            );
                        }
                        Ok(())
                    })();
                    h.complete();
                    step?;
                }
                Ok(())
            })();
            scratch.put_f64(dist_buf);
            if rings_cut_total > 0 {
                wt.event(|| TraceEvent::Pruned {
                    metric: "euclidean",
                    reason: PruneReason::RingCutoff,
                    count: rings_cut_total,
                });
            }
            (wout, join)
        });
        *out = pout;
        tracer.span_exit(Phase::Join, span_j, IoSnapshot::default);
        match err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    })(&mut out);
    tracer.span_exit(Phase::Query, span_q, IoSnapshot::default);
    match walk {
        Ok(()) => Ok(out),
        Err(e) => {
            tracer.event(|| TraceEvent::QueryAborted {
                reason: e.reason(),
                phase: abort_phase.get(),
            });
            Err(attach_partial_stats(e, &out.stats))
        }
    }
}

/// The ring search for one query point (the body of the [`hnn`] join
/// loop, factored out so the guarded entrypoint stays readable).
#[allow(clippy::too_many_arguments)]
fn run_point<const D: usize>(
    r_oid: u64,
    r_pt: Point<D>,
    s: &[(u64, Point<D>)],
    cfg: &HnnConfig,
    k_eff: usize,
    grid: &Grid<D>,
    out: &mut AnnOutput,
    tracer: Tracer<'_>,
    rings_cut_total: &mut u64,
    dist_buf: &mut Vec<f64>,
    scratch: &mut QueryScratch<D>,
) {
    {
        let home = grid.cell_of(&r_pt);
        let max_ring = grid.max_ring_from(&home);
        let mut best = scratch.take_kbest();
        let mut ring = grid.min_ring_from(&home);
        let mut seen = 0usize;
        loop {
            // The nearest any point of ring ρ can be is (ρ-1) cell edges
            // (the query may sit on its own cell's boundary).
            let ring_min = (ring - 1).max(0) as f64 * grid.cell_edge;
            let bound_sq = if best.len() < k_eff {
                f64::INFINITY
            } else {
                best.peek().expect("non-empty").dist_sq
            };
            if ring_min * ring_min > bound_sq {
                if tracer.enabled() && ring <= max_ring {
                    // Rings `ring..=max_ring` are never visited.
                    *rings_cut_total += (max_ring - ring + 1) as u64;
                }
                break;
            }
            grid.for_ring(&home, ring, |cell| {
                seen += cell.len();
                // One kernel call per cell; an excluded self-pair's
                // distance lands in the buffer but is never offered or
                // counted, exactly like the scalar skip.
                kernels::dist_sq_batch(&r_pt, &cell.points(), dist_buf);
                for (i, &s_oid) in cell.oids.iter().enumerate() {
                    if cfg.exclude_self && s_oid == r_oid {
                        continue;
                    }
                    out.stats.distance_computations += 1;
                    let cand = KBest {
                        dist_sq: dist_buf[i],
                        s_oid,
                    };
                    if best.len() < k_eff {
                        best.push(cand);
                    } else if cand < *best.peek().expect("non-empty") {
                        // Lexicographic (dist_sq, s_oid): equal-distance
                        // candidates with smaller oids must win, matching
                        // the canonical brute-force tie-break.
                        best.pop();
                        best.push(cand);
                    }
                }
            });
            ring += 1;
            // Beyond the farthest occupied cell every further ring is
            // empty — and once every point of S has been seen, no ring
            // can add candidates (`k_eff ≥ |S|` never yields a finite
            // bound, so this is the only cutoff that fires there).
            if ring > max_ring || seen >= s.len() {
                break;
            }
        }

        let mut hits: Vec<KBest> = best.into_vec();
        hits.sort_by(|a, b| {
            (a.dist_sq, a.s_oid)
                .partial_cmp(&(b.dist_sq, b.s_oid))
                .expect("finite")
        });
        for h in hits.iter().take(cfg.k) {
            out.results.push(NeighborPair {
                r_oid,
                s_oid: h.s_oid,
                dist: h.dist_sq.sqrt(),
            });
        }
        scratch.put_kbest(BinaryHeap::from(hits));
    }
}

#[cfg(test)]
// The deprecated `hnn` delegate is exercised on purpose: it must stay
// identical to the guarded canonical path.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::brute::brute_force_aknn;

    fn pts(n: usize, seed: u64) -> Vec<(u64, Point<2>)> {
        // Simple LCG so this module needs no dev-deps.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| (i as u64, Point::new([next() * 100.0, next() * 100.0])))
            .collect()
    }

    fn check(r: &[(u64, Point<2>)], s: &[(u64, Point<2>)], cfg: &HnnConfig) {
        let mut got = hnn(r, s, cfg).unwrap();
        got.sort();
        let mut want = brute_force_aknn(r, s, cfg.k, cfg.exclude_self);
        want.sort_by(|a, b| {
            (a.r_oid, a.dist, a.s_oid)
                .partial_cmp(&(b.r_oid, b.dist, b.s_oid))
                .unwrap()
        });
        assert_eq!(got.results.len(), want.len());
        for (g, w) in got.results.iter().zip(&want) {
            assert_eq!(g.r_oid, w.r_oid);
            assert!((g.dist - w.dist).abs() < 1e-9, "{g:?} vs {w:?}");
        }
    }

    #[test]
    fn matches_brute_force() {
        let r = pts(500, 1);
        let s = pts(600, 2);
        check(&r, &s, &HnnConfig::default());
    }

    #[test]
    fn matches_brute_force_k5_self_join() {
        let p = pts(400, 3);
        check(
            &p,
            &p,
            &HnnConfig {
                k: 5,
                exclude_self: true,
                ..Default::default()
            },
        );
    }

    #[test]
    fn skewed_data_still_exact() {
        // All of S crammed into one corner: the hot-cell weakness the
        // paper mentions — slow, but must stay exact.
        let r = pts(200, 4);
        let s: Vec<(u64, Point<2>)> = pts(500, 5)
            .into_iter()
            .map(|(o, p)| (o, Point::new([p[0] * 0.01, p[1] * 0.01])))
            .collect();
        check(&r, &s, &HnnConfig::default());
    }

    #[test]
    fn k_exceeding_cardinality() {
        let r = pts(50, 6);
        let s = pts(5, 7);
        check(
            &r,
            &s,
            &HnnConfig {
                k: 20,
                ..Default::default()
            },
        );
    }

    #[test]
    fn empty_inputs() {
        let p = pts(10, 8);
        let empty_r = hnn::<2>(&[], &p, &HnnConfig::default()).unwrap();
        assert!(empty_r.results.is_empty());
        let empty_s = hnn::<2>(&p, &[], &HnnConfig::default()).unwrap();
        assert!(empty_s.results.is_empty());
    }

    #[test]
    fn occupancy_knob_is_performance_only() {
        let r = pts(300, 9);
        let s = pts(300, 10);
        for occ in [1.0, 8.0, 64.0] {
            check(
                &r,
                &s,
                &HnnConfig {
                    avg_cell_occupancy: occ,
                    ..Default::default()
                },
            );
        }
    }
}
