//! The **MBA** algorithm (paper §3.3.2, Algorithms 2-4) and its traversal /
//! expansion variants (§3.3.2's four-way design space).
//!
//! [`mba`] evaluates ANN (or AkNN for `k > 1`) between two indexed point
//! sets by descending both indices simultaneously. Each reached entry of
//! the query index `I_R` owns a [`Lpq`] of candidate `I_S` entries; the
//! `ExpandAndPrune` equivalent in this module applies the Three-Stage
//! pruning of §3.3.3:
//!
//! * **Expand stage** — an internal owner spawns one child LPQ per child
//!   entry (inheriting the parent's bound), then drains its own queue,
//!   probing each drained entry (or, under bi-directional expansion, that
//!   entry's children) against every child LPQ;
//! * **Filter stage** — inside [`Lpq::try_enqueue`]: queued entries whose
//!   `MIND` exceeds a newly tightened bound are evicted;
//! * **Gather stage** — an object owner drains its queue in `MIND` order;
//!   the first `k` objects popped are its `k` nearest neighbors.
//!
//! The function is generic over the index type — run it over MBRQT indices
//! and it is the paper's MBA; over R*-trees it is **RBA** — and over the
//! pruning metric ([`ann_geom::NxnDist`] vs [`ann_geom::MaxMaxDist`]),
//! which is the comparison of Figure 3(a).

use crate::index::SpatialIndex;
use crate::lpq::{distances_within, Lpq, QueuedEntry};
use crate::node::{DecodedNode, Entry, NodeEntry};
use crate::resilience::{attach_partial_stats, QueryError, QueryGuard, QueryResult};
use crate::scratch::QueryScratch;
use crate::stats::{AnnOutput, NeighborPair};
use crate::trace::{Phase, PruneReason, Side, TraceEvent, Tracer};
use ann_geom::{kernels, PruneMetric};
use std::collections::VecDeque;

/// Index traversal order for the query-side recursion (§3.3.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Traversal {
    /// Depth-first: recurse into each child LPQ before its siblings —
    /// the paper's choice (bounded memory, maximal locality).
    #[default]
    DepthFirst,
    /// Breadth-first: process LPQs level by level from a global FIFO.
    BreadthFirst,
}

/// Node-expansion strategy (§3.3.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Expansion {
    /// Bi-directional: when an `I_R` node is expanded, drained `I_S` node
    /// entries are expanded too (synchronous descent) — the paper's choice.
    #[default]
    Bidirectional,
    /// Uni-directional: only `I_R` descends during the Expand stage;
    /// `I_S` entries are re-probed unexpanded and only open up during the
    /// Gather stage.
    Unidirectional,
}

/// Configuration for [`mba`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MbaConfig {
    /// Number of nearest neighbors per query object (`k = 1` is ANN).
    pub k: usize,
    /// Query-side traversal order.
    pub traversal: Traversal,
    /// Node-expansion strategy.
    pub expansion: Expansion,
    /// Self-join mode: skip the pair `(r, s)` when both sides carry the
    /// same object id. The pruning bound is computed for `k + 1` neighbors
    /// internally so that excluding the self match never starves a query.
    pub exclude_self: bool,
}

impl Default for MbaConfig {
    fn default() -> Self {
        MbaConfig {
            k: 1,
            traversal: Traversal::DepthFirst,
            expansion: Expansion::Bidirectional,
            exclude_self: false,
        }
    }
}

struct Ctx<'a, const D: usize, M: PruneMetric, IS: SpatialIndex<D>> {
    is: &'a IS,
    cfg: MbaConfig,
    /// `cfg.k`, plus one in self-join mode (the self match may have to be
    /// discarded, so bounds must guarantee one extra candidate).
    k_eff: usize,
    out: AnnOutput,
    tracer: Tracer<'a>,
    /// Of `out.stats.pruned_on_probe`, how many came from the parent-level
    /// rejection in [`Ctx::expand`]. Tallied only while tracing, to split
    /// the prune-reason breakdown without a new `AnnStats` field.
    parent_rejects: u64,
    /// Buffer arena for LPQ storage, traversal queues and kernel outputs.
    scratch: &'a mut QueryScratch<D>,
    /// Checked-out kernel output buffers (returned by [`Ctx::finish`]).
    mind_buf: Vec<f64>,
    maxd_buf: Vec<f64>,
    /// Checked-out readahead hint buffer: child pages a decision loop has
    /// just committed to visit, handed to the `I_S` pool's prefetcher.
    hint_buf: Vec<(ann_store::PageId, u32)>,
    _metric: std::marker::PhantomData<M>,
}

impl<'a, const D: usize, M: PruneMetric, IS: SpatialIndex<D>> Ctx<'a, D, M, IS> {
    fn new(is: &'a IS, cfg: &MbaConfig, tracer: Tracer<'a>, scratch: &'a mut QueryScratch<D>) -> Self {
        let mind_buf = scratch.take_f64();
        let maxd_buf = scratch.take_f64();
        let hint_buf = scratch.take_hints();
        Ctx {
            is,
            cfg: *cfg,
            k_eff: cfg.k + usize::from(cfg.exclude_self),
            out: AnnOutput::default(),
            tracer,
            parent_rejects: 0,
            scratch,
            mind_buf,
            maxd_buf,
            hint_buf,
            _metric: std::marker::PhantomData,
        }
    }

    /// Returns the checked-out buffers to the arena and yields the output.
    fn finish(self) -> AnnOutput {
        let Ctx {
            scratch,
            mind_buf,
            maxd_buf,
            hint_buf,
            out,
            ..
        } = self;
        scratch.put_f64(mind_buf);
        scratch.put_f64(maxd_buf);
        scratch.put_hints(hint_buf);
        out
    }

    /// Probes `target` against `lpq`, computing distances and enqueueing
    /// when the probe test passes.
    fn probe(&mut self, lpq: &mut Lpq<D>, target: Entry<D>) {
        self.out.stats.distance_computations += 1;
        // Early-exit Distances: `None` iff try_enqueue would reject on the
        // probe test, so the decision (and every counter) is identical to
        // the full computation — only the arithmetic for hopeless entries
        // is skipped.
        let Some((mind_sq, maxd_sq)) =
            distances_within::<D, M>(&lpq.owner, &target, lpq.prune_threshold_sq())
        else {
            self.out.stats.pruned_on_probe += 1;
            return;
        };
        let (accepted, filtered) = lpq.try_enqueue(QueuedEntry {
            mind_sq,
            maxd_sq,
            entry: target,
        });
        if accepted {
            self.out.stats.enqueued += 1;
        } else {
            self.out.stats.pruned_on_probe += 1;
        }
        self.out.stats.pruned_in_queue += filtered;
    }

    /// Probes every entry of a decoded `I_S` node against `lpq` with the
    /// batched SoA kernels instead of one [`Ctx::probe`] per entry.
    ///
    /// Per-candidate `(MIND², MAXD²)` values are bit-identical to the
    /// scalar path's ([`ann_geom::kernels`]' contract), and the
    /// accept/reject decisions are then applied *sequentially* under the
    /// same evolving bound the scalar probe sequence would see, so queue
    /// contents and every counter match exactly. The scalar path computes
    /// `MAXD` only for surviving entries and early-exits `MIND`; the batch
    /// computes both in full for all entries — pure value computation with
    /// no observable effect, traded for the SoA scan's throughput.
    fn probe_node(&mut self, lpq: &mut Lpq<D>, node: &DecodedNode<D>) {
        let om = lpq.owner.mbr();
        let cols = node.soa_mbrs();
        kernels::min_min_dist_sq_batch(&om, &cols, &mut self.mind_buf);
        M::upper_sq_batch(&om, &cols, &mut self.maxd_buf);
        // Readahead: accepted child pages are handed to the prefetcher
        // after the loop. Hint collection reads no traversal state and
        // mutates none — decisions and counters are identical either way.
        let hinting = self.is.pool().prefetch_enabled();
        for (i, e) in node.entries.iter().enumerate() {
            self.out.stats.distance_computations += 1;
            // Same rejection `distances_within` performs, against the same
            // threshold the scalar probe would read at this point.
            if self.mind_buf[i] > lpq.prune_threshold_sq() {
                self.out.stats.pruned_on_probe += 1;
                continue;
            }
            let (accepted, filtered) = lpq.try_enqueue(QueuedEntry {
                mind_sq: self.mind_buf[i],
                maxd_sq: self.maxd_buf[i],
                entry: *e,
            });
            if accepted {
                self.out.stats.enqueued += 1;
                if hinting {
                    if let Entry::Node(n) = e {
                        // First touch only: a node-cached page is served
                        // without a pool read, so hinting it would be pure
                        // wasted disk I/O.
                        if !self.is.node_is_cached(n.page) {
                            self.hint_buf
                                .push((n.page, crate::readahead::depth_priority(n.count)));
                        }
                    }
                }
            } else {
                self.out.stats.pruned_on_probe += 1;
            }
            self.out.stats.pruned_in_queue += filtered;
        }
        crate::readahead::submit(self.is.pool(), &mut self.hint_buf);
    }

    /// The Gather stage: `lpq.owner` is a data object; drain in `MIND`
    /// order and report the first `k` objects popped.
    fn gather(&mut self, guard: &QueryGuard<'_>, mut lpq: Lpq<D>) -> QueryResult<()> {
        let Entry::Object(owner) = lpq.owner else {
            unreachable!("gather called with a node owner")
        };
        let mut found = 0;
        while let Some(q) = lpq.dequeue() {
            match q.entry {
                Entry::Object(s) => {
                    if self.cfg.exclude_self && s.oid == owner.oid {
                        continue;
                    }
                    self.out.results.push(NeighborPair {
                        r_oid: owner.oid,
                        s_oid: s.oid,
                        dist: q.mind_sq.sqrt(),
                    });
                    lpq.satisfy_one();
                    found += 1;
                    if found == self.cfg.k {
                        break;
                    }
                }
                Entry::Node(n) => {
                    guard.tick()?;
                    let node = self.is.read_node_cached(n.page)?;
                    self.out.stats.s_nodes_expanded += 1;
                    self.tracer.node_expanded(Side::S, n.page, &node.entries);
                    self.probe_node(&mut lpq, &node);
                }
            }
        }
        self.trace_lpq_retired(&lpq);
        self.scratch.put_entries(lpq.into_storage());
        Ok(())
    }

    /// Emits the queue-lifecycle summary for a retired object LPQ.
    #[inline]
    fn trace_lpq_retired(&self, lpq: &Lpq<D>) {
        self.tracer.event(|| TraceEvent::LpqRetired {
            enqueued: lpq.enqueued_total(),
            filtered: lpq.filtered_total(),
            high_water: lpq.high_water(),
        });
    }

    /// The Expand stage: `lpq.owner` is an internal `I_R` node; spawn one
    /// child LPQ per child entry and redistribute the drained queue.
    fn expand<IR: SpatialIndex<D>>(
        &mut self,
        ir: &IR,
        guard: &QueryGuard<'_>,
        mut lpq: Lpq<D>,
        queue: &mut VecDeque<Lpq<D>>,
    ) -> QueryResult<()> {
        let Entry::Node(owner) = lpq.owner else {
            unreachable!("expand called with an object owner")
        };
        guard.tick()?;
        let node = ir.read_node_cached(owner.page)?;
        self.out.stats.r_nodes_expanded += 1;
        self.tracer.node_expanded(Side::R, owner.page, &node.entries);
        let inherited = lpq.bound_sq();
        let mut children = self.scratch.take_lpq_list();
        for c in node.entries.iter() {
            let storage = self.scratch.take_entries();
            children.push(Lpq::new_in(*c, self.k_eff, inherited, storage));
        }
        self.out.stats.lpqs_created += children.len() as u64;

        while let Some(q) = lpq.dequeue() {
            // Algorithm 4 lines 13-18: a popped entry is only worth
            // processing if its MIND passes at least one child LPQ's MAXD —
            // MIND against the parent owner lower-bounds MIND against every
            // child, so this rejection is safe and saves the node read.
            if children.iter().all(|c| c.prunes(q.mind_sq)) {
                self.out.stats.pruned_on_probe += 1;
                if self.tracer.enabled() {
                    self.parent_rejects += 1;
                }
                continue;
            }
            match (self.cfg.expansion, q.entry) {
                (Expansion::Bidirectional, Entry::Node(n)) => {
                    // Bi-directional: descend the I_S side one level too.
                    guard.tick()?;
                    let s_node = self.is.read_node_cached(n.page)?;
                    self.out.stats.s_nodes_expanded += 1;
                    self.tracer.node_expanded(Side::S, n.page, &s_node.entries);
                    // The scalar path iterated entry-outer / child-inner;
                    // batching flips that so each child scans the node's SoA
                    // columns once. Children are independent queues, so each
                    // child still sees the same entries in the same order
                    // under the same own-bound evolution, and the summed
                    // counters are nesting-order-invariant: decisions and
                    // stats are unchanged.
                    for child in children.iter_mut() {
                        self.probe_node(child, &s_node);
                    }
                }
                // Objects cannot be expanded; under uni-directional
                // expansion nodes are re-probed as-is.
                (_, entry) => {
                    for child in children.iter_mut() {
                        self.probe(child, entry);
                    }
                }
            }
        }

        // Algorithm 4 line 19: enqueue all non-empty child LPQs; empty
        // ones hand their storage straight back to the arena, as does the
        // fully drained parent.
        for child in children.drain(..) {
            if !child.is_empty() {
                queue.push_back(child);
            } else {
                self.scratch.put_entries(child.into_storage());
            }
        }
        self.scratch.put_lpq_list(children);
        self.scratch.put_entries(lpq.into_storage());
        Ok(())
    }

    /// One `ExpandAndPrune` step (Algorithm 4): dispatches on the owner.
    fn expand_and_prune<IR: SpatialIndex<D>>(
        &mut self,
        ir: &IR,
        guard: &QueryGuard<'_>,
        lpq: Lpq<D>,
        queue: &mut VecDeque<Lpq<D>>,
    ) -> QueryResult<()> {
        match lpq.owner {
            Entry::Object(_) => self.gather(guard, lpq),
            Entry::Node(_) => self.expand(ir, guard, lpq, queue),
        }
    }

    /// `ANN-DFBI` (Algorithm 3): depth-first recursion over child LPQs.
    fn dfbi<IR: SpatialIndex<D>>(
        &mut self,
        ir: &IR,
        guard: &QueryGuard<'_>,
        lpq: Lpq<D>,
    ) -> QueryResult<()> {
        let mut queue = self.scratch.take_lpq_queue();
        let walk = (|| -> QueryResult<()> {
            self.expand_and_prune(ir, guard, lpq, &mut queue)?;
            while let Some(child) = queue.pop_front() {
                self.dfbi(ir, guard, child)?;
            }
            Ok(())
        })();
        // On abort the queue may still hold live LPQs; hand their storage
        // (and the queue itself) back so the scratch stays reusable.
        for child in queue.drain(..) {
            self.scratch.put_entries(child.into_storage());
        }
        self.scratch.put_lpq_queue(queue);
        walk
    }

    /// One parallel morsel: object-owned LPQs and small node-owned
    /// subtrees are finished inline with the exact serial recursion
    /// ([`Ctx::dfbi`]); a large node-owned subtree is split by one
    /// `ExpandAndPrune` step, its child LPQs published to the pool as
    /// fresh stealable morsels. Each child inherits the parent's bound at
    /// creation and never reads shared mutable state afterwards, so its
    /// results are identical no matter which worker runs it, or when.
    fn morsel_step<IR: SpatialIndex<D>>(
        &mut self,
        ir: &IR,
        guard: &QueryGuard<'_>,
        lpq: Lpq<D>,
        children: &mut VecDeque<Lpq<D>>,
        h: &crate::par::WorkerHandle<'_, Lpq<D>>,
    ) -> QueryResult<()> {
        let split = match lpq.owner {
            Entry::Object(_) => false,
            Entry::Node(n) => n.count > crate::morsel::INLINE_SUBTREE_OBJECTS,
        };
        if !split {
            return self.dfbi(ir, guard, lpq);
        }
        self.expand_and_prune(ir, guard, lpq, children)?;
        for child in children.drain(..) {
            h.push(child);
        }
        Ok(())
    }

    /// Emits this context's prune-reason breakdown. Safe to call from
    /// several worker contexts sharing one sink: the sink sums the counts.
    fn emit_prune_summary(&self) {
        if !self.tracer.enabled() {
            return;
        }
        let s = &self.out.stats;
        let on_probe = s.pruned_on_probe - self.parent_rejects;
        for (reason, count) in [
            (PruneReason::OnProbe, on_probe),
            (PruneReason::ParentReject, self.parent_rejects),
            (PruneReason::InQueue, s.pruned_in_queue),
        ] {
            if count > 0 {
                self.tracer.event(|| TraceEvent::Pruned {
                    metric: M::NAME,
                    reason,
                    count,
                });
            }
        }
    }
}

/// Evaluates the all-`k`-nearest-neighbor join: for every point indexed by
/// `ir`, find its `cfg.k` nearest neighbors among the points indexed by
/// `is` (paper Algorithm 2).
///
/// With the default configuration this is the paper's MBA/RBA algorithm
/// (depth-first, bi-directional); other [`Traversal`] × [`Expansion`]
/// combinations reproduce the §3.3.2 design-space ablation.
#[deprecated(
    since = "0.1.0",
    note = "thin delegate kept for compatibility; use ann_core::query::run / run_scratch (or the *_guarded canonical path)"
)]
pub fn mba<const D: usize, M, IR, IS>(ir: &IR, is: &IS, cfg: &MbaConfig) -> QueryResult<AnnOutput>
where
    M: PruneMetric,
    IR: SpatialIndex<D>,
    IS: SpatialIndex<D>,
{
    mba_guarded::<D, M, IR, IS>(
        ir,
        is,
        cfg,
        Tracer::disabled(),
        &mut QueryScratch::new(),
        &QueryGuard::disabled(),
    )
}

/// [`mba`] with an attached [`Tracer`]. With `Tracer::disabled()` this is
/// exactly [`mba`]: every instrumentation site is guarded, so decisions,
/// counters and physical page-op order are identical.
#[deprecated(
    since = "0.1.0",
    note = "thin delegate kept for compatibility; use ann_core::query::run / run_scratch (or the *_guarded canonical path)"
)]
pub fn mba_traced<const D: usize, M, IR, IS>(
    ir: &IR,
    is: &IS,
    cfg: &MbaConfig,
    tracer: Tracer<'_>,
) -> QueryResult<AnnOutput>
where
    M: PruneMetric,
    IR: SpatialIndex<D>,
    IS: SpatialIndex<D>,
{
    mba_guarded::<D, M, IR, IS>(
        ir,
        is,
        cfg,
        tracer,
        &mut QueryScratch::new(),
        &QueryGuard::disabled(),
    )
}

/// [`mba`] with a caller-owned [`QueryScratch`]: repeated queries through
/// the same arena reach an allocation-free steady state. Results, stats
/// and page-op order are identical to [`mba`].
#[deprecated(
    since = "0.1.0",
    note = "thin delegate kept for compatibility; use ann_core::query::run / run_scratch (or the *_guarded canonical path)"
)]
pub fn mba_scratch<const D: usize, M, IR, IS>(
    ir: &IR,
    is: &IS,
    cfg: &MbaConfig,
    scratch: &mut QueryScratch<D>,
) -> QueryResult<AnnOutput>
where
    M: PruneMetric,
    IR: SpatialIndex<D>,
    IS: SpatialIndex<D>,
{
    mba_guarded::<D, M, IR, IS>(ir, is, cfg, Tracer::disabled(), scratch, &QueryGuard::disabled())
}

/// [`mba_traced`] with a caller-owned [`QueryScratch`] — delegates to
/// [`mba_guarded`] with resilience checks disabled.
#[deprecated(
    since = "0.1.0",
    note = "thin delegate kept for compatibility; use ann_core::query::run / run_scratch (or the *_guarded canonical path)"
)]
pub fn mba_traced_scratch<const D: usize, M, IR, IS>(
    ir: &IR,
    is: &IS,
    cfg: &MbaConfig,
    tracer: Tracer<'_>,
    scratch: &mut QueryScratch<D>,
) -> QueryResult<AnnOutput>
where
    M: PruneMetric,
    IR: SpatialIndex<D>,
    IS: SpatialIndex<D>,
{
    mba_guarded::<D, M, IR, IS>(ir, is, cfg, tracer, scratch, &QueryGuard::disabled())
}

/// [`mba_traced_scratch`] under a [`QueryGuard`] — the fully general serial
/// entrypoint the other serial variants delegate to.
///
/// The guard is consulted once before the traversal starts (so a
/// pre-cancelled request returns without touching either index) and then
/// before every node read, bounding abort latency to one node expansion.
/// On abort the open trace spans are closed, a
/// [`TraceEvent::QueryAborted`] records the reason and phase, every
/// checked-out scratch buffer returns to the arena, and — because node
/// reads pin pages only for the duration of the copy — no buffer-pool pin
/// outlives the call. [`QueryError::BudgetExhausted`] carries the counters
/// accumulated up to the abort point.
pub fn mba_guarded<const D: usize, M, IR, IS>(
    ir: &IR,
    is: &IS,
    cfg: &MbaConfig,
    tracer: Tracer<'_>,
    scratch: &mut QueryScratch<D>,
    guard: &QueryGuard<'_>,
) -> QueryResult<AnnOutput>
where
    M: PruneMetric,
    IR: SpatialIndex<D>,
    IS: SpatialIndex<D>,
{
    if cfg.k == 0 {
        guard.tick()?;
        return Ok(AnnOutput::default());
    }
    let mut ctx: Ctx<D, M, IS> = Ctx::new(is, cfg, tracer, scratch);

    let io_r0 = ir.pool().stats();
    let shared_pool = std::ptr::eq(
        ir.pool() as *const _ as *const u8,
        is.pool() as *const _ as *const u8,
    );
    let io_s0 = is.pool().stats();
    let io_now = || {
        let mut io = ir.pool().stats();
        if !shared_pool {
            io = io.merge(&is.pool().stats());
        }
        io
    };
    let span_q = tracer.span_enter(Phase::Query, io_now);
    let abort_phase = std::cell::Cell::new(Phase::Query.name());

    let walk = (|ctx: &mut Ctx<D, M, IS>| -> QueryResult<()> {
        guard.tick()?;
        if ir.num_points() == 0 || is.num_points() == 0 {
            return Ok(());
        }
        tracer.event(|| TraceEvent::Root {
            side: Side::R,
            page: ir.root_page(),
        });
        tracer.event(|| TraceEvent::Root {
            side: Side::S,
            page: is.root_page(),
        });
        let span_j = tracer.span_enter(Phase::Join, io_now);
        abort_phase.set(Phase::Join.name());
        // Algorithm 2: root LPQ owns I_R's root, seeded with I_S's root.
        let root_owner = Entry::Node(NodeEntry {
            page: ir.root_page(),
            count: ir.num_points(),
            mbr: ir.bounds(),
        });
        let storage = ctx.scratch.take_entries();
        let mut root_lpq = Lpq::new_in(root_owner, ctx.k_eff, f64::INFINITY, storage);
        ctx.out.stats.lpqs_created += 1;
        let root_target = Entry::Node(NodeEntry {
            page: is.root_page(),
            count: is.num_points(),
            mbr: is.bounds(),
        });
        ctx.probe(&mut root_lpq, root_target);

        let mut queue = ctx.scratch.take_lpq_queue();
        queue.push_back(root_lpq);
        let join = (|| -> QueryResult<()> {
            match cfg.traversal {
                Traversal::DepthFirst => {
                    while let Some(lpq) = queue.pop_front() {
                        ctx.dfbi(ir, guard, lpq)?;
                    }
                }
                Traversal::BreadthFirst => {
                    while let Some(lpq) = queue.pop_front() {
                        ctx.expand_and_prune(ir, guard, lpq, &mut queue)?;
                    }
                }
            }
            Ok(())
        })();
        // On abort the queue may still hold live LPQs; recycle them so the
        // scratch arena is fully reusable by the next query.
        for lpq in queue.drain(..) {
            ctx.scratch.put_entries(lpq.into_storage());
        }
        ctx.scratch.put_lpq_queue(queue);
        tracer.span_exit(Phase::Join, span_j, io_now);
        join
    })(&mut ctx);

    ctx.emit_prune_summary();
    tracer.span_exit(Phase::Query, span_q, io_now);

    let mut io = ir.pool().stats().since(&io_r0);
    if !shared_pool {
        io = io.merge(&is.pool().stats().since(&io_s0));
    }
    let mut out = ctx.finish();
    out.stats.io = io;
    match walk {
        Ok(()) => Ok(out),
        Err(e) => {
            tracer.event(|| TraceEvent::QueryAborted {
                reason: e.reason(),
                phase: abort_phase.get(),
            });
            Err(attach_partial_stats(e, &out.stats))
        }
    }
}

/// Parallel MBA: identical results to [`mba`], with the depth-first
/// recursion over the root's child LPQs fanned out across `threads` OS
/// threads (0 = one per available core).
///
/// The expansion of the root is inherently serial (it produces the
/// first-level LPQs); everything below is independent per subtree because
/// the indices are read-only and the buffer pool is internally
/// synchronized. With a shared pool the threads also share cache capacity,
/// exactly as concurrent scans would in a database.
///
/// This is an extension beyond the paper (which evaluates single-threaded
/// on a 2007 laptop); it exists to show the algorithm parallelizes
/// naturally, and by how much — see the `parallel_speedup` test and the
/// bench harness.
#[deprecated(
    since = "0.1.0",
    note = "thin delegate kept for compatibility; use ann_core::query::run / run_scratch (or the *_guarded canonical path)"
)]
pub fn mba_parallel<const D: usize, M, IR, IS>(
    ir: &IR,
    is: &IS,
    cfg: &MbaConfig,
    threads: usize,
) -> QueryResult<AnnOutput>
where
    M: PruneMetric,
    IR: SpatialIndex<D> + Sync,
    IS: SpatialIndex<D> + Sync,
{
    mba_parallel_guarded::<D, M, IR, IS>(
        ir,
        is,
        cfg,
        threads,
        Tracer::disabled(),
        &QueryGuard::disabled(),
    )
}

/// [`mba_parallel`] with an attached [`Tracer`]. The sink is shared by all
/// workers (hence the `Send + Sync` bound on [`crate::trace::TraceSink`]);
/// per-worker prune summaries are emitted separately and summed by the
/// sink. With `Tracer::disabled()` this is exactly [`mba_parallel`].
#[deprecated(
    since = "0.1.0",
    note = "thin delegate kept for compatibility; use ann_core::query::run / run_scratch (or the *_guarded canonical path)"
)]
pub fn mba_parallel_traced<const D: usize, M, IR, IS>(
    ir: &IR,
    is: &IS,
    cfg: &MbaConfig,
    threads: usize,
    tracer: Tracer<'_>,
) -> QueryResult<AnnOutput>
where
    M: PruneMetric,
    IR: SpatialIndex<D> + Sync,
    IS: SpatialIndex<D> + Sync,
{
    mba_parallel_guarded::<D, M, IR, IS>(ir, is, cfg, threads, tracer, &QueryGuard::disabled())
}

/// [`mba_parallel_traced`] under a [`QueryGuard`] — a thin delegate onto
/// the shared morsel engine ([`crate::par::run_workers`]).
///
/// The engine is seeded with the single root LPQ; workers split
/// node-owned subtrees on demand, one `ExpandAndPrune` step at a time,
/// publishing child LPQs as stealable morsels until a subtree falls at or
/// under [`crate::morsel::INLINE_SUBTREE_OBJECTS`] objects and is
/// finished inline with the exact serial recursion. Skewed data
/// therefore rebalances continuously instead of depending on the top
/// tree levels being uniform (the old static `threads * 16` seeding
/// split, which this replaces).
///
/// The guard's counters are interior atomics, so the one guard is shared
/// by every worker: a deadline, cancellation or budget trip observed by
/// any worker aborts the pool and is observed by all of them within one
/// morsel step. The first error (in worker index order) is the one
/// reported; its partial stats cover the seeding probe plus every worker
/// that folded its tallies before unwinding.
pub fn mba_parallel_guarded<const D: usize, M, IR, IS>(
    ir: &IR,
    is: &IS,
    cfg: &MbaConfig,
    threads: usize,
    tracer: Tracer<'_>,
    guard: &QueryGuard<'_>,
) -> QueryResult<AnnOutput>
where
    M: PruneMetric,
    IR: SpatialIndex<D> + Sync,
    IS: SpatialIndex<D> + Sync,
{
    if cfg.k == 0 {
        guard.tick()?;
        return Ok(AnnOutput::default());
    }
    let threads = crate::morsel::resolve_threads(threads);
    if threads <= 1 {
        let mut out =
            mba_guarded::<D, M, IR, IS>(ir, is, cfg, tracer, &mut QueryScratch::new(), guard)?;
        // The parallel contract promises canonical output order; the
        // serial traversal emits in discovery order.
        out.sort();
        return Ok(out);
    }

    let io_r0 = ir.pool().stats();
    let shared_pool = std::ptr::eq(
        ir.pool() as *const _ as *const u8,
        is.pool() as *const _ as *const u8,
    );
    let io_s0 = is.pool().stats();
    let io_now = || {
        let mut io = ir.pool().stats();
        if !shared_pool {
            io = io.merge(&is.pool().stats());
        }
        io
    };
    let span_q = tracer.span_enter(Phase::Query, io_now);
    let abort_phase = std::cell::Cell::new(Phase::Query.name());
    let mut failure: Option<QueryError> = None;

    let mut out = AnnOutput::default();
    if ir.num_points() > 0 && is.num_points() > 0 {
        tracer.event(|| TraceEvent::Root {
            side: Side::R,
            page: ir.root_page(),
        });
        tracer.event(|| TraceEvent::Root {
            side: Side::S,
            page: is.root_page(),
        });
        let span_seed = tracer.span_enter(Phase::Seed, io_now);
        abort_phase.set(Phase::Seed.name());
        // Serial seeding is now minimal: one root LPQ, probed with the
        // I_S root. All further splitting happens dynamically inside the
        // workers, so skew rebalances continuously via stealing.
        let mut seed_scratch = QueryScratch::new();
        let mut ctx: Ctx<D, M, IS> = Ctx::new(is, cfg, tracer, &mut seed_scratch);
        let seeded = (|ctx: &mut Ctx<D, M, IS>| -> QueryResult<Lpq<D>> {
            guard.tick()?;
            let root_owner = Entry::Node(NodeEntry {
                page: ir.root_page(),
                count: ir.num_points(),
                mbr: ir.bounds(),
            });
            let storage = ctx.scratch.take_entries();
            let mut root_lpq = Lpq::new_in(root_owner, ctx.k_eff, f64::INFINITY, storage);
            ctx.out.stats.lpqs_created += 1;
            ctx.probe(
                &mut root_lpq,
                Entry::Node(NodeEntry {
                    page: is.root_page(),
                    count: is.num_points(),
                    mbr: is.bounds(),
                }),
            );
            Ok(root_lpq)
        })(&mut ctx);
        ctx.emit_prune_summary();
        tracer.span_exit(Phase::Seed, span_seed, io_now);
        let seed_out = ctx.finish();
        let seed_stats = seed_out.stats;
        out.results = seed_out.results;

        match seeded {
            Err(e) => {
                out.stats = seed_stats;
                failure = Some(e);
            }
            Ok(root_lpq) => {
                let span_j = tracer.span_enter(Phase::Join, io_now);
                abort_phase.set(Phase::Join.name());
                let (pout, err) =
                    crate::par::run_workers(threads, vec![root_lpq], tracer, |h| {
                        let mut scratch = QueryScratch::new();
                        let mut ctx: Ctx<D, M, IS> = Ctx::new(is, cfg, h.tracer(), &mut scratch);
                        let mut children = VecDeque::new();
                        let walk = (|| -> QueryResult<()> {
                            while let Some(lpq) = h.pop() {
                                let step = ctx.morsel_step(ir, guard, lpq, &mut children, &h);
                                h.complete();
                                step?;
                            }
                            Ok(())
                        })();
                        // On abort unpublished children recycle into the
                        // worker's arena before the tallies fold.
                        for lpq in children.drain(..) {
                            ctx.scratch.put_entries(lpq.into_storage());
                        }
                        ctx.emit_prune_summary();
                        (ctx.finish(), walk)
                    });
                out.results.extend(pout.results);
                out.stats = pout.stats;
                out.stats.merge(&seed_stats);
                failure = err;
                tracer.span_exit(Phase::Join, span_j, io_now);
            }
        }
    }
    tracer.span_exit(Phase::Query, span_q, io_now);

    let mut io = ir.pool().stats().since(&io_r0);
    if !shared_pool {
        io = io.merge(&is.pool().stats().since(&io_s0));
    }
    out.stats.io = io;
    match failure {
        None => Ok(out),
        Some(e) => {
            tracer.event(|| TraceEvent::QueryAborted {
                reason: e.reason(),
                phase: abort_phase.get(),
            });
            Err(attach_partial_stats(e, &out.stats))
        }
    }
}
