//! The **MBA** algorithm (paper §3.3.2, Algorithms 2-4) and its traversal /
//! expansion variants (§3.3.2's four-way design space).
//!
//! [`mba`] evaluates ANN (or AkNN for `k > 1`) between two indexed point
//! sets by descending both indices simultaneously. Each reached entry of
//! the query index `I_R` owns a [`Lpq`] of candidate `I_S` entries; the
//! `ExpandAndPrune` equivalent in this module applies the Three-Stage
//! pruning of §3.3.3:
//!
//! * **Expand stage** — an internal owner spawns one child LPQ per child
//!   entry (inheriting the parent's bound), then drains its own queue,
//!   probing each drained entry (or, under bi-directional expansion, that
//!   entry's children) against every child LPQ;
//! * **Filter stage** — inside [`Lpq::try_enqueue`]: queued entries whose
//!   `MIND` exceeds a newly tightened bound are evicted;
//! * **Gather stage** — an object owner drains its queue in `MIND` order;
//!   the first `k` objects popped are its `k` nearest neighbors.
//!
//! The function is generic over the index type — run it over MBRQT indices
//! and it is the paper's MBA; over R*-trees it is **RBA** — and over the
//! pruning metric ([`ann_geom::NxnDist`] vs [`ann_geom::MaxMaxDist`]),
//! which is the comparison of Figure 3(a).

use crate::index::SpatialIndex;
use crate::lpq::{distances_within, Lpq, QueuedEntry};
use crate::node::{Entry, NodeEntry};
use crate::stats::{AnnOutput, AtomicAnnStats, NeighborPair};
use ann_geom::PruneMetric;
use ann_store::Result;
use std::collections::VecDeque;

/// Index traversal order for the query-side recursion (§3.3.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Traversal {
    /// Depth-first: recurse into each child LPQ before its siblings —
    /// the paper's choice (bounded memory, maximal locality).
    #[default]
    DepthFirst,
    /// Breadth-first: process LPQs level by level from a global FIFO.
    BreadthFirst,
}

/// Node-expansion strategy (§3.3.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Expansion {
    /// Bi-directional: when an `I_R` node is expanded, drained `I_S` node
    /// entries are expanded too (synchronous descent) — the paper's choice.
    #[default]
    Bidirectional,
    /// Uni-directional: only `I_R` descends during the Expand stage;
    /// `I_S` entries are re-probed unexpanded and only open up during the
    /// Gather stage.
    Unidirectional,
}

/// Configuration for [`mba`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MbaConfig {
    /// Number of nearest neighbors per query object (`k = 1` is ANN).
    pub k: usize,
    /// Query-side traversal order.
    pub traversal: Traversal,
    /// Node-expansion strategy.
    pub expansion: Expansion,
    /// Self-join mode: skip the pair `(r, s)` when both sides carry the
    /// same object id. The pruning bound is computed for `k + 1` neighbors
    /// internally so that excluding the self match never starves a query.
    pub exclude_self: bool,
}

impl Default for MbaConfig {
    fn default() -> Self {
        MbaConfig {
            k: 1,
            traversal: Traversal::DepthFirst,
            expansion: Expansion::Bidirectional,
            exclude_self: false,
        }
    }
}

struct Ctx<'a, const D: usize, M: PruneMetric, IS: SpatialIndex<D>> {
    is: &'a IS,
    cfg: MbaConfig,
    /// `cfg.k`, plus one in self-join mode (the self match may have to be
    /// discarded, so bounds must guarantee one extra candidate).
    k_eff: usize,
    out: AnnOutput,
    _metric: std::marker::PhantomData<M>,
}

impl<'a, const D: usize, M: PruneMetric, IS: SpatialIndex<D>> Ctx<'a, D, M, IS> {
    /// Probes `target` against `lpq`, computing distances and enqueueing
    /// when the probe test passes.
    fn probe(&mut self, lpq: &mut Lpq<D>, target: Entry<D>) {
        self.out.stats.distance_computations += 1;
        // Early-exit Distances: `None` iff try_enqueue would reject on the
        // probe test, so the decision (and every counter) is identical to
        // the full computation — only the arithmetic for hopeless entries
        // is skipped.
        let Some((mind_sq, maxd_sq)) =
            distances_within::<D, M>(&lpq.owner, &target, lpq.prune_threshold_sq())
        else {
            self.out.stats.pruned_on_probe += 1;
            return;
        };
        let (accepted, filtered) = lpq.try_enqueue(QueuedEntry {
            mind_sq,
            maxd_sq,
            entry: target,
        });
        if accepted {
            self.out.stats.enqueued += 1;
        } else {
            self.out.stats.pruned_on_probe += 1;
        }
        self.out.stats.pruned_in_queue += filtered;
    }

    /// The Gather stage: `lpq.owner` is a data object; drain in `MIND`
    /// order and report the first `k` objects popped.
    fn gather(&mut self, mut lpq: Lpq<D>) -> Result<()> {
        let Entry::Object(owner) = lpq.owner else {
            unreachable!("gather called with a node owner")
        };
        let mut found = 0;
        while let Some(q) = lpq.dequeue() {
            match q.entry {
                Entry::Object(s) => {
                    if self.cfg.exclude_self && s.oid == owner.oid {
                        continue;
                    }
                    self.out.results.push(NeighborPair {
                        r_oid: owner.oid,
                        s_oid: s.oid,
                        dist: q.mind_sq.sqrt(),
                    });
                    lpq.satisfy_one();
                    found += 1;
                    if found == self.cfg.k {
                        return Ok(());
                    }
                }
                Entry::Node(n) => {
                    let node = self.is.read_node_cached(n.page)?;
                    self.out.stats.s_nodes_expanded += 1;
                    for child in node.entries.iter().copied() {
                        self.probe(&mut lpq, child);
                    }
                }
            }
        }
        Ok(())
    }

    /// The Expand stage: `lpq.owner` is an internal `I_R` node; spawn one
    /// child LPQ per child entry and redistribute the drained queue.
    fn expand<IR: SpatialIndex<D>>(
        &mut self,
        ir: &IR,
        mut lpq: Lpq<D>,
        queue: &mut VecDeque<Lpq<D>>,
    ) -> Result<()> {
        let Entry::Node(owner) = lpq.owner else {
            unreachable!("expand called with an object owner")
        };
        let node = ir.read_node_cached(owner.page)?;
        self.out.stats.r_nodes_expanded += 1;
        let inherited = lpq.bound_sq();
        let mut children: Vec<Lpq<D>> = node
            .entries
            .iter()
            .map(|c| Lpq::new(*c, self.k_eff, inherited))
            .collect();
        self.out.stats.lpqs_created += children.len() as u64;

        while let Some(q) = lpq.dequeue() {
            // Algorithm 4 lines 13-18: a popped entry is only worth
            // processing if its MIND passes at least one child LPQ's MAXD —
            // MIND against the parent owner lower-bounds MIND against every
            // child, so this rejection is safe and saves the node read.
            if children.iter().all(|c| c.prunes(q.mind_sq)) {
                self.out.stats.pruned_on_probe += 1;
                continue;
            }
            match (self.cfg.expansion, q.entry) {
                (Expansion::Bidirectional, Entry::Node(n)) => {
                    // Bi-directional: descend the I_S side one level too.
                    let s_node = self.is.read_node_cached(n.page)?;
                    self.out.stats.s_nodes_expanded += 1;
                    for e in s_node.entries.iter().copied() {
                        for child in children.iter_mut() {
                            self.probe(child, e);
                        }
                    }
                }
                // Objects cannot be expanded; under uni-directional
                // expansion nodes are re-probed as-is.
                (_, entry) => {
                    for child in children.iter_mut() {
                        self.probe(child, entry);
                    }
                }
            }
        }

        // Algorithm 4 line 19: enqueue all non-empty child LPQs.
        for child in children {
            if !child.is_empty() {
                queue.push_back(child);
            }
        }
        Ok(())
    }

    /// One `ExpandAndPrune` step (Algorithm 4): dispatches on the owner.
    fn expand_and_prune<IR: SpatialIndex<D>>(
        &mut self,
        ir: &IR,
        lpq: Lpq<D>,
        queue: &mut VecDeque<Lpq<D>>,
    ) -> Result<()> {
        match lpq.owner {
            Entry::Object(_) => self.gather(lpq),
            Entry::Node(_) => self.expand(ir, lpq, queue),
        }
    }

    /// `ANN-DFBI` (Algorithm 3): depth-first recursion over child LPQs.
    fn dfbi<IR: SpatialIndex<D>>(&mut self, ir: &IR, lpq: Lpq<D>) -> Result<()> {
        let mut queue = VecDeque::new();
        self.expand_and_prune(ir, lpq, &mut queue)?;
        while let Some(child) = queue.pop_front() {
            self.dfbi(ir, child)?;
        }
        Ok(())
    }
}

/// Evaluates the all-`k`-nearest-neighbor join: for every point indexed by
/// `ir`, find its `cfg.k` nearest neighbors among the points indexed by
/// `is` (paper Algorithm 2).
///
/// With the default configuration this is the paper's MBA/RBA algorithm
/// (depth-first, bi-directional); other [`Traversal`] × [`Expansion`]
/// combinations reproduce the §3.3.2 design-space ablation.
pub fn mba<const D: usize, M, IR, IS>(ir: &IR, is: &IS, cfg: &MbaConfig) -> Result<AnnOutput>
where
    M: PruneMetric,
    IR: SpatialIndex<D>,
    IS: SpatialIndex<D>,
{
    assert!(cfg.k >= 1, "k must be at least 1");
    let mut ctx: Ctx<D, M, IS> = Ctx {
        is,
        cfg: *cfg,
        k_eff: cfg.k + usize::from(cfg.exclude_self),
        out: AnnOutput::default(),
        _metric: std::marker::PhantomData,
    };

    let io_r0 = ir.pool().stats();
    let shared_pool = std::ptr::eq(
        ir.pool() as *const _ as *const u8,
        is.pool() as *const _ as *const u8,
    );
    let io_s0 = is.pool().stats();

    if ir.num_points() > 0 && is.num_points() > 0 {
        // Algorithm 2: root LPQ owns I_R's root, seeded with I_S's root.
        let root_owner = Entry::Node(NodeEntry {
            page: ir.root_page(),
            count: ir.num_points(),
            mbr: ir.bounds(),
        });
        let mut root_lpq = Lpq::new(root_owner, ctx.k_eff, f64::INFINITY);
        ctx.out.stats.lpqs_created += 1;
        let root_target = Entry::Node(NodeEntry {
            page: is.root_page(),
            count: is.num_points(),
            mbr: is.bounds(),
        });
        ctx.probe(&mut root_lpq, root_target);

        let mut queue = VecDeque::new();
        queue.push_back(root_lpq);
        match cfg.traversal {
            Traversal::DepthFirst => {
                while let Some(lpq) = queue.pop_front() {
                    ctx.dfbi(ir, lpq)?;
                }
            }
            Traversal::BreadthFirst => {
                while let Some(lpq) = queue.pop_front() {
                    ctx.expand_and_prune(ir, lpq, &mut queue)?;
                }
            }
        }
    }

    let mut io = ir.pool().stats().since(&io_r0);
    if !shared_pool {
        io = io.merge(&is.pool().stats().since(&io_s0));
    }
    ctx.out.stats.io = io;
    Ok(ctx.out)
}

/// Parallel MBA: identical results to [`mba`], with the depth-first
/// recursion over the root's child LPQs fanned out across `threads` OS
/// threads (0 = one per available core).
///
/// The expansion of the root is inherently serial (it produces the
/// first-level LPQs); everything below is independent per subtree because
/// the indices are read-only and the buffer pool is internally
/// synchronized. With a shared pool the threads also share cache capacity,
/// exactly as concurrent scans would in a database.
///
/// This is an extension beyond the paper (which evaluates single-threaded
/// on a 2007 laptop); it exists to show the algorithm parallelizes
/// naturally, and by how much — see the `parallel_speedup` test and the
/// bench harness.
pub fn mba_parallel<const D: usize, M, IR, IS>(
    ir: &IR,
    is: &IS,
    cfg: &MbaConfig,
    threads: usize,
) -> Result<AnnOutput>
where
    M: PruneMetric,
    IR: SpatialIndex<D> + Sync,
    IS: SpatialIndex<D> + Sync,
{
    assert!(cfg.k >= 1, "k must be at least 1");
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };

    let io_r0 = ir.pool().stats();
    let shared_pool = std::ptr::eq(
        ir.pool() as *const _ as *const u8,
        is.pool() as *const _ as *const u8,
    );
    let io_s0 = is.pool().stats();

    let mut out = AnnOutput::default();
    if ir.num_points() > 0 && is.num_points() > 0 {
        // Serial seeding phase: expand breadth-first until there are
        // enough independent LPQ subtrees to keep the workers busy.
        // Spatial data is heavy-tailed (a few dense cells own most of the
        // points), so a single root expansion rarely yields balanced
        // units; descending a couple of levels does.
        let mut ctx: Ctx<D, M, IS> = Ctx {
            is,
            cfg: *cfg,
            k_eff: cfg.k + usize::from(cfg.exclude_self),
            out: AnnOutput::default(),
            _metric: std::marker::PhantomData,
        };
        let root_owner = Entry::Node(NodeEntry {
            page: ir.root_page(),
            count: ir.num_points(),
            mbr: ir.bounds(),
        });
        let mut root_lpq = Lpq::new(root_owner, ctx.k_eff, f64::INFINITY);
        ctx.out.stats.lpqs_created += 1;
        ctx.probe(
            &mut root_lpq,
            Entry::Node(NodeEntry {
                page: is.root_page(),
                count: is.num_points(),
                mbr: is.bounds(),
            }),
        );
        let target_units = threads * 16;
        let mut queue = VecDeque::new();
        queue.push_back(root_lpq);
        while queue.len() < target_units {
            // Only node-owned LPQs can be expanded into more units.
            let Some(at) = queue.iter().position(|l| matches!(l.owner, Entry::Node(_))) else {
                break;
            };
            let lpq = queue.remove(at).expect("position just found");
            ctx.expand_and_prune(ir, lpq, &mut queue)?;
        }
        // Per-thread counters fold into one set of relaxed atomics —
        // workers tally locally (no synchronization in the traversal) and
        // add their totals on exit, the seeding phase included.
        let shared_stats = AtomicAnnStats::new();
        shared_stats.add(&ctx.out.stats);
        out.results = ctx.out.results;

        // Dynamic scheduling: workers pull the next unit from a shared
        // queue, so one dense subtree cannot starve the rest.
        let work = std::sync::Mutex::new(queue);
        let shared_stats = &shared_stats;
        let results: Vec<Result<Vec<crate::stats::NeighborPair>>> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|_| -> Result<Vec<crate::stats::NeighborPair>> {
                            let mut ctx: Ctx<D, M, IS> = Ctx {
                                is,
                                cfg: *cfg,
                                k_eff: cfg.k + usize::from(cfg.exclude_self),
                                out: AnnOutput::default(),
                                _metric: std::marker::PhantomData,
                            };
                            loop {
                                let unit = work.lock().expect("work queue").pop_front();
                                match unit {
                                    Some(lpq) => ctx.dfbi(ir, lpq)?,
                                    None => break,
                                }
                            }
                            shared_stats.add(&ctx.out.stats);
                            Ok(ctx.out.results)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker thread panicked"))
                    .collect()
            })
            .expect("crossbeam scope");

        for r in results {
            out.results.extend(r?);
        }
        out.stats = shared_stats.load();
    }

    let mut io = ir.pool().stats().since(&io_r0);
    if !shared_pool {
        io = io.merge(&is.pool().stats().since(&io_s0));
    }
    out.stats.io = io;
    Ok(out)
}
