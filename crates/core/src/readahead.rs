//! Readahead hinting for the traversal hot paths.
//!
//! Every traversal in this crate (MBA's LPQ probes, the best-first kNN
//! and MNN descents, BNN's group heap) makes its visit decisions in a
//! tight loop over a decoded node's entries, then consumes the accepted
//! child pages strictly later — after more heap pops or queue drains.
//! That gap is free overlap: the moment a child is *accepted* its page id
//! is handed to [`ann_store::BufferPool::prefetch`], so by the time the
//! decision loop reaches it the physical read has (often) already
//! happened.
//!
//! # Correctness contract
//!
//! Prefetching changes only *when* a physical read happens, never
//! *whether* a logical one does. The hints collected here are exactly the
//! pages the decision loop has already committed to enqueue; submitting
//! them mutates no traversal state — decision order, tie-breaks and every
//! logical counter (`logical_reads`, `distance_computations`, queue
//! traffic) are byte-identical with hinting on or off. The pool enforces
//! the physical side: prefetch loads are unpinned, charge no logical
//! read, and are first-out under pressure (see `ann_store::pool`).
//!
//! # Priority
//!
//! Hints carry a depth proxy derived from the child entry's subtree
//! `count`: deeper nodes hold fewer points, and the tracer's per-level
//! expansion histograms show traversals consume deep (small-count)
//! children soonest — a depth-first descent pops the freshly pushed,
//! smallest-MIND child next, and best-first heaps drain toward leaves.
//! [`depth_priority`] therefore maps smaller counts to higher priorities
//! so the readahead queue services soonest-needed pages first.

use ann_store::{BufferPool, PageId};

/// Maps a child entry's subtree `count` to a prefetch priority: smaller
/// subtrees (deeper nodes, consumed soonest) get higher priority. The
/// `| 1` guard keeps a (degenerate) zero count finite.
#[inline]
pub fn depth_priority(count: u64) -> u32 {
    (count | 1).leading_zeros()
}

/// Submits the accumulated hints to `pool` and clears the buffer.
///
/// A no-op on an empty buffer, so callers can invoke it unconditionally
/// after each decision loop. The buffer is cleared even if the pool has
/// prefetching disabled (hints are then dropped inside the pool).
#[inline]
pub fn submit(pool: &BufferPool, hints: &mut Vec<(PageId, u32)>) {
    if !hints.is_empty() {
        pool.prefetch(hints);
        hints.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_priority_orders_deeper_first() {
        // Deeper subtrees hold fewer points and must pop first.
        assert!(depth_priority(10) > depth_priority(10_000));
        assert!(depth_priority(10_000) > depth_priority(10_000_000));
        // Degenerate counts stay finite and maximal.
        assert_eq!(depth_priority(0), depth_priority(1));
        assert_eq!(depth_priority(0), 63);
    }

    #[test]
    fn submit_clears_and_is_noop_when_empty() {
        use ann_store::MemDisk;
        let pool = BufferPool::new(MemDisk::new(), 4);
        let mut hints: Vec<(PageId, u32)> = Vec::new();
        submit(&pool, &mut hints); // empty: no panic, no effect
        hints.push((0, 1));
        submit(&pool, &mut hints); // pool has prefetch disabled: dropped
        assert!(hints.is_empty(), "submit always clears the buffer");
        assert_eq!(pool.stats().prefetch_issued, 0);
    }
}
