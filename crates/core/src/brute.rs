//! Brute-force ANN / AkNN — the `O(|R| · |S|)` ground truth every other
//! algorithm is validated against in the test suites.

use crate::stats::NeighborPair;
use ann_geom::{kernels, Point, SoaPoints};

/// Computes, for every `(oid, point)` in `r`, its `k` nearest neighbors in
/// `s` by exhaustive search.
///
/// This is the reference implementation of the **canonical tie-breaking
/// contract** every index-based algorithm must reproduce byte-for-byte:
/// per query object, candidates are ranked by `(distance, s_oid)`
/// ascending, so equal-distance neighbors are won by the smaller target
/// oid. `k = 0` returns an empty result; `k > |s|` returns all of `s`.
/// This matches the canonical order of
/// [`AnnOutput::sort`](crate::stats::AnnOutput::sort).
///
/// When `exclude_self` is set, candidate pairs with equal object ids are
/// skipped (self-join semantics).
pub fn brute_force_aknn<const D: usize>(
    r: &[(u64, Point<D>)],
    s: &[(u64, Point<D>)],
    k: usize,
    exclude_self: bool,
) -> Vec<NeighborPair> {
    if k == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(r.len() * k);
    // Column-major mirror of S, built once: every query point then runs
    // one batched kernel call over all of S instead of |S| scalar calls.
    let mut s_cols: Vec<f64> = Vec::with_capacity(D * s.len());
    for d in 0..D {
        s_cols.extend(s.iter().map(|(_, p)| p[d]));
    }
    let s_points = SoaPoints::new(s.len(), &s_cols);
    let mut dists: Vec<f64> = Vec::new();
    // (dist_sq, s_oid) candidates per query; a simple select-k via sort is
    // fine at test scales.
    let mut candidates: Vec<(f64, u64)> = Vec::with_capacity(s.len());
    for &(r_oid, r_point) in r {
        candidates.clear();
        kernels::dist_sq_batch(&r_point, &s_points, &mut dists);
        for (i, &(s_oid, _)) in s.iter().enumerate() {
            if exclude_self && s_oid == r_oid {
                continue;
            }
            candidates.push((dists[i], s_oid));
        }
        candidates.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        for &(dist_sq, s_oid) in candidates.iter().take(k) {
            out.push(NeighborPair {
                r_oid,
                s_oid,
                dist: dist_sq.sqrt(),
            });
        }
    }
    out
}

/// Convenience wrapper for plain ANN (`k = 1`, no exclusion).
pub fn brute_force_ann<const D: usize>(
    r: &[(u64, Point<D>)],
    s: &[(u64, Point<D>)],
) -> Vec<NeighborPair> {
    brute_force_aknn(r, s, 1, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[[f64; 2]]) -> Vec<(u64, Point<2>)> {
        coords
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64, Point::new(c)))
            .collect()
    }

    #[test]
    fn nearest_neighbor_by_hand() {
        let r = pts(&[[0.0, 0.0], [10.0, 10.0]]);
        let s = pts(&[[1.0, 0.0], [9.0, 10.0], [5.0, 5.0]]);
        let out = brute_force_ann(&r, &s);
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].r_oid, out[0].s_oid, out[0].dist), (0, 0, 1.0));
        assert_eq!((out[1].r_oid, out[1].s_oid, out[1].dist), (1, 1, 1.0));
    }

    #[test]
    fn k2_returns_two_per_query_in_distance_order() {
        let r = pts(&[[0.0, 0.0]]);
        let s = pts(&[[3.0, 0.0], [1.0, 0.0], [2.0, 0.0]]);
        let out = brute_force_aknn(&r, &s, 2, false);
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].s_oid, out[0].dist), (1, 1.0));
        assert_eq!((out[1].s_oid, out[1].dist), (2, 2.0));
    }

    #[test]
    fn self_join_exclusion() {
        let pts = pts(&[[0.0, 0.0], [1.0, 0.0], [5.0, 0.0]]);
        let with_self = brute_force_aknn(&pts, &pts, 1, false);
        assert!(with_self
            .iter()
            .all(|p| p.dist == 0.0 && p.r_oid == p.s_oid));
        let without = brute_force_aknn(&pts, &pts, 1, true);
        assert_eq!(without[0].s_oid, 1);
        assert_eq!(without[1].s_oid, 0);
        assert_eq!(without[2].s_oid, 1);
        assert_eq!(without[2].dist, 4.0);
    }

    #[test]
    fn k_larger_than_s_returns_all() {
        let r = pts(&[[0.0, 0.0]]);
        let s = pts(&[[1.0, 0.0], [2.0, 0.0]]);
        let out = brute_force_aknn(&r, &s, 10, false);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn distance_ties_break_on_oid() {
        let r = pts(&[[0.0, 0.0]]);
        let s = vec![
            (7u64, Point::new([1.0, 0.0])),
            (3u64, Point::new([0.0, 1.0])),
        ];
        let out = brute_force_aknn(&r, &s, 1, false);
        assert_eq!(out[0].s_oid, 3);
    }
}
