//! The owned, serializable query surface: [`QuerySpec`] / [`QueryOutcome`]
//! with a versioned JSON wire schema, plus the stable error-code space the
//! serving layer maps onto HTTP statuses.
//!
//! [`AnnRequest`](crate::query::AnnRequest) is the in-process API: it
//! borrows a [`TraceSink`](crate::trace::TraceSink) and carries an
//! absolute [`Instant`] deadline, so it can neither cross a process
//! boundary nor outlive its caller. [`QuerySpec`] is its owned dual —
//! every knob a remote client may set, nothing borrowed, with lossless
//! conversions in both directions ([`QuerySpec::from_request`],
//! [`QuerySpec::to_request`]). The serving crate (`ann-serve`) parses a
//! `QuerySpec` off the wire, attaches the runtime-only pieces (cancel
//! token, tracer) server-side, and runs it through the same canonical
//! [`query::run`](crate::query::run) path every in-process caller uses.
//!
//! Everything here is hand-rolled over `std` (no serde), in the same
//! style as [`ExecutionReport::to_json`](crate::trace::ExecutionReport):
//! the wire layer stays dependency-free, and output is deterministic, so
//! golden fixtures and byte-identity gates are meaningful.
//!
//! # Schema versioning
//!
//! See [`WIRE_SCHEMA_VERSION`] for the bump rule.

use crate::query::{Algorithm, AnnRequest, MetricChoice};
use crate::resilience::{BudgetKind, QueryError};
use crate::stats::{AnnOutput, AnnStats, NeighborPair};
use crate::trace::{json_escape, json_io, json_num, ExecutionReport};
use ann_store::{RetryPolicy, StoreError};
use std::fmt;
use std::time::{Duration, Instant};

/// Current version of the JSON wire schema, emitted as the `"v"` field of
/// every [`QuerySpec`] and [`QueryOutcome`] document.
///
/// **Bump rule:** adding a new *optional* field (absent ⇒ old behavior)
/// is backward compatible and does **not** bump the version. Removing or
/// renaming a field, changing a field's type or meaning, or making a new
/// field mandatory **does** bump it. Parsers accept documents whose `v`
/// is less than or equal to the current version (older optional fields
/// simply default) and reject anything newer with
/// [`WireError::UnsupportedVersion`] — a v1 server never silently
/// misreads a v2 request. New [`Algorithm`] / [`MetricChoice`] variants
/// ride on the existing version: unknown names are a schema error, which
/// is exactly the signal an old server should give for a too-new request.
///
/// Additions under this rule so far (no bump, all optional):
/// * `"version"` on [`QuerySpec`] — pin the query to an MVCC snapshot
///   version of a versioned collection (absent ⇒ latest);
/// * `"version"` on [`QueryOutcome`] — the snapshot version the query
///   actually ran against (absent ⇒ the collection is unversioned);
/// * `"threads"` on [`QuerySpec`] — intra-query worker threads (absent ⇒
///   `1`, the serial path; emitted only when not `1`; bounded by
///   [`MAX_WIRE_THREADS`], as is the MBA variant's own knob).
pub const WIRE_SCHEMA_VERSION: u64 = 1;

/// Largest thread count accepted from the wire, for both the
/// request-level `"threads"` field and the MBA variant's own knob. `0`
/// ("one worker per core") and `1..=MAX_WIRE_THREADS` are valid; larger
/// values are a schema error. No real box has more cores than this, and
/// an unbounded value would otherwise reach `resolve_threads` verbatim
/// and translate into an attempt to spawn that many OS threads.
pub const MAX_WIRE_THREADS: usize = 1024;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a wire document failed to parse or validate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WireError {
    /// The bytes are not well-formed JSON.
    Parse {
        /// Byte offset of the failure.
        at: usize,
        /// What the parser expected or found.
        what: String,
    },
    /// Well-formed JSON that does not match the schema (missing field,
    /// wrong type, unknown enum name, out-of-range value).
    Schema(String),
    /// The document's `"v"` is newer than [`WIRE_SCHEMA_VERSION`].
    UnsupportedVersion(u64),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Parse { at, what } => write!(f, "JSON parse error at byte {at}: {what}"),
            WireError::Schema(what) => write!(f, "schema error: {what}"),
            WireError::UnsupportedVersion(v) => write!(
                f,
                "unsupported wire schema version {v} (this build speaks <= {WIRE_SCHEMA_VERSION})"
            ),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Minimal JSON value model + parser
// ---------------------------------------------------------------------------

/// A parsed JSON value. Minimal by design: objects keep insertion order
/// in a `Vec` (no hashing, deterministic iteration), and the parser
/// enforces a nesting depth limit so adversarial network input cannot
/// blow the stack. Non-negative integer literals that fit a `u64` parse
/// to [`Int`](Self::Int) so full-range oids transit losslessly; every
/// other number is an `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal (no sign, fraction, or exponent)
    /// that fits a `u64`, kept bit-lossless — object ids use the full
    /// 64-bit range, which `f64` cannot represent past 2^53.
    Int(u64),
    /// Any other JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as `(key, value)` pairs in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(s: &str) -> Result<JsonValue, WireError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(p.err("trailing data after JSON document"));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64` (integer literals convert, losing bits past
    /// 2^53 — distances on our wire always carry a `.` or exponent, so
    /// they never take this path).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`: any [`Int`](Self::Int) (full 64-bit range),
    /// or a non-integer-literal number that still is a non-negative
    /// integer representable exactly in an `f64` (e.g. `1e3`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            JsonValue::Num(n)
                if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 =>
            {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a `usize` (via [`as_u64`](Self::as_u64)).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: impl Into<String>) -> WireError {
        WireError::Parse {
            at: self.at,
            what: what.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, WireError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') if self.literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.literal("null") => Ok(JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, WireError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            // Duplicate keys are a wire-compat hazard: RFC 8259 leaves the
            // behavior unspecified, so one parser's "first wins" is another
            // parser's "last wins" — e.g. a smuggled second "version" field
            // could pin a different snapshot than an auditing proxy saw.
            // Hard-reject instead of silently picking one.
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate object key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, WireError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, WireError> {
        let end = self.at + 4;
        let slice = self
            .bytes
            .get(self.at..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.at = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.at += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000
                                    + (((hi as u32) - 0xD800) << 10)
                                    + ((lo as u32) - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("unpaired surrogate"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, WireError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| self.err("bad number"))?;
        // Plain non-negative integer literals stay lossless as u64 (oids
        // use the full 64-bit range); anything signed, fractional,
        // exponential, or > u64::MAX falls back to f64.
        if !text.is_empty() && text.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(i) = text.parse::<u64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(format!("bad number {text:?}")))
    }
}

// ---------------------------------------------------------------------------
// CollectionId
// ---------------------------------------------------------------------------

/// A validated collection name: what the serving layer keys its registry
/// (and on-disk files) by.
///
/// Restricted to 1–64 characters of `[A-Za-z0-9_-]` so an id is always a
/// safe filename component — no separators, no traversal, no hidden
/// files.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CollectionId(String);

impl CollectionId {
    /// Validates and wraps a collection name.
    pub fn new(name: &str) -> Result<Self, WireError> {
        if name.is_empty() || name.len() > 64 {
            return Err(WireError::Schema(format!(
                "collection id must be 1-64 characters, got {}",
                name.len()
            )));
        }
        if !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(WireError::Schema(format!(
                "collection id {name:?} may only contain [A-Za-z0-9_-]"
            )));
        }
        Ok(CollectionId(name.to_string()))
    }

    /// The validated name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for CollectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for CollectionId {
    type Err = WireError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CollectionId::new(s)
    }
}

// ---------------------------------------------------------------------------
// Error codes
// ---------------------------------------------------------------------------

/// The stable, numeric error space of the wire API.
///
/// Every failure a remote client can observe maps onto exactly one code;
/// codes are append-only (a released number never changes meaning), and
/// the enum is `#[non_exhaustive]` so clients must leave room for codes
/// added later. `1xxx` are per-query failures, `2xxx` are collection /
/// store failures, `3xxx` are server-side admission failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// Malformed or schema-invalid request body (HTTP 400).
    BadRequest,
    /// The request's cancel token fired — for the server, the client
    /// disconnected mid-query (HTTP 499, nginx-style).
    Cancelled,
    /// The per-request deadline passed mid-traversal (HTTP 504).
    DeadlineExceeded,
    /// The node-visit budget ran out (HTTP 422: the request as stated is
    /// unsatisfiable within its own limits).
    VisitBudgetExhausted,
    /// The physical-read budget ran out (HTTP 422).
    IoBudgetExhausted,
    /// The storage layer failed after retries (HTTP 500).
    StorageFailed,
    /// No collection with the requested id (HTTP 404).
    CollectionNotFound,
    /// A collection with the requested id already exists (HTTP 409).
    CollectionExists,
    /// The collection definition is invalid (HTTP 400).
    InvalidCollection,
    /// The admission queue is full; retry later (HTTP 429).
    Overloaded,
    /// The server is shutting down (HTTP 503).
    ShuttingDown,
    /// Anything else (HTTP 500).
    Internal,
}

impl ErrorCode {
    /// The stable numeric code.
    pub fn code(self) -> u16 {
        match self {
            ErrorCode::BadRequest => 1000,
            ErrorCode::Cancelled => 1001,
            ErrorCode::DeadlineExceeded => 1002,
            ErrorCode::VisitBudgetExhausted => 1003,
            ErrorCode::IoBudgetExhausted => 1004,
            ErrorCode::StorageFailed => 1005,
            ErrorCode::CollectionNotFound => 2000,
            ErrorCode::CollectionExists => 2001,
            ErrorCode::InvalidCollection => 2002,
            ErrorCode::Overloaded => 3000,
            ErrorCode::ShuttingDown => 3001,
            ErrorCode::Internal => 5000,
        }
    }

    /// The HTTP status the serving layer responds with.
    pub fn http_status(self) -> u16 {
        match self {
            ErrorCode::BadRequest | ErrorCode::InvalidCollection => 400,
            ErrorCode::Cancelled => 499,
            ErrorCode::DeadlineExceeded => 504,
            ErrorCode::VisitBudgetExhausted | ErrorCode::IoBudgetExhausted => 422,
            ErrorCode::StorageFailed | ErrorCode::Internal => 500,
            ErrorCode::CollectionNotFound => 404,
            ErrorCode::CollectionExists => 409,
            ErrorCode::Overloaded => 429,
            ErrorCode::ShuttingDown => 503,
        }
    }

    /// Short stable label, used as the `"error"` field on the wire.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::VisitBudgetExhausted => "visit-budget-exhausted",
            ErrorCode::IoBudgetExhausted => "io-budget-exhausted",
            ErrorCode::StorageFailed => "storage-failed",
            ErrorCode::CollectionNotFound => "collection-not-found",
            ErrorCode::CollectionExists => "collection-exists",
            ErrorCode::InvalidCollection => "invalid-collection",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
        }
    }

    /// The code a [`QueryError`] surfaces as.
    pub fn from_query_error(e: &QueryError) -> Self {
        match e {
            QueryError::Cancelled => ErrorCode::Cancelled,
            QueryError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
            QueryError::BudgetExhausted {
                budget: BudgetKind::Visits,
                ..
            } => ErrorCode::VisitBudgetExhausted,
            QueryError::BudgetExhausted {
                budget: BudgetKind::Io,
                ..
            } => ErrorCode::IoBudgetExhausted,
            QueryError::Io(_) => ErrorCode::StorageFailed,
        }
    }

    /// The code a [`StoreError`] surfaces as (outside a query, e.g. while
    /// creating or loading a collection).
    pub fn from_store_error(e: &StoreError) -> Self {
        match e {
            // Asking for a version outside the retained history window is
            // a client-side mistake, not a storage fault.
            StoreError::VersionNotRetained(_) => ErrorCode::BadRequest,
            StoreError::Corrupt { .. } => ErrorCode::StorageFailed,
            _ => ErrorCode::StorageFailed,
        }
    }

    /// Renders the standard error body: `{"error", "code", "message"}`.
    pub fn error_json(self, message: &str) -> String {
        format!(
            "{{\"error\":\"{}\",\"code\":{},\"message\":\"{}\"}}",
            self.label(),
            self.code(),
            json_escape(message)
        )
    }
}

// ---------------------------------------------------------------------------
// QuerySpec
// ---------------------------------------------------------------------------

/// An owned, serializable ANN query: the wire-level dual of
/// [`AnnRequest`].
///
/// Carries everything a remote client may choose — algorithm, metric,
/// `k`, self-exclusion, deadline, budgets, retry policy. The two
/// runtime-only attachments ([`CancelToken`](crate::CancelToken) and the
/// tracer) are deliberately absent: they are capabilities of the process
/// running the query, not properties of the query, and the server wires
/// them in per connection.
///
/// The absolute [`Instant`] deadline of `AnnRequest` becomes a *relative*
/// `deadline_ms` here (an absolute instant is meaningless on another
/// machine); [`to_request`](Self::to_request) re-bases it against
/// `Instant::now()` at conversion time.
#[derive(Clone, Debug, PartialEq)]
pub struct QuerySpec {
    /// Neighbors per query object (`1` = plain ANN).
    pub k: usize,
    /// Self-join mode: skip same-oid pairs.
    pub exclude_self: bool,
    /// Pruning metric.
    pub metric: MetricChoice,
    /// Algorithm and its method-specific knobs.
    pub algorithm: Algorithm,
    /// Relative deadline in milliseconds from query start.
    pub deadline_ms: Option<u64>,
    /// Physical page-read budget.
    pub io_budget: Option<u64>,
    /// Node-expansion budget.
    pub visit_budget: Option<u64>,
    /// Transient-fault retry policy.
    pub retry: Option<RetryPolicy>,
    /// Snapshot version to query (time-travel over a versioned
    /// collection); absent means the latest version.
    pub version: Option<u32>,
    /// Intra-query worker threads (`1` = serial, `0` = one per core).
    /// Additive optional field: omitted on the wire when `1`, so older
    /// peers and documents are unaffected (no schema bump — same rule as
    /// `"version"`). The server clamps the effective value to its
    /// compute-token capacity.
    pub threads: usize,
}

impl Default for QuerySpec {
    /// MBA with the same defaults as `AnnRequest::new(Algorithm::mba())`.
    fn default() -> Self {
        QuerySpec::new(Algorithm::mba())
    }
}

impl QuerySpec {
    /// A spec for `algorithm` with `k = 1`, no self-exclusion, NXNDIST,
    /// and no resilience limits — the same defaults as
    /// [`AnnRequest::new`].
    pub fn new(algorithm: Algorithm) -> Self {
        QuerySpec {
            k: 1,
            exclude_self: false,
            metric: MetricChoice::default(),
            algorithm,
            deadline_ms: None,
            io_budget: None,
            visit_budget: None,
            retry: None,
            version: None,
            threads: 1,
        }
    }

    /// Captures an [`AnnRequest`]'s wire-visible state. Lossless except
    /// for the deliberate re-basing: an absolute deadline becomes the
    /// milliseconds *remaining* from now (saturating at zero), and the
    /// runtime-only cancel token / tracer are dropped (see the type
    /// docs).
    pub fn from_request(req: &AnnRequest<'_>) -> Self {
        QuerySpec {
            k: req.k,
            exclude_self: req.exclude_self,
            metric: req.metric,
            algorithm: req.algorithm,
            deadline_ms: req.deadline.map(|d| {
                let now = Instant::now();
                d.saturating_duration_since(now).as_millis() as u64
            }),
            io_budget: req.io_budget,
            visit_budget: req.visit_budget,
            retry: req.retry,
            version: req.version,
            threads: req.threads,
        }
    }

    /// Builds the equivalent [`AnnRequest`], re-basing `deadline_ms`
    /// against `Instant::now()`. Attach a cancel token / tracer on the
    /// returned request as needed.
    pub fn to_request(&self) -> AnnRequest<'static> {
        let mut req = AnnRequest::new(self.algorithm)
            .k(self.k)
            .exclude_self(self.exclude_self)
            .metric(self.metric);
        if let Some(ms) = self.deadline_ms {
            req = req.deadline(Instant::now() + Duration::from_millis(ms));
        }
        if let Some(pages) = self.io_budget {
            req = req.io_budget(pages);
        }
        if let Some(nodes) = self.visit_budget {
            req = req.visit_budget(nodes);
        }
        if let Some(policy) = self.retry {
            req = req.retry(policy);
        }
        if let Some(version) = self.version {
            req = req.at_version(version);
        }
        req.threads(self.threads)
    }

    /// Serializes to the versioned JSON wire form. Deterministic: equal
    /// specs produce byte-identical documents (the round-trip property
    /// tests pin this).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str(&format!("{{\"v\":{WIRE_SCHEMA_VERSION},"));
        out.push_str("\"algorithm\":");
        match self.algorithm {
            Algorithm::Mba {
                traversal,
                expansion,
                threads,
            } => {
                out.push_str(&format!(
                    "{{\"name\":\"mba\",\"traversal\":\"{}\",\"expansion\":\"{}\",\"threads\":{}}}",
                    traversal_name(traversal),
                    expansion_name(expansion),
                    threads
                ));
            }
            Algorithm::Bnn { group_size } => {
                out.push_str(&format!("{{\"name\":\"bnn\",\"group_size\":{group_size}}}"));
            }
            Algorithm::Mnn => out.push_str("{\"name\":\"mnn\"}"),
            Algorithm::Hnn { avg_cell_occupancy } => {
                out.push_str(&format!(
                    "{{\"name\":\"hnn\",\"avg_cell_occupancy\":{}}}",
                    json_num(avg_cell_occupancy)
                ));
            }
            // `Algorithm` is non_exhaustive for downstream crates only;
            // in-crate this match is exhaustive today and must be updated
            // together with any new variant.
        }
        out.push_str(&format!(
            ",\"metric\":\"{}\",\"k\":{},\"exclude_self\":{}",
            metric_wire_name(self.metric),
            self.k,
            self.exclude_self
        ));
        if let Some(ms) = self.deadline_ms {
            out.push_str(&format!(",\"deadline_ms\":{ms}"));
        }
        if let Some(pages) = self.io_budget {
            out.push_str(&format!(",\"io_budget\":{pages}"));
        }
        if let Some(nodes) = self.visit_budget {
            out.push_str(&format!(",\"visit_budget\":{nodes}"));
        }
        if let Some(policy) = self.retry {
            out.push_str(&format!(
                ",\"retry\":{{\"max_attempts\":{},\"backoff_ms\":{}}}",
                policy.max_attempts,
                policy.backoff.as_millis()
            ));
        }
        if let Some(version) = self.version {
            out.push_str(&format!(",\"version\":{version}"));
        }
        if self.threads != 1 {
            out.push_str(&format!(",\"threads\":{}", self.threads));
        }
        out.push('}');
        out
    }

    /// Parses the versioned JSON wire form (see [`WIRE_SCHEMA_VERSION`]
    /// for the compatibility rule).
    pub fn from_json(s: &str) -> Result<Self, WireError> {
        let doc = JsonValue::parse(s)?;
        Self::from_value(&doc)
    }

    /// Parses a spec out of an already-parsed [`JsonValue`] (the serving
    /// layer parses the body once and picks fields out).
    pub fn from_value(doc: &JsonValue) -> Result<Self, WireError> {
        let v = doc
            .get("v")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| WireError::Schema("missing integer field \"v\"".into()))?;
        if v > WIRE_SCHEMA_VERSION {
            return Err(WireError::UnsupportedVersion(v));
        }
        let alg = doc
            .get("algorithm")
            .ok_or_else(|| WireError::Schema("missing field \"algorithm\"".into()))?;
        let name = alg
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| WireError::Schema("algorithm needs a string \"name\"".into()))?;
        let algorithm = match name {
            "mba" => {
                let mut traversal = crate::mba::Traversal::default();
                let mut expansion = crate::mba::Expansion::default();
                if let Some(t) = alg.get("traversal") {
                    traversal = traversal_from_name(
                        t.as_str()
                            .ok_or_else(|| WireError::Schema("\"traversal\" must be a string".into()))?,
                    )?;
                }
                if let Some(e) = alg.get("expansion") {
                    expansion = expansion_from_name(
                        e.as_str()
                            .ok_or_else(|| WireError::Schema("\"expansion\" must be a string".into()))?,
                    )?;
                }
                let threads = match alg.get("threads") {
                    None => 1,
                    Some(t) => wire_threads(t)?,
                };
                Algorithm::Mba {
                    traversal,
                    expansion,
                    threads,
                }
            }
            "bnn" => {
                let group_size = match alg.get("group_size") {
                    None => {
                        if let Algorithm::Bnn { group_size } = Algorithm::bnn() {
                            group_size
                        } else {
                            unreachable!("Algorithm::bnn() is Bnn")
                        }
                    }
                    Some(g) => {
                        let g = g.as_usize().ok_or_else(|| {
                            WireError::Schema("\"group_size\" must be an integer".into())
                        })?;
                        if g == 0 {
                            return Err(WireError::Schema("\"group_size\" must be positive".into()));
                        }
                        g
                    }
                };
                Algorithm::Bnn { group_size }
            }
            "mnn" => Algorithm::Mnn,
            "hnn" => {
                let avg_cell_occupancy = match alg.get("avg_cell_occupancy") {
                    None => {
                        if let Algorithm::Hnn { avg_cell_occupancy } = Algorithm::hnn() {
                            avg_cell_occupancy
                        } else {
                            unreachable!("Algorithm::hnn() is Hnn")
                        }
                    }
                    Some(o) => {
                        let o = o.as_f64().ok_or_else(|| {
                            WireError::Schema("\"avg_cell_occupancy\" must be a number".into())
                        })?;
                        if !(o.is_finite() && o > 0.0) {
                            return Err(WireError::Schema(
                                "\"avg_cell_occupancy\" must be finite and positive".into(),
                            ));
                        }
                        o
                    }
                };
                Algorithm::Hnn { avg_cell_occupancy }
            }
            other => {
                return Err(WireError::Schema(format!(
                    "unknown algorithm {other:?} (expected mba|bnn|mnn|hnn)"
                )))
            }
        };
        let metric = match doc.get("metric") {
            None => MetricChoice::default(),
            Some(m) => metric_from_wire_name(
                m.as_str()
                    .ok_or_else(|| WireError::Schema("\"metric\" must be a string".into()))?,
            )?,
        };
        let k = doc
            .get("k")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| WireError::Schema("missing integer field \"k\"".into()))?;
        let exclude_self = match doc.get("exclude_self") {
            None => false,
            Some(b) => b
                .as_bool()
                .ok_or_else(|| WireError::Schema("\"exclude_self\" must be a bool".into()))?,
        };
        let opt_u64 = |key: &str| -> Result<Option<u64>, WireError> {
            match doc.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(val) => val
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| WireError::Schema(format!("{key:?} must be an integer"))),
            }
        };
        let retry = match doc.get("retry") {
            None | Some(JsonValue::Null) => None,
            Some(r) => {
                let max_attempts = r
                    .get("max_attempts")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| {
                        WireError::Schema("retry needs an integer \"max_attempts\"".into())
                    })?;
                if max_attempts == 0 || max_attempts > u32::MAX as u64 {
                    return Err(WireError::Schema(
                        "\"max_attempts\" must be in 1..=2^32-1".into(),
                    ));
                }
                let backoff_ms = match r.get("backoff_ms") {
                    None => 0,
                    Some(b) => b.as_u64().ok_or_else(|| {
                        WireError::Schema("\"backoff_ms\" must be an integer".into())
                    })?,
                };
                Some(RetryPolicy {
                    max_attempts: max_attempts as u32,
                    backoff: Duration::from_millis(backoff_ms),
                })
            }
        };
        let version = match opt_u64("version")? {
            None => None,
            Some(0) => {
                return Err(WireError::Schema(
                    "\"version\" must be a positive integer".into(),
                ))
            }
            Some(v) => Some(u32::try_from(v).map_err(|_| {
                WireError::Schema("\"version\" must fit in 32 bits".into())
            })?),
        };
        let threads = match doc.get("threads") {
            None | Some(JsonValue::Null) => 1,
            Some(t) => wire_threads(t)?,
        };
        Ok(QuerySpec {
            k,
            exclude_self,
            metric,
            algorithm,
            deadline_ms: opt_u64("deadline_ms")?,
            io_budget: opt_u64("io_budget")?,
            visit_budget: opt_u64("visit_budget")?,
            retry,
            version,
            threads,
        })
    }
}

impl From<&AnnRequest<'_>> for QuerySpec {
    fn from(req: &AnnRequest<'_>) -> Self {
        QuerySpec::from_request(req)
    }
}

impl From<&QuerySpec> for AnnRequest<'static> {
    fn from(spec: &QuerySpec) -> Self {
        spec.to_request()
    }
}

/// Parses and bounds a wire-level thread count (see
/// [`MAX_WIRE_THREADS`]). Shared by the request-level `"threads"` field
/// and the MBA variant's knob so neither can smuggle an unbounded value
/// past validation.
fn wire_threads(t: &JsonValue) -> Result<usize, WireError> {
    let threads = t
        .as_usize()
        .ok_or_else(|| WireError::Schema("\"threads\" must be an integer".into()))?;
    if threads > MAX_WIRE_THREADS {
        return Err(WireError::Schema(format!(
            "\"threads\" must be at most {MAX_WIRE_THREADS}"
        )));
    }
    Ok(threads)
}

fn traversal_name(t: crate::mba::Traversal) -> &'static str {
    match t {
        crate::mba::Traversal::DepthFirst => "depth-first",
        crate::mba::Traversal::BreadthFirst => "breadth-first",
    }
}

fn traversal_from_name(s: &str) -> Result<crate::mba::Traversal, WireError> {
    match s {
        "depth-first" => Ok(crate::mba::Traversal::DepthFirst),
        "breadth-first" => Ok(crate::mba::Traversal::BreadthFirst),
        other => Err(WireError::Schema(format!("unknown traversal {other:?}"))),
    }
}

fn expansion_name(e: crate::mba::Expansion) -> &'static str {
    match e {
        crate::mba::Expansion::Bidirectional => "bidirectional",
        crate::mba::Expansion::Unidirectional => "unidirectional",
    }
}

fn expansion_from_name(s: &str) -> Result<crate::mba::Expansion, WireError> {
    match s {
        "bidirectional" => Ok(crate::mba::Expansion::Bidirectional),
        "unidirectional" => Ok(crate::mba::Expansion::Unidirectional),
        other => Err(WireError::Schema(format!("unknown expansion {other:?}"))),
    }
}

/// The wire name of a [`MetricChoice`].
pub fn metric_wire_name(m: MetricChoice) -> &'static str {
    match m {
        MetricChoice::Nxn => "nxn",
        MetricChoice::MaxMax => "maxmax",
    }
}

/// Parses a [`MetricChoice`] wire name.
pub fn metric_from_wire_name(s: &str) -> Result<MetricChoice, WireError> {
    match s {
        "nxn" => Ok(MetricChoice::Nxn),
        "maxmax" => Ok(MetricChoice::MaxMax),
        other => Err(WireError::Schema(format!(
            "unknown metric {other:?} (expected nxn|maxmax)"
        ))),
    }
}

// ---------------------------------------------------------------------------
// QueryOutcome
// ---------------------------------------------------------------------------

/// The owned, serializable result of one query: the neighbor pairs and
/// work counters of [`AnnOutput`], plus (when the client asked to trace)
/// the run's [`ExecutionReport`] inline.
#[derive(Clone, Debug, Default)]
pub struct QueryOutcome {
    /// Neighbor pairs, in the algorithm's canonical emission order.
    pub results: Vec<NeighborPair>,
    /// Work counters for the run.
    pub stats: AnnStats,
    /// The execution trace, when one was recorded.
    pub report: Option<ExecutionReport>,
    /// The snapshot version the query ran against, when the collection
    /// is versioned. Reported even when the client did not pin one, so a
    /// follow-up time-travel query can name exactly what it saw.
    pub version: Option<u32>,
}

impl From<AnnOutput> for QueryOutcome {
    fn from(out: AnnOutput) -> Self {
        QueryOutcome {
            results: out.results,
            stats: out.stats,
            report: None,
            version: None,
        }
    }
}

impl QueryOutcome {
    /// Attaches an execution report (builder-style).
    pub fn with_report(mut self, report: ExecutionReport) -> Self {
        self.report = Some(report);
        self
    }

    /// Records the snapshot version the query ran against
    /// (builder-style).
    pub fn with_version(mut self, version: u32) -> Self {
        self.version = Some(version);
        self
    }

    /// Serializes to the versioned JSON wire form. Distances use the
    /// shortest round-trip `f64` rendering, so a client parsing them back
    /// recovers bit-identical values — the serving differential gates
    /// compare result bytes across the wire.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.results.len() * 32);
        out.push_str(&format!(
            "{{\"v\":{WIRE_SCHEMA_VERSION},\"count\":{},\"pairs\":[",
            self.results.len()
        ));
        for (i, p) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"r\":{},\"s\":{},\"dist\":{}}}",
                p.r_oid,
                p.s_oid,
                json_num(p.dist)
            ));
        }
        out.push_str("],\"stats\":");
        out.push_str(&stats_json(&self.stats));
        if let Some(version) = self.version {
            out.push_str(&format!(",\"version\":{version}"));
        }
        if let Some(report) = &self.report {
            out.push_str(",\"trace\":");
            out.push_str(&report.to_json());
        }
        out.push('}');
        out
    }

    /// Parses the wire form back into pairs and counters. The `"trace"`
    /// section, when present, is not reconstructed (its Rust type is not
    /// wire-parseable today); [`QueryOutcome::report`] comes back `None`.
    pub fn from_json(s: &str) -> Result<Self, WireError> {
        let doc = JsonValue::parse(s)?;
        let v = doc
            .get("v")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| WireError::Schema("missing integer field \"v\"".into()))?;
        if v > WIRE_SCHEMA_VERSION {
            return Err(WireError::UnsupportedVersion(v));
        }
        let pairs = doc
            .get("pairs")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| WireError::Schema("missing array field \"pairs\"".into()))?;
        let mut results = Vec::with_capacity(pairs.len());
        for p in pairs {
            let r_oid = p
                .get("r")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| WireError::Schema("pair needs integer \"r\"".into()))?;
            let s_oid = p
                .get("s")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| WireError::Schema("pair needs integer \"s\"".into()))?;
            let dist = p
                .get("dist")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| WireError::Schema("pair needs number \"dist\"".into()))?;
            results.push(NeighborPair { r_oid, s_oid, dist });
        }
        let stats = match doc.get("stats") {
            Some(st) => stats_from_value(st)?,
            None => AnnStats::default(),
        };
        let version = match doc.get("version") {
            None | Some(JsonValue::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| {
                        WireError::Schema("\"version\" must be a 32-bit integer".into())
                    })?,
            ),
        };
        Ok(QueryOutcome {
            results,
            stats,
            report: None,
            version,
        })
    }
}

fn stats_json(s: &AnnStats) -> String {
    format!(
        "{{\"distance_computations\":{},\"lpqs_created\":{},\"enqueued\":{},\
         \"pruned_on_probe\":{},\"pruned_in_queue\":{},\"r_nodes_expanded\":{},\
         \"s_nodes_expanded\":{},\"io\":{}}}",
        s.distance_computations,
        s.lpqs_created,
        s.enqueued,
        s.pruned_on_probe,
        s.pruned_in_queue,
        s.r_nodes_expanded,
        s.s_nodes_expanded,
        json_io(&s.io)
    )
}

fn stats_from_value(st: &JsonValue) -> Result<AnnStats, WireError> {
    let field = |key: &str| -> Result<u64, WireError> {
        match st.get(key) {
            None => Ok(0),
            Some(v) => v
                .as_u64()
                .ok_or_else(|| WireError::Schema(format!("stats {key:?} must be an integer"))),
        }
    };
    let mut stats = AnnStats {
        distance_computations: field("distance_computations")?,
        lpqs_created: field("lpqs_created")?,
        enqueued: field("enqueued")?,
        pruned_on_probe: field("pruned_on_probe")?,
        pruned_in_queue: field("pruned_in_queue")?,
        r_nodes_expanded: field("r_nodes_expanded")?,
        s_nodes_expanded: field("s_nodes_expanded")?,
        ..Default::default()
    };
    if let Some(io) = st.get("io") {
        let io_field = |key: &str| -> Result<u64, WireError> {
            match io.get(key) {
                None => Ok(0),
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| WireError::Schema(format!("io {key:?} must be an integer"))),
            }
        };
        stats.io.logical_reads = io_field("logical_reads")?;
        stats.io.physical_reads = io_field("physical_reads")?;
        stats.io.physical_writes = io_field("physical_writes")?;
        stats.io.pool_hits = io_field("pool_hits")?;
        stats.io.pool_misses = io_field("pool_misses")?;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_value_parses_scalars_and_nesting() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("-3.5e2").unwrap(), JsonValue::Num(-350.0));
        assert_eq!(
            JsonValue::parse("\"a\\nb\\u0041\\ud83d\\ude00\"").unwrap(),
            JsonValue::Str("a\nbA😀".into())
        );
        let v = JsonValue::parse(" { \"a\" : [ 1 , {\"b\": false} ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].get("b"),
            Some(&JsonValue::Bool(false))
        );
    }

    #[test]
    fn json_value_rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "1 2", "\"\\q\"", "\"\\ud800\"",
            "nan", "+1", "01x",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Depth bomb: must error, not overflow the stack.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(JsonValue::parse(&deep).is_err());
    }

    #[test]
    fn json_value_rejects_trailing_data() {
        for bad in ["1 2", "{} {}", "null,", "[1]x", "true false", "\"a\"\"b\""] {
            assert!(
                matches!(
                    JsonValue::parse(bad),
                    Err(WireError::Parse { what, .. }) if what.contains("trailing")
                        || what.contains("expected"),
                ),
                "accepted trailing bytes in {bad:?}"
            );
        }
    }

    #[test]
    fn json_value_rejects_duplicate_object_keys() {
        for bad in [
            r#"{"a":1,"a":2}"#,
            r#"{"a":1,"b":2,"a":3}"#,
            r#"{"v":1,"k":1,"version":2,"version":3}"#,
            r#"{"outer":{"x":1,"x":2}}"#,
        ] {
            let e = JsonValue::parse(bad).unwrap_err();
            assert!(
                matches!(&e, WireError::Parse { what, .. } if what.contains("duplicate")),
                "accepted duplicate keys in {bad:?}: {e:?}"
            );
        }
        // Same key at *different* nesting levels is fine.
        assert!(JsonValue::parse(r#"{"a":{"a":1},"b":[{"a":2}]}"#).is_ok());
    }

    #[test]
    fn spec_version_field_parses_and_validates() {
        let spec =
            QuerySpec::from_json(r#"{"v":1,"algorithm":{"name":"mnn"},"k":1,"version":7}"#)
                .unwrap();
        assert_eq!(spec.version, Some(7));
        // Absent means latest; zero and out-of-range are schema errors.
        let spec = QuerySpec::from_json(r#"{"v":1,"algorithm":{"name":"mnn"},"k":1}"#).unwrap();
        assert_eq!(spec.version, None);
        assert!(
            QuerySpec::from_json(r#"{"v":1,"algorithm":{"name":"mnn"},"k":1,"version":0}"#)
                .is_err()
        );
        assert!(QuerySpec::from_json(
            r#"{"v":1,"algorithm":{"name":"mnn"},"k":1,"version":4294967296}"#
        )
        .is_err());
    }

    #[test]
    fn outcome_version_field_round_trips() {
        let outcome = QueryOutcome {
            version: Some(5),
            ..QueryOutcome::default()
        };
        let json = outcome.to_json();
        assert!(json.contains("\"version\":5"));
        let back = QueryOutcome::from_json(&json).unwrap();
        assert_eq!(back.version, Some(5));
        // Unversioned outcomes omit the field entirely.
        let json = QueryOutcome::default().to_json();
        assert!(!json.contains("version"));
        assert_eq!(QueryOutcome::from_json(&json).unwrap().version, None);
    }

    #[test]
    fn spec_threads_field_round_trips_without_schema_bump() {
        // Absent means serial; the field is additive under WIRE_SCHEMA_VERSION 1.
        let spec = QuerySpec::from_json(r#"{"v":1,"algorithm":{"name":"mnn"},"k":1}"#).unwrap();
        assert_eq!(spec.threads, 1);
        assert!(!spec.to_json().contains("threads"));

        let spec =
            QuerySpec::from_json(r#"{"v":1,"algorithm":{"name":"mnn"},"k":1,"threads":4}"#)
                .unwrap();
        assert_eq!(spec.threads, 4);
        let json = spec.to_json();
        assert!(json.contains("\"threads\":4"));
        assert!(json.contains("\"v\":1"), "threads must not bump the schema version");
        let back = QuerySpec::from_json(&json).unwrap();
        assert_eq!(back.threads, 4);

        // 0 is valid on the wire: "one worker per core".
        let spec =
            QuerySpec::from_json(r#"{"v":1,"algorithm":{"name":"mnn"},"k":1,"threads":0}"#)
                .unwrap();
        assert_eq!(spec.threads, 0);
        assert!(spec.to_json().contains("\"threads\":0"));

        // Null is treated as absent; fractions are schema errors.
        let spec =
            QuerySpec::from_json(r#"{"v":1,"algorithm":{"name":"mnn"},"k":1,"threads":null}"#)
                .unwrap();
        assert_eq!(spec.threads, 1);
        assert!(QuerySpec::from_json(
            r#"{"v":1,"algorithm":{"name":"mnn"},"k":1,"threads":2.5}"#
        )
        .is_err());
    }

    #[test]
    fn wire_threads_are_bounded_at_both_sites() {
        // Request-level field: the cap is inclusive.
        let at_cap = format!(
            r#"{{"v":1,"algorithm":{{"name":"mnn"}},"k":1,"threads":{MAX_WIRE_THREADS}}}"#
        );
        assert_eq!(
            QuerySpec::from_json(&at_cap).unwrap().threads,
            MAX_WIRE_THREADS
        );
        let over = format!(
            r#"{{"v":1,"algorithm":{{"name":"mnn"}},"k":1,"threads":{}}}"#,
            MAX_WIRE_THREADS + 1
        );
        assert!(QuerySpec::from_json(&over).is_err());

        // The MBA variant's own knob goes through the same validation —
        // it must not smuggle an unbounded spawn count past the schema.
        let over_mba = format!(
            r#"{{"v":1,"algorithm":{{"name":"mba","threads":{}}},"k":1}}"#,
            MAX_WIRE_THREADS + 1
        );
        assert!(QuerySpec::from_json(&over_mba).is_err());
        let ok_mba = format!(
            r#"{{"v":1,"algorithm":{{"name":"mba","threads":{MAX_WIRE_THREADS}}},"k":1}}"#
        );
        let spec = QuerySpec::from_json(&ok_mba).unwrap();
        assert!(matches!(
            spec.algorithm,
            Algorithm::Mba {
                threads: MAX_WIRE_THREADS,
                ..
            }
        ));
    }

    #[test]
    fn spec_threads_survives_request_conversion() {
        let spec =
            QuerySpec::from_json(r#"{"v":1,"algorithm":{"name":"bnn","group_size":64},"k":2,"threads":3}"#)
                .unwrap();
        let req = spec.to_request();
        assert_eq!(req.threads, 3);
        let back = QuerySpec::from_request(&req);
        assert_eq!(back.threads, 3);
    }

    #[test]
    fn as_u64_rejects_fractions_negatives_and_huge() {
        assert_eq!(JsonValue::Num(3.0).as_u64(), Some(3));
        assert_eq!(JsonValue::Num(3.5).as_u64(), None);
        assert_eq!(JsonValue::Num(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Num(1e300).as_u64(), None);
    }

    #[test]
    fn full_range_u64_integers_parse_losslessly() {
        // Oids above 2^53 must not be squeezed through an f64.
        assert_eq!(
            JsonValue::parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(
            JsonValue::parse("18001450823293731629").unwrap().as_u64(),
            Some(18001450823293731629)
        );
        // Past u64::MAX the literal falls back to f64 and is rejected
        // as an integer.
        assert_eq!(
            JsonValue::parse("18446744073709551616").unwrap().as_u64(),
            None
        );
    }

    #[test]
    fn collection_id_validation() {
        assert!(CollectionId::new("tac-2d_v1").is_ok());
        assert!(CollectionId::new("").is_err());
        assert!(CollectionId::new("a/b").is_err());
        assert!(CollectionId::new("..").is_err());
        assert!(CollectionId::new(&"x".repeat(65)).is_err());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = QuerySpec {
            k: 7,
            exclude_self: true,
            metric: MetricChoice::MaxMax,
            algorithm: Algorithm::Bnn { group_size: 64 },
            deadline_ms: Some(1500),
            io_budget: Some(10_000),
            visit_budget: None,
            retry: Some(RetryPolicy {
                max_attempts: 4,
                backoff: Duration::from_millis(2),
            }),
            version: Some(12),
            threads: 2,
        };
        let json = spec.to_json();
        let back = QuerySpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        // Serialization is deterministic: a second trip is byte-stable.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn spec_defaults_match_request_defaults() {
        let spec = QuerySpec::from_json(r#"{"v":1,"algorithm":{"name":"mnn"},"k":1}"#).unwrap();
        assert_eq!(spec, QuerySpec::new(Algorithm::Mnn));
        let req = AnnRequest::new(Algorithm::Mnn);
        assert_eq!(QuerySpec::from_request(&req), spec);
    }

    #[test]
    fn spec_rejects_newer_versions_and_unknown_names() {
        let e = QuerySpec::from_json(r#"{"v":2,"algorithm":{"name":"mnn"},"k":1}"#).unwrap_err();
        assert_eq!(e, WireError::UnsupportedVersion(2));
        assert!(QuerySpec::from_json(r#"{"v":1,"algorithm":{"name":"quantum"},"k":1}"#).is_err());
        assert!(QuerySpec::from_json(r#"{"v":1,"algorithm":{"name":"mba","traversal":"sideways"},"k":1}"#).is_err());
        assert!(QuerySpec::from_json(r#"{"v":1,"algorithm":{"name":"mnn"}}"#).is_err());
    }

    #[test]
    fn request_conversion_preserves_knobs() {
        let spec = QuerySpec {
            k: 3,
            exclude_self: true,
            metric: MetricChoice::Nxn,
            algorithm: Algorithm::mba(),
            deadline_ms: Some(60_000),
            io_budget: Some(5),
            visit_budget: Some(6),
            retry: Some(RetryPolicy {
                max_attempts: 2,
                backoff: Duration::ZERO,
            }),
            version: Some(4),
            threads: 1,
        };
        let req = spec.to_request();
        assert_eq!(req.k, 3);
        assert!(req.exclude_self);
        assert_eq!(req.io_budget, Some(5));
        assert_eq!(req.visit_budget, Some(6));
        assert_eq!(req.retry, spec.retry);
        assert_eq!(req.version, Some(4));
        assert!(req.deadline.is_some());
        let back = QuerySpec::from_request(&req);
        // The deadline re-bases through "remaining ms", which only ever
        // shrinks; everything else is exactly preserved.
        assert!(back.deadline_ms.unwrap() <= 60_000);
        assert_eq!(
            QuerySpec {
                deadline_ms: None,
                ..back
            },
            QuerySpec {
                deadline_ms: None,
                ..spec
            }
        );
    }

    #[test]
    fn outcome_round_trips_pairs_bit_exactly() {
        let outcome = QueryOutcome {
            results: vec![
                NeighborPair {
                    r_oid: 0,
                    s_oid: 9,
                    dist: 0.1 + 0.2, // not exactly 0.3: stresses shortest round-trip
                },
                NeighborPair {
                    r_oid: 1,
                    s_oid: 3,
                    dist: 1.0e8 + 1.0 / 3.0,
                },
            ],
            stats: AnnStats {
                distance_computations: 12,
                r_nodes_expanded: 3,
                ..Default::default()
            },
            report: None,
            version: None,
        };
        let back = QueryOutcome::from_json(&outcome.to_json()).unwrap();
        assert_eq!(back.results.len(), 2);
        for (a, b) in outcome.results.iter().zip(&back.results) {
            assert_eq!(a.r_oid, b.r_oid);
            assert_eq!(a.s_oid, b.s_oid);
            assert_eq!(a.dist.to_bits(), b.dist.to_bits(), "distance not bit-exact");
        }
        assert_eq!(back.stats.distance_computations, 12);
        assert_eq!(back.stats.r_nodes_expanded, 3);
    }

    #[test]
    fn error_codes_are_stable_and_mapped() {
        assert_eq!(ErrorCode::Cancelled.code(), 1001);
        assert_eq!(ErrorCode::Overloaded.http_status(), 429);
        assert_eq!(
            ErrorCode::from_query_error(&QueryError::DeadlineExceeded),
            ErrorCode::DeadlineExceeded
        );
        let body = ErrorCode::CollectionNotFound.error_json("no such collection \"x\"");
        let doc = JsonValue::parse(&body).unwrap();
        assert_eq!(doc.get("code").unwrap().as_u64(), Some(2000));
        assert_eq!(
            doc.get("error").unwrap().as_str(),
            Some("collection-not-found")
        );
    }
}
