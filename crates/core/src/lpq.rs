//! The **Local Priority Queue** (LPQ) and its pruning bound (paper §3.3.1).
//!
//! During ANN evaluation every entry of the query index `I_R` owns exactly
//! one LPQ holding candidate entries from the target index `I_S`. Each
//! queued entry carries:
//!
//! * `MIND` — `MINMINDIST(owner, entry)`, the priority (lower bound);
//! * `MAXD` — the pruning metric (NXNDIST or MAXMAXDIST), an upper bound on
//!   the distance within which the entry guarantees neighbors.
//!
//! The LPQ also maintains the owner's pruning bound `MAXD`:
//! for ANN (`k = 1`) the minimum of all offered entry `MAXD`s, and for AkNN
//! the `k`-th smallest (each queued `I_S` entry is a disjoint subtree
//! guaranteeing at least one point within its own `MAXD` of every point in
//! the owner, so `k` entries guarantee `k` candidates — §3.4). Both are
//! additionally clipped by the bound inherited from the parent LPQ, making
//! the bound monotonically non-increasing over the whole search, which is
//! the property the Three-Stage pruning relies on (§3.3.3).
//!
//! The queue is kept as a `MIND`-sorted vector. That makes the **Filter
//! stage** — "entries with a MIND greater than the MAXD of the new entry
//! are immediately discarded" — a truncation of the sorted tail whenever
//! the bound tightens.

use crate::node::Entry;
use ann_geom::{min_min_dist_sq, min_min_dist_sq_within, PruneMetric};

/// Non-NaN `f64` with a total order.
#[derive(Clone, Copy, Debug, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Bounds are never NaN, and the squared distances compared here
        // are never negative zero, so the total order agrees with the
        // partial one — without a panic path.
        self.0.total_cmp(&other.0)
    }
}

/// Relative tolerance for pruning comparisons.
///
/// `MIND` and `MAXD` of the *same* geometric configuration are computed
/// through different floating-point expression trees; when the true values
/// coincide (the nearest neighbor sits exactly on the face of the MBR that
/// determines the bound) the computed `MIND` can exceed the computed
/// `MAXD` by a few ulps, and an exact comparison would prune the true
/// result. All pruning tests therefore allow this relative slack —
/// pruning slightly *less* is always sound.
pub const PRUNE_EPS: f64 = 1e-12;

/// Tracks the owner's pruning bound `MAXD`.
///
/// Soundness for `k > 1` requires care: the `k` entries backing the bound
/// must guarantee `k` *distinct* points, which holds only while they are
/// pairwise-disjoint subtrees. Entries in a queue are always disjoint
/// (a popped node is replaced by its children), so the tracker counts only
/// *live* entries: [`offer`](Self::offer) on enqueue,
/// [`remove`](Self::remove) on dequeue/filter. Each emitted result lowers
/// the requirement by one ([`satisfy_one`](Self::satisfy_one)). Once a
/// single neighbor remains wanted, the tracker switches to the tighter
/// min-over-everything-ever-offered bound, which is sound for one point
/// regardless of entry overlap.
#[derive(Clone, Debug)]
pub struct BoundTracker {
    /// Neighbors originally requested.
    k_original: usize,
    /// Neighbors still wanted.
    k_remaining: usize,
    /// Bound inherited from the parent LPQ (squared).
    inherited_sq: f64,
    /// Minimum upper bound ever offered (squared) — sound for `k == 1`.
    min_ever_sq: f64,
    /// Multiset of live entries' upper bounds (squared), for `k > 1`.
    /// Never maintained when `k_original == 1` (the dominant ANN case):
    /// the min-ever bound is strictly tighter there and the map would be
    /// pure overhead in the hottest loop of the whole system.
    live: std::collections::BTreeMap<OrdF64, usize>,
    live_len: usize,
    /// Cached result of the k-th-smallest scan; `None` after a mutation.
    cached_kth: std::cell::Cell<Option<f64>>,
}

impl BoundTracker {
    /// Creates a tracker for `k` neighbors with an inherited initial bound
    /// (squared). Pass `f64::INFINITY` at the root.
    pub fn new(k: usize, inherited_sq: f64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        BoundTracker {
            k_original: k,
            k_remaining: k,
            inherited_sq,
            min_ever_sq: f64::INFINITY,
            live: std::collections::BTreeMap::new(),
            live_len: 0,
            cached_kth: std::cell::Cell::new(None),
        }
    }

    /// Records the squared upper bound of an entry entering the queue.
    pub fn offer(&mut self, maxd_sq: f64) {
        if maxd_sq < self.min_ever_sq {
            self.min_ever_sq = maxd_sq;
        }
        if self.k_original > 1 {
            *self.live.entry(OrdF64(maxd_sq)).or_insert(0) += 1;
            self.live_len += 1;
            self.cached_kth.set(None);
        }
    }

    /// Records that an entry with this squared upper bound left the queue
    /// (dequeued or filtered).
    pub fn remove(&mut self, maxd_sq: f64) {
        if self.k_original == 1 {
            return; // no live multiset in the min-ever regime
        }
        if let Some(n) = self.live.get_mut(&OrdF64(maxd_sq)) {
            *n -= 1;
            if *n == 0 {
                self.live.remove(&OrdF64(maxd_sq));
            }
            self.live_len -= 1;
            self.cached_kth.set(None);
        } else {
            debug_assert!(false, "removed a bound that was never offered");
        }
    }

    /// Records one emitted result: one fewer neighbor is wanted.
    pub fn satisfy_one(&mut self) {
        self.k_remaining = self.k_remaining.saturating_sub(1);
        self.cached_kth.set(None);
    }

    /// Current squared pruning bound.
    pub fn bound_sq(&self) -> f64 {
        if self.k_remaining == 0 {
            // Nothing more is wanted: prune everything.
            return 0.0;
        }
        if self.k_original == 1 {
            // Plain ANN: the min over everything ever offered is sound
            // (each offer guarantees one point, and expanding the entry
            // that backs the minimum re-offers a child that still covers
            // its guaranteed point). This is the tightest bound and never
            // taints, because the search ends at the first emission.
            return self.inherited_sq.min(self.min_ever_sq);
        }
        // AkNN: only live (still-queued, pairwise-disjoint) entries may
        // back the bound — an emitted or historical offer might alias a
        // point a live descendant also guarantees.
        if self.live_len < self.k_remaining {
            return self.inherited_sq;
        }
        if let Some(kth) = self.cached_kth.get() {
            return self.inherited_sq.min(kth);
        }
        // k_remaining-th smallest live upper bound (with multiplicity);
        // O(k) scan, amortized by the mutation-invalidated cache.
        let mut need = self.k_remaining;
        for (v, n) in &self.live {
            if *n >= need {
                self.cached_kth.set(Some(v.0));
                return self.inherited_sq.min(v.0);
            }
            need -= n;
        }
        unreachable!("live_len >= k_remaining guarantees termination")
    }

    /// Epsilon-tolerant pruning test: `true` when an entry at squared
    /// lower-bound distance `mind_sq` cannot contribute a result.
    #[inline]
    pub fn prunes(&self, mind_sq: f64) -> bool {
        let b = self.bound_sq();
        mind_sq > b * (1.0 + PRUNE_EPS)
    }
}

/// An `I_S` entry queued in an LPQ, with its distance fields.
#[derive(Clone, Copy, Debug)]
pub struct QueuedEntry<const D: usize> {
    /// Squared `MINMINDIST(owner, entry)` — the queue priority.
    pub mind_sq: f64,
    /// Squared pruning-metric upper bound.
    pub maxd_sq: f64,
    /// The target-index entry itself.
    pub entry: Entry<D>,
}

/// The `Distances` procedure of the paper's Algorithm 4: computes the
/// `(MIND², MAXD²)` pair between an owner entry (from `I_R`) and a target
/// entry (from `I_S`) under pruning metric `M`.
#[inline]
pub fn distances<const D: usize, M: PruneMetric>(
    owner: &Entry<D>,
    target: &Entry<D>,
) -> (f64, f64) {
    let om = owner.mbr();
    let tm = target.mbr();
    (min_min_dist_sq(&om, &tm), M::upper_sq(&om, &tm))
}

/// Early-exit `Distances`: computes `(MIND², MAXD²)` only when the entry
/// can survive a pruning test at `threshold_sq` (pass
/// [`Lpq::prune_threshold_sq`]). Returns `None` — without computing the
/// upper bound at all — exactly when `MIND² > threshold_sq`, i.e. exactly
/// when [`Lpq::try_enqueue`] would reject the entry, whose `MAXD²` is then
/// never consulted. The MIND accumulation stops at the first dimension
/// where the running sum exceeds the threshold
/// ([`min_min_dist_sq_within`]), which is where high-dimensional LPQ
/// filtering spends most of its arithmetic.
#[inline]
pub fn distances_within<const D: usize, M: PruneMetric>(
    owner: &Entry<D>,
    target: &Entry<D>,
    threshold_sq: f64,
) -> Option<(f64, f64)> {
    let om = owner.mbr();
    let tm = target.mbr();
    let mind_sq = min_min_dist_sq_within(&om, &tm, threshold_sq)?;
    Some((mind_sq, M::upper_sq(&om, &tm)))
}

/// A Local Priority Queue: `MIND`-ordered candidates from `I_S`, owned by
/// one unique entry of `I_R`.
#[derive(Clone, Debug)]
pub struct Lpq<const D: usize> {
    /// The owning `I_R` entry (node or object).
    pub owner: Entry<D>,
    entries: Vec<QueuedEntry<D>>,
    head: usize,
    bound: BoundTracker,
    /// Lifetime tallies for observability ([`crate::trace`]): entries ever
    /// accepted, entries the Filter stage evicted, and the queue-length
    /// high-water mark. Maintained unconditionally — three integer ops per
    /// accepted entry, invisible next to the sorted insert they ride on.
    enqueued_total: u64,
    filtered_total: u64,
    high_water: u32,
}

impl<const D: usize> Lpq<D> {
    /// Creates an LPQ for `owner` seeking `k` neighbors, inheriting the
    /// parent LPQ's squared bound (Expand stage, Algorithm 4 line 12).
    pub fn new(owner: Entry<D>, k: usize, inherited_bound_sq: f64) -> Self {
        Self::new_in(owner, k, inherited_bound_sq, Vec::new())
    }

    /// [`new`](Self::new) with caller-provided backing storage, typically
    /// recycled through [`crate::scratch::QueryScratch`]; the storage is
    /// cleared, its capacity is kept.
    pub fn new_in(
        owner: Entry<D>,
        k: usize,
        inherited_bound_sq: f64,
        mut storage: Vec<QueuedEntry<D>>,
    ) -> Self {
        storage.clear();
        Lpq {
            owner,
            entries: storage,
            head: 0,
            bound: BoundTracker::new(k, inherited_bound_sq),
            enqueued_total: 0,
            filtered_total: 0,
            high_water: 0,
        }
    }

    /// Consumes the queue and hands its backing storage back (cleared,
    /// capacity kept) for recycling via
    /// [`crate::scratch::QueryScratch::put_entries`].
    pub fn into_storage(self) -> Vec<QueuedEntry<D>> {
        let mut v = self.entries;
        v.clear();
        v
    }

    /// Dequeue-order key: ascending `(MIND, nodes-before-objects, MAXD,
    /// oid)`. Child MIND never undercuts its parent's, so dequeuing tied
    /// nodes first guarantees all objects at a tied distance are queued
    /// before any of them is emitted.
    #[inline]
    fn order_key(q: &QueuedEntry<D>) -> (f64, u8, f64, u64) {
        match q.entry {
            Entry::Node(n) => (q.mind_sq, 0, q.maxd_sq, u64::from(n.page)),
            Entry::Object(o) => (q.mind_sq, 1, q.maxd_sq, o.oid),
        }
    }

    /// Current squared pruning bound (`LPQ.MAXD` in the paper).
    #[inline]
    pub fn bound_sq(&self) -> f64 {
        self.bound.bound_sq()
    }

    /// The exact epsilon-tolerant rejection threshold
    /// [`try_enqueue`](Self::try_enqueue) applies: an entry with
    /// `MIND² > prune_threshold_sq()` is rejected. Exposed so probing can
    /// hand it to [`distances_within`] and skip distance work for entries
    /// that cannot be accepted.
    #[inline]
    pub fn prune_threshold_sq(&self) -> f64 {
        self.bound.bound_sq() * (1.0 + PRUNE_EPS)
    }

    /// Entries currently queued (not yet dequeued, not filtered).
    pub fn len(&self) -> usize {
        self.entries.len() - self.head
    }

    /// `true` when nothing remains to dequeue.
    pub fn is_empty(&self) -> bool {
        self.head == self.entries.len()
    }

    /// Attempts to enqueue `entry` with the given distance fields.
    ///
    /// Implements the probe test (reject when `MIND > MAXD`, Algorithm 4
    /// lines 8/17) and the **Filter stage**: when the new entry tightens
    /// the bound, queued entries whose `MIND` now exceeds it are discarded.
    ///
    /// Returns `(accepted, filtered)`: whether the entry was queued, and
    /// how many queued entries the Filter stage evicted.
    pub fn try_enqueue(&mut self, e: QueuedEntry<D>) -> (bool, u64) {
        if self.bound.prunes(e.mind_sq) {
            return (false, 0);
        }
        self.bound.offer(e.maxd_sq);
        // Insertion position: ties on MIND dequeue nodes before objects (a
        // tied node may still hold a smaller-oid object at the same
        // distance), then break on MAXD (paper §3.3.3), then on oid so
        // equal-distance objects dequeue in the canonical smaller-oid-first
        // order.
        let key = Self::order_key(&e);
        let pos = self.entries[self.head..].partition_point(|q| Self::order_key(q) <= key)
            + self.head;
        self.entries.insert(pos, e);
        self.enqueued_total += 1;
        let len = (self.entries.len() - self.head) as u32;
        if len > self.high_water {
            self.high_water = len;
        }
        // Filter stage: drop the tail that the (possibly tightened) bound
        // now excludes. The vector is MIND-sorted, so the victims form a
        // suffix.
        let bound = self.bound.bound_sq() * (1.0 + PRUNE_EPS);
        let cut = self.entries[self.head..].partition_point(|q| q.mind_sq <= bound) + self.head;
        let filtered = (self.entries.len() - cut) as u64;
        for victim in &self.entries[cut..] {
            self.bound.remove(victim.maxd_sq);
        }
        self.entries.truncate(cut);
        self.filtered_total += filtered;
        (true, filtered)
    }

    /// Entries this queue ever accepted (observability tally).
    #[inline]
    pub fn enqueued_total(&self) -> u64 {
        self.enqueued_total
    }

    /// Entries the Filter stage ever evicted from this queue
    /// (observability tally).
    #[inline]
    pub fn filtered_total(&self) -> u64 {
        self.filtered_total
    }

    /// Largest queue length this queue ever reached (observability tally).
    #[inline]
    pub fn high_water(&self) -> u32 {
        self.high_water
    }

    /// Pops the entry with the smallest `MIND`, if any. The entry leaves
    /// the live-bound multiset; callers expanding a popped node re-offer
    /// its children through [`try_enqueue`](Self::try_enqueue).
    pub fn dequeue(&mut self) -> Option<QueuedEntry<D>> {
        if self.head < self.entries.len() {
            let e = self.entries[self.head];
            self.head += 1;
            self.bound.remove(e.maxd_sq);
            Some(e)
        } else {
            None
        }
    }

    /// Epsilon-tolerant pruning test against this LPQ's bound.
    #[inline]
    pub fn prunes(&self, mind_sq: f64) -> bool {
        self.bound.prunes(mind_sq)
    }

    /// Records one emitted result for this LPQ's owner (AkNN bookkeeping).
    pub fn satisfy_one(&mut self) {
        self.bound.satisfy_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeEntry, ObjectEntry};
    use ann_geom::{Mbr, NxnDist, Point};

    fn obj(oid: u64, x: f64, y: f64) -> Entry<2> {
        Entry::Object(ObjectEntry {
            oid,
            point: Point::new([x, y]),
        })
    }

    fn node(page: u32, lo: [f64; 2], hi: [f64; 2]) -> Entry<2> {
        Entry::Node(NodeEntry {
            page,
            count: 10,
            mbr: Mbr::new(lo, hi),
        })
    }

    fn qe(entry: Entry<2>, mind: f64, maxd: f64) -> QueuedEntry<2> {
        QueuedEntry {
            mind_sq: mind,
            maxd_sq: maxd,
            entry,
        }
    }

    #[test]
    fn bound_tracker_k1_takes_minimum() {
        let mut b = BoundTracker::new(1, f64::INFINITY);
        b.offer(9.0);
        assert_eq!(b.bound_sq(), 9.0);
        b.offer(16.0);
        assert_eq!(b.bound_sq(), 9.0);
        b.offer(4.0);
        assert_eq!(b.bound_sq(), 4.0);
    }

    #[test]
    fn bound_tracker_k1_respects_inherited() {
        let mut b = BoundTracker::new(1, 2.0);
        assert_eq!(b.bound_sq(), 2.0);
        b.offer(5.0);
        assert_eq!(b.bound_sq(), 2.0, "looser offers cannot widen the bound");
    }

    #[test]
    fn bound_tracker_k3_takes_third_smallest() {
        let mut b = BoundTracker::new(3, f64::INFINITY);
        b.offer(10.0);
        b.offer(2.0);
        assert_eq!(
            b.bound_sq(),
            f64::INFINITY,
            "fewer than k entries guarantee nothing"
        );
        b.offer(6.0);
        assert_eq!(b.bound_sq(), 10.0);
        b.offer(3.0); // smallest three now 2, 3, 6
        assert_eq!(b.bound_sq(), 6.0);
        b.offer(100.0); // no change
        assert_eq!(b.bound_sq(), 6.0);
        b.offer(1.0); // smallest three now 1, 2, 3
        assert_eq!(b.bound_sq(), 3.0);
    }

    #[test]
    fn enqueue_orders_by_mind() {
        let mut lpq = Lpq::new(node(0, [0.0, 0.0], [1.0, 1.0]), 1, f64::INFINITY);
        lpq.try_enqueue(qe(obj(1, 0.0, 0.0), 9.0, 9.0));
        lpq.try_enqueue(qe(obj(2, 0.0, 0.0), 1.0, 1.0));
        lpq.try_enqueue(qe(obj(3, 0.0, 0.0), 1.0, 1.0));
        let order: Vec<f64> = std::iter::from_fn(|| lpq.dequeue())
            .map(|e| e.mind_sq)
            .collect();
        // The 9.0 entry was filtered when the 1.0 bound arrived.
        assert_eq!(order, vec![1.0, 1.0]);
    }

    #[test]
    fn probe_test_rejects_beyond_bound() {
        let mut lpq = Lpq::new(node(0, [0.0, 0.0], [1.0, 1.0]), 1, 4.0);
        let (accepted, _) = lpq.try_enqueue(qe(obj(1, 0.0, 0.0), 5.0, 6.0));
        assert!(!accepted);
        assert!(lpq.is_empty());
        // Within the bound: accepted.
        let (accepted, _) = lpq.try_enqueue(qe(obj(2, 0.0, 0.0), 3.0, 3.5));
        assert!(accepted);
        assert_eq!(lpq.len(), 1);
    }

    #[test]
    fn filter_stage_evicts_tail() {
        let mut lpq = Lpq::new(node(0, [0.0, 0.0], [1.0, 1.0]), 1, f64::INFINITY);
        // Three loose node entries...
        lpq.try_enqueue(qe(node(1, [5.0, 5.0], [6.0, 6.0]), 7.0, 50.0));
        lpq.try_enqueue(qe(node(2, [5.0, 5.0], [6.0, 6.0]), 8.0, 50.0));
        lpq.try_enqueue(qe(node(3, [5.0, 5.0], [6.0, 6.0]), 9.0, 50.0));
        assert_eq!(lpq.len(), 3);
        // ...then a tight object: bound drops to 7.5, filtering MIND 8 & 9.
        let (accepted, filtered) = lpq.try_enqueue(qe(obj(9, 0.0, 0.0), 7.5, 7.5));
        assert!(accepted);
        assert_eq!(filtered, 2);
        assert_eq!(lpq.len(), 2);
        assert_eq!(lpq.bound_sq(), 7.5);
    }

    #[test]
    fn ties_on_mind_break_on_maxd() {
        let mut lpq = Lpq::new(node(0, [0.0, 0.0], [1.0, 1.0]), 1, f64::INFINITY);
        lpq.try_enqueue(qe(node(1, [0.0, 0.0], [1.0, 1.0]), 2.0, 90.0));
        lpq.try_enqueue(qe(node(2, [0.0, 0.0], [1.0, 1.0]), 2.0, 10.0));
        let first = lpq.dequeue().unwrap();
        assert_eq!(first.maxd_sq, 10.0, "tighter MAXD wins the tie");
    }

    #[test]
    fn aknn_bound_needs_k_entries() {
        let mut lpq = Lpq::new(node(0, [0.0, 0.0], [1.0, 1.0]), 2, f64::INFINITY);
        lpq.try_enqueue(qe(node(1, [0.0, 0.0], [1.0, 1.0]), 1.0, 4.0));
        assert_eq!(lpq.bound_sq(), f64::INFINITY);
        // A second disjoint subtree establishes the k=2 guarantee.
        lpq.try_enqueue(qe(node(2, [0.0, 0.0], [1.0, 1.0]), 2.0, 9.0));
        assert_eq!(lpq.bound_sq(), 9.0);
    }

    #[test]
    fn distances_for_objects_is_exact() {
        let owner = obj(1, 0.0, 0.0);
        let target = obj(2, 3.0, 4.0);
        let (mind, maxd) = distances::<2, NxnDist>(&owner, &target);
        assert_eq!(mind, 25.0);
        assert_eq!(maxd, 25.0);
    }

    #[test]
    fn distances_node_vs_node() {
        let owner = node(1, [0.0, 5.0], [4.0, 7.0]);
        let target = node(2, [5.0, 0.0], [9.0, 2.0]);
        let (mind, maxd) = distances::<2, NxnDist>(&owner, &target);
        assert_eq!(mind, 1.0 + 9.0); // gap (1, 3)
        assert_eq!(maxd, 74.0); // the Figure 1(a) example
    }
}
