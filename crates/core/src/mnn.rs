//! **MNN** — multiple nearest-neighbor search (Zhang et al., SSDBM 2004):
//! an index-nested-loops baseline that runs one best-first kNN search over
//! `I_S` per query object.
//!
//! The paper (§2) notes MNN maximizes query locality to keep I/O down but
//! pays a high CPU price: every query repeats the descent from the root.
//! Locality is obtained here by enumerating the query objects in index
//! order (a depth-first walk of `I_R`), which visits spatially adjacent
//! points consecutively — consecutive searches then hit the same upper
//! `I_S` pages in the buffer pool.

use crate::index::SpatialIndex;
use crate::lpq::BoundTracker;
use crate::node::Entry;
use crate::resilience::{attach_partial_stats, QueryGuard, QueryResult};
use crate::scratch::{BestFirstItem, QueryScratch};
use crate::stats::{AnnOutput, NeighborPair};
use crate::trace::{Phase, PruneReason, Side, TraceEvent, Tracer};
use ann_geom::{kernels, min_min_dist_sq, Mbr, Point, PruneMetric};

/// Configuration for [`mnn`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MnnConfig {
    /// Neighbors per query object.
    pub k: usize,
    /// Self-join mode: skip same-oid pairs.
    pub exclude_self: bool,
}

impl Default for MnnConfig {
    fn default() -> Self {
        MnnConfig {
            k: 1,
            exclude_self: false,
        }
    }
}

/// Evaluates AkNN by running an independent best-first kNN search on `is`
/// for every object indexed by `ir`.
#[deprecated(
    since = "0.1.0",
    note = "thin delegate kept for compatibility; use ann_core::query::run / run_scratch (or the *_guarded canonical path)"
)]
pub fn mnn<const D: usize, M, IR, IS>(ir: &IR, is: &IS, cfg: &MnnConfig) -> QueryResult<AnnOutput>
where
    M: PruneMetric,
    IR: SpatialIndex<D>,
    IS: SpatialIndex<D>,
{
    mnn_guarded::<D, M, IR, IS>(
        ir,
        is,
        cfg,
        Tracer::disabled(),
        &mut QueryScratch::new(),
        &QueryGuard::disabled(),
    )
}

/// [`mnn`] with an attached [`Tracer`]. With `Tracer::disabled()` this is
/// exactly [`mnn`]: all instrumentation sites are guarded.
#[deprecated(
    since = "0.1.0",
    note = "thin delegate kept for compatibility; use ann_core::query::run / run_scratch (or the *_guarded canonical path)"
)]
pub fn mnn_traced<const D: usize, M, IR, IS>(
    ir: &IR,
    is: &IS,
    cfg: &MnnConfig,
    tracer: Tracer<'_>,
) -> QueryResult<AnnOutput>
where
    M: PruneMetric,
    IR: SpatialIndex<D>,
    IS: SpatialIndex<D>,
{
    mnn_guarded::<D, M, IR, IS>(ir, is, cfg, tracer, &mut QueryScratch::new(), &QueryGuard::disabled())
}

/// [`mnn_traced`] with a caller-owned [`QueryScratch`] — every per-query
/// best-first heap and batch distance buffer is recycled through the
/// scratch, so the steady state of the R-side walk allocates nothing.
#[deprecated(
    since = "0.1.0",
    note = "thin delegate kept for compatibility; use ann_core::query::run / run_scratch (or the *_guarded canonical path)"
)]
pub fn mnn_traced_scratch<const D: usize, M, IR, IS>(
    ir: &IR,
    is: &IS,
    cfg: &MnnConfig,
    tracer: Tracer<'_>,
    scratch: &mut QueryScratch<D>,
) -> QueryResult<AnnOutput>
where
    M: PruneMetric,
    IR: SpatialIndex<D>,
    IS: SpatialIndex<D>,
{
    mnn_guarded::<D, M, IR, IS>(ir, is, cfg, tracer, scratch, &QueryGuard::disabled())
}

/// [`mnn_traced_scratch`] under a [`QueryGuard`], consulted before every
/// node read on either side. Aborts close the open spans, record a
/// [`TraceEvent::QueryAborted`], and report the stats accumulated so far.
pub fn mnn_guarded<const D: usize, M, IR, IS>(
    ir: &IR,
    is: &IS,
    cfg: &MnnConfig,
    tracer: Tracer<'_>,
    scratch: &mut QueryScratch<D>,
    guard: &QueryGuard<'_>,
) -> QueryResult<AnnOutput>
where
    M: PruneMetric,
    IR: SpatialIndex<D>,
    IS: SpatialIndex<D>,
{
    if cfg.k == 0 {
        guard.tick()?;
        return Ok(AnnOutput::default());
    }
    let mut out = AnnOutput::default();
    let io_r0 = ir.pool().stats();
    let shared_pool = std::ptr::eq(
        ir.pool() as *const _ as *const u8,
        is.pool() as *const _ as *const u8,
    );
    let io_s0 = is.pool().stats();
    let io_now = || {
        let mut io = ir.pool().stats();
        if !shared_pool {
            io = io.merge(&is.pool().stats());
        }
        io
    };
    let span_q = tracer.span_enter(Phase::Query, io_now);
    let abort_phase = std::cell::Cell::new(Phase::Query.name());

    let walk = (|out: &mut AnnOutput| -> QueryResult<()> {
        guard.tick()?;
        if ir.num_points() == 0 || is.num_points() == 0 {
            return Ok(());
        }
        tracer.event(|| TraceEvent::Root {
            side: Side::R,
            page: ir.root_page(),
        });
        tracer.event(|| TraceEvent::Root {
            side: Side::S,
            page: is.root_page(),
        });
        let span_j = tracer.span_enter(Phase::Join, io_now);
        abort_phase.set(Phase::Join.name());
        let mut cutoff_total = 0u64;
        // Depth-first walk of I_R: queries in index (spatial) order.
        let mut stack = scratch.take_pages();
        let join = (|| -> QueryResult<()> {
            stack.push(ir.root_page());
            while let Some(page) = stack.pop() {
                guard.tick()?;
                let node = ir.read_node_cached(page)?;
                out.stats.r_nodes_expanded += 1;
                tracer.node_expanded(Side::R, page, &node.entries);
                for e in &node.entries {
                    match e {
                        Entry::Node(n) => stack.push(n.page),
                        Entry::Object(o) => {
                            knn_search::<D, M, IS>(
                                is,
                                o.oid,
                                &o.point,
                                cfg,
                                out,
                                tracer,
                                &mut cutoff_total,
                                scratch,
                                guard,
                            )?;
                        }
                    }
                }
            }
            Ok(())
        })();
        stack.clear();
        scratch.put_pages(stack);
        if tracer.enabled() {
            for (reason, count) in [
                (PruneReason::OnProbe, out.stats.pruned_on_probe),
                (PruneReason::HeapCutoff, cutoff_total),
            ] {
                if count > 0 {
                    tracer.event(|| TraceEvent::Pruned {
                        metric: M::NAME,
                        reason,
                        count,
                    });
                }
            }
        }
        tracer.span_exit(Phase::Join, span_j, io_now);
        join
    })(&mut out);
    tracer.span_exit(Phase::Query, span_q, io_now);

    let mut io = ir.pool().stats().since(&io_r0);
    if !shared_pool {
        io = io.merge(&is.pool().stats().since(&io_s0));
    }
    out.stats.io = io;
    match walk {
        Ok(()) => Ok(out),
        Err(e) => {
            tracer.event(|| TraceEvent::QueryAborted {
                reason: e.reason(),
                phase: abort_phase.get(),
            });
            Err(attach_partial_stats(e, &out.stats))
        }
    }
}

/// [`mnn_guarded`] with the `I_R` walk fanned out over the shared morsel
/// engine ([`crate::par::run_workers`]).
///
/// A morsel is one `I_R` subtree, `(page, object count)`. Subtrees at or
/// under [`crate::morsel::INLINE_SUBTREE_OBJECTS`] objects are walked
/// inline exactly like the serial loop; larger ones expand one node and
/// publish each child subtree as a stealable morsel, running the node's
/// object entries' kNN searches in place. Every per-object search is
/// self-contained (own heap, own bound), so results are independent of
/// scheduling and the engine's canonical merge makes the output
/// byte-identical to (sorted) serial at any thread count.
pub fn mnn_parallel_guarded<const D: usize, M, IR, IS>(
    ir: &IR,
    is: &IS,
    cfg: &MnnConfig,
    threads: usize,
    tracer: Tracer<'_>,
    guard: &QueryGuard<'_>,
) -> QueryResult<AnnOutput>
where
    M: PruneMetric,
    IR: SpatialIndex<D> + Sync,
    IS: SpatialIndex<D> + Sync,
{
    if cfg.k == 0 {
        guard.tick()?;
        return Ok(AnnOutput::default());
    }
    let threads = crate::morsel::resolve_threads(threads);
    if threads <= 1 {
        let mut out =
            mnn_guarded::<D, M, IR, IS>(ir, is, cfg, tracer, &mut QueryScratch::new(), guard)?;
        out.sort();
        return Ok(out);
    }
    let mut out = AnnOutput::default();
    let io_r0 = ir.pool().stats();
    let shared_pool = std::ptr::eq(
        ir.pool() as *const _ as *const u8,
        is.pool() as *const _ as *const u8,
    );
    let io_s0 = is.pool().stats();
    let io_now = || {
        let mut io = ir.pool().stats();
        if !shared_pool {
            io = io.merge(&is.pool().stats());
        }
        io
    };
    let span_q = tracer.span_enter(Phase::Query, io_now);
    let abort_phase = std::cell::Cell::new(Phase::Query.name());

    let walk = (|out: &mut AnnOutput| -> QueryResult<()> {
        guard.tick()?;
        if ir.num_points() == 0 || is.num_points() == 0 {
            return Ok(());
        }
        tracer.event(|| TraceEvent::Root {
            side: Side::R,
            page: ir.root_page(),
        });
        tracer.event(|| TraceEvent::Root {
            side: Side::S,
            page: is.root_page(),
        });
        let span_j = tracer.span_enter(Phase::Join, io_now);
        abort_phase.set(Phase::Join.name());
        let seeds = vec![(ir.root_page(), ir.num_points())];
        let (pout, err) = crate::par::run_workers(threads, seeds, tracer, |h| {
            let mut scratch = QueryScratch::new();
            let mut wout = AnnOutput::default();
            let mut cutoff_total = 0u64;
            let wt = h.tracer();
            let join = (|| -> QueryResult<()> {
                while let Some((page, count)) = h.pop() {
                    let step = (|| -> QueryResult<()> {
                        if count <= crate::morsel::INLINE_SUBTREE_OBJECTS {
                            return mnn_subtree::<D, M, IR, IS>(
                                ir,
                                is,
                                page,
                                cfg,
                                &mut wout,
                                wt,
                                &mut cutoff_total,
                                &mut scratch,
                                guard,
                            );
                        }
                        guard.tick()?;
                        let node = ir.read_node_cached(page)?;
                        wout.stats.r_nodes_expanded += 1;
                        wt.node_expanded(Side::R, page, &node.entries);
                        for e in &node.entries {
                            match e {
                                Entry::Node(n) => h.push((n.page, n.count)),
                                Entry::Object(o) => {
                                    knn_search::<D, M, IS>(
                                        is,
                                        o.oid,
                                        &o.point,
                                        cfg,
                                        &mut wout,
                                        wt,
                                        &mut cutoff_total,
                                        &mut scratch,
                                        guard,
                                    )?;
                                }
                            }
                        }
                        Ok(())
                    })();
                    h.complete();
                    step?;
                }
                Ok(())
            })();
            if wt.enabled() {
                for (reason, count) in [
                    (PruneReason::OnProbe, wout.stats.pruned_on_probe),
                    (PruneReason::HeapCutoff, cutoff_total),
                ] {
                    if count > 0 {
                        wt.event(|| TraceEvent::Pruned {
                            metric: M::NAME,
                            reason,
                            count,
                        });
                    }
                }
            }
            (wout, join)
        });
        *out = pout;
        tracer.span_exit(Phase::Join, span_j, io_now);
        match err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    })(&mut out);
    tracer.span_exit(Phase::Query, span_q, io_now);

    let mut io = ir.pool().stats().since(&io_r0);
    if !shared_pool {
        io = io.merge(&is.pool().stats().since(&io_s0));
    }
    out.stats.io = io;
    match walk {
        Ok(()) => Ok(out),
        Err(e) => {
            tracer.event(|| TraceEvent::QueryAborted {
                reason: e.reason(),
                phase: abort_phase.get(),
            });
            Err(attach_partial_stats(e, &out.stats))
        }
    }
}

/// The serial depth-first walk of one `I_R` subtree — the inline tail of
/// a small MNN morsel, byte-identical per object to [`mnn_guarded`]'s
/// outer loop restricted to that subtree.
#[allow(clippy::too_many_arguments)]
fn mnn_subtree<const D: usize, M, IR, IS>(
    ir: &IR,
    is: &IS,
    root: ann_store::PageId,
    cfg: &MnnConfig,
    out: &mut AnnOutput,
    tracer: Tracer<'_>,
    cutoff_total: &mut u64,
    scratch: &mut QueryScratch<D>,
    guard: &QueryGuard<'_>,
) -> QueryResult<()>
where
    M: PruneMetric,
    IR: SpatialIndex<D>,
    IS: SpatialIndex<D>,
{
    let mut stack = scratch.take_pages();
    let join = (|| -> QueryResult<()> {
        stack.push(root);
        while let Some(page) = stack.pop() {
            guard.tick()?;
            let node = ir.read_node_cached(page)?;
            out.stats.r_nodes_expanded += 1;
            tracer.node_expanded(Side::R, page, &node.entries);
            for e in &node.entries {
                match e {
                    Entry::Node(n) => stack.push(n.page),
                    Entry::Object(o) => {
                        knn_search::<D, M, IS>(
                            is,
                            o.oid,
                            &o.point,
                            cfg,
                            out,
                            tracer,
                            cutoff_total,
                            scratch,
                            guard,
                        )?;
                    }
                }
            }
        }
        Ok(())
    })();
    stack.clear();
    scratch.put_pages(stack);
    join
}

/// One best-first (Hjaltason-Samet) kNN search from `point` over `is`,
/// with the pruning-metric upper bound tightening the search exactly as
/// the LPQ bound does in MBA.
#[allow(clippy::too_many_arguments)]
fn knn_search<const D: usize, M, IS>(
    is: &IS,
    r_oid: u64,
    point: &Point<D>,
    cfg: &MnnConfig,
    out: &mut AnnOutput,
    tracer: Tracer<'_>,
    cutoff_total: &mut u64,
    scratch: &mut QueryScratch<D>,
    guard: &QueryGuard<'_>,
) -> QueryResult<()>
where
    M: PruneMetric,
    IS: SpatialIndex<D>,
{
    let k_eff = cfg.k + usize::from(cfg.exclude_self);
    let mut bound = BoundTracker::new(k_eff, f64::INFINITY);
    let qmbr = Mbr::from_point(point);
    let mut heap = scratch.take_best_first();
    let mut mind_buf = scratch.take_f64();
    let mut maxd_buf = scratch.take_f64();
    let mut hints = scratch.take_hints();
    let hinting = is.pool().prefetch_enabled();
    let root = Entry::Node(crate::node::NodeEntry {
        page: is.root_page(),
        count: is.num_points(),
        mbr: is.bounds(),
    });
    let (mind_sq, maxd_sq) = (
        min_min_dist_sq(&qmbr, &is.bounds()),
        M::upper_sq(&qmbr, &is.bounds()),
    );
    out.stats.distance_computations += 1;
    bound.offer(maxd_sq);
    heap.push(BestFirstItem {
        mind_sq,
        maxd_sq,
        entry: root,
    });
    out.stats.enqueued += 1;

    let mut found = 0;
    while let Some(item) = heap.pop() {
        if bound.prunes(item.mind_sq) {
            // The min-heap yields ascending MIND: everything else is at
            // least this far, and the bound is backed by entries we have
            // already processed or emitted.
            if tracer.enabled() {
                *cutoff_total += heap.len() as u64 + 1;
            }
            break;
        }
        bound.remove(item.maxd_sq);
        match item.entry {
            Entry::Object(s) => {
                if cfg.exclude_self && s.oid == r_oid {
                    continue;
                }
                out.results.push(NeighborPair {
                    r_oid,
                    s_oid: s.oid,
                    dist: item.mind_sq.sqrt(),
                });
                bound.satisfy_one();
                found += 1;
                if found == cfg.k {
                    break;
                }
            }
            Entry::Node(n) => {
                guard.tick()?;
                let node = is.read_node_cached(n.page)?;
                out.stats.s_nodes_expanded += 1;
                tracer.node_expanded(Side::S, n.page, &node.entries);
                // Batch both bounds over the node's SoA columns, then
                // replay the accept/prune decisions sequentially under the
                // evolving bound — bit-identical to the scalar loop.
                let cols = node.soa_mbrs();
                kernels::min_min_dist_sq_batch(&qmbr, &cols, &mut mind_buf);
                M::upper_sq_batch(&qmbr, &cols, &mut maxd_buf);
                for (i, e) in node.entries.iter().enumerate() {
                    out.stats.distance_computations += 1;
                    if !bound.prunes(mind_buf[i]) {
                        bound.offer(maxd_buf[i]);
                        heap.push(BestFirstItem {
                            mind_sq: mind_buf[i],
                            maxd_sq: maxd_buf[i],
                            entry: *e,
                        });
                        out.stats.enqueued += 1;
                        if hinting {
                            if let Entry::Node(c) = e {
                                // First touch only: a node-cached page is
                                // served without a pool read, so hinting it
                                // would be pure wasted disk I/O.
                                if !is.node_is_cached(c.page) {
                                    hints.push((
                                        c.page,
                                        crate::readahead::depth_priority(c.count),
                                    ));
                                }
                            }
                        }
                    } else {
                        out.stats.pruned_on_probe += 1;
                    }
                }
                // Readahead for the pages just pushed: changes only when
                // their physical reads happen, never the search decisions.
                crate::readahead::submit(is.pool(), &mut hints);
            }
        }
    }
    scratch.put_best_first(heap);
    scratch.put_f64(mind_buf);
    scratch.put_f64(maxd_buf);
    scratch.put_hints(hints);
    Ok(())
}
