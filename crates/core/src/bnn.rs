//! **BNN** — batched nearest-neighbor search (Zhang et al., SSDBM 2004),
//! the strongest prior R*-tree-based ANN method and the main index-based
//! baseline of the paper's Figure 3(a).
//!
//! BNN splits the query set `R` into spatially coherent groups (here:
//! Hilbert-curve order, chunked), and runs **one** best-first traversal of
//! `I_S` per group instead of one per point, amortizing the descent. Each
//! group keeps per-point k-nearest heaps; a subtree of `I_S` is pruned when
//! its `MINMINDIST` to the group MBR exceeds the group's pruning bound —
//! the maximum over the group's per-point bounds, clipped by the pruning
//! *metric* bound (MAXMAXDIST in the original; NXNDIST here when
//! instantiated with [`ann_geom::NxnDist`], which is the "BNN NXNDIST"
//! bar of Figure 3a).

use crate::index::SpatialIndex;
use crate::lpq::{BoundTracker, PRUNE_EPS};
use crate::node::Entry;
use crate::resilience::{attach_partial_stats, QueryGuard, QueryResult};
use crate::scratch::{GroupHeapItem, KBest, QueryScratch};
use crate::stats::{AnnOutput, NeighborPair};
use crate::trace::{Phase, PruneReason, Side, TraceEvent, Tracer};
use ann_geom::{curve::GridMapper, kernels, min_min_dist_sq, Mbr, Point, PruneMetric, SoaPoints};
use std::collections::BinaryHeap;

/// Configuration for [`bnn`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BnnConfig {
    /// Neighbors per query object.
    pub k: usize,
    /// Query objects per group (Zhang et al. size groups to fit memory;
    /// the default of 256 approximates one leaf page of queries).
    pub group_size: usize,
    /// Self-join mode: skip same-oid pairs.
    pub exclude_self: bool,
}

impl Default for BnnConfig {
    fn default() -> Self {
        BnnConfig {
            k: 1,
            group_size: 256,
            exclude_self: false,
        }
    }
}

/// Per-query-point state within a group.
struct PointState<const D: usize> {
    oid: u64,
    point: Point<D>,
    /// Max-heap of the k best candidates so far.
    best: BinaryHeap<KBest>,
    want: usize,
}

impl<const D: usize> PointState<D> {
    /// Current per-point bound: distance of the k-th best candidate
    /// (infinite until `want` candidates have been seen).
    fn bound_sq(&self) -> f64 {
        if self.best.len() < self.want {
            f64::INFINITY
        } else {
            self.best.peek().expect("non-empty").dist_sq
        }
    }

    fn offer(&mut self, dist_sq: f64, s_oid: u64) -> bool {
        let cand = KBest { dist_sq, s_oid };
        if self.best.len() < self.want {
            self.best.push(cand);
            true
        } else if cand < *self.best.peek().expect("non-empty") {
            // Lexicographic (dist_sq, s_oid): a tied candidate with a
            // smaller oid must displace the current worst, or results
            // diverge from the canonical brute-force tie-break.
            self.best.pop();
            self.best.push(cand);
            true
        } else {
            false
        }
    }
}

/// Evaluates AkNN for the points `r` (not necessarily indexed) against the
/// indexed set `is`, with the batched traversal described above.
#[deprecated(
    since = "0.1.0",
    note = "thin delegate kept for compatibility; use ann_core::query::run / run_scratch (or the *_guarded canonical path)"
)]
pub fn bnn<const D: usize, M, IS>(
    r: &[(u64, Point<D>)],
    is: &IS,
    cfg: &BnnConfig,
) -> QueryResult<AnnOutput>
where
    M: PruneMetric,
    IS: SpatialIndex<D>,
{
    bnn_guarded::<D, M, IS>(
        r,
        is,
        cfg,
        Tracer::disabled(),
        &mut QueryScratch::new(),
        &QueryGuard::disabled(),
    )
}

/// [`bnn`] with an attached [`Tracer`]. With `Tracer::disabled()` this is
/// exactly [`bnn`]: all instrumentation sites are guarded.
#[deprecated(
    since = "0.1.0",
    note = "thin delegate kept for compatibility; use ann_core::query::run / run_scratch (or the *_guarded canonical path)"
)]
pub fn bnn_traced<const D: usize, M, IS>(
    r: &[(u64, Point<D>)],
    is: &IS,
    cfg: &BnnConfig,
    tracer: Tracer<'_>,
) -> QueryResult<AnnOutput>
where
    M: PruneMetric,
    IS: SpatialIndex<D>,
{
    bnn_guarded::<D, M, IS>(r, is, cfg, tracer, &mut QueryScratch::new(), &QueryGuard::disabled())
}

/// [`bnn_traced`] with a caller-owned [`QueryScratch`] — the group heap,
/// per-point k-best heaps and kernel distance buffers are all recycled
/// through the scratch from one group to the next.
#[deprecated(
    since = "0.1.0",
    note = "thin delegate kept for compatibility; use ann_core::query::run / run_scratch (or the *_guarded canonical path)"
)]
pub fn bnn_traced_scratch<const D: usize, M, IS>(
    r: &[(u64, Point<D>)],
    is: &IS,
    cfg: &BnnConfig,
    tracer: Tracer<'_>,
    scratch: &mut QueryScratch<D>,
) -> QueryResult<AnnOutput>
where
    M: PruneMetric,
    IS: SpatialIndex<D>,
{
    bnn_guarded::<D, M, IS>(r, is, cfg, tracer, scratch, &QueryGuard::disabled())
}

/// [`bnn_traced_scratch`] under a [`QueryGuard`], consulted before every
/// `I_S` node read. Aborts close the open spans, record a
/// [`TraceEvent::QueryAborted`], and report the stats accumulated so far.
pub fn bnn_guarded<const D: usize, M, IS>(
    r: &[(u64, Point<D>)],
    is: &IS,
    cfg: &BnnConfig,
    tracer: Tracer<'_>,
    scratch: &mut QueryScratch<D>,
    guard: &QueryGuard<'_>,
) -> QueryResult<AnnOutput>
where
    M: PruneMetric,
    IS: SpatialIndex<D>,
{
    assert!(cfg.group_size >= 1, "group size must be at least 1");
    if cfg.k == 0 {
        guard.tick()?;
        return Ok(AnnOutput::default());
    }
    let mut out = AnnOutput::default();
    let io0 = is.pool().stats();
    let io_now = || is.pool().stats();
    let span_q = tracer.span_enter(Phase::Query, io_now);
    let abort_phase = std::cell::Cell::new(Phase::Query.name());

    let walk = (|out: &mut AnnOutput| -> QueryResult<()> {
        guard.tick()?;
        if r.is_empty() || is.num_points() == 0 {
            return Ok(());
        }
        // Sort queries in Hilbert order over their own bounding box, then
        // chunk into groups.
        let span_sort = tracer.span_enter(Phase::Sort, io_now);
        let bounds = Mbr::from_points(r.iter().map(|(_, p)| p));
        let mapper = GridMapper::new(bounds);
        let mut sorted: Vec<&(u64, Point<D>)> = r.iter().collect();
        sorted.sort_by_key(|(_, p)| mapper.hilbert_key(p));
        tracer.span_exit(Phase::Sort, span_sort, io_now);

        tracer.event(|| TraceEvent::Root {
            side: Side::S,
            page: is.root_page(),
        });
        let span_j = tracer.span_enter(Phase::Join, io_now);
        abort_phase.set(Phase::Join.name());
        let mut cutoff_total = 0u64;
        let join = (|| -> QueryResult<()> {
            for group in sorted.chunks(cfg.group_size) {
                run_group::<D, M, IS>(
                    group,
                    is,
                    cfg,
                    out,
                    tracer,
                    &mut cutoff_total,
                    scratch,
                    guard,
                )?;
            }
            Ok(())
        })();
        if tracer.enabled() {
            for (reason, count) in [
                (PruneReason::OnProbe, out.stats.pruned_on_probe),
                (PruneReason::HeapCutoff, cutoff_total),
            ] {
                if count > 0 {
                    tracer.event(|| TraceEvent::Pruned {
                        metric: M::NAME,
                        reason,
                        count,
                    });
                }
            }
        }
        tracer.span_exit(Phase::Join, span_j, io_now);
        join
    })(&mut out);
    tracer.span_exit(Phase::Query, span_q, io_now);

    out.stats.io = is.pool().stats().since(&io0);
    match walk {
        Ok(()) => Ok(out),
        Err(e) => {
            tracer.event(|| TraceEvent::QueryAborted {
                reason: e.reason(),
                phase: abort_phase.get(),
            });
            Err(attach_partial_stats(e, &out.stats))
        }
    }
}

/// [`bnn_guarded`] with the group loop fanned out over the shared morsel
/// engine ([`crate::par::run_workers`]).
///
/// Morsels are index ranges over the Hilbert-sorted query list with
/// exactly the boundaries `slice::chunks(group_size)` would produce, so
/// every parallel group is one of the serial groups: each group's
/// traversal, heaps and bounds are fully self-contained in
/// [`run_group`], which makes per-group results independent of
/// scheduling. The engine's canonical merge then renders the output
/// byte-identical to (sorted) serial at any thread count.
pub fn bnn_parallel_guarded<const D: usize, M, IS>(
    r: &[(u64, Point<D>)],
    is: &IS,
    cfg: &BnnConfig,
    threads: usize,
    tracer: Tracer<'_>,
    guard: &QueryGuard<'_>,
) -> QueryResult<AnnOutput>
where
    M: PruneMetric,
    IS: SpatialIndex<D> + Sync,
{
    assert!(cfg.group_size >= 1, "group size must be at least 1");
    if cfg.k == 0 {
        guard.tick()?;
        return Ok(AnnOutput::default());
    }
    let threads = crate::morsel::resolve_threads(threads);
    if threads <= 1 {
        let mut out =
            bnn_guarded::<D, M, IS>(r, is, cfg, tracer, &mut QueryScratch::new(), guard)?;
        out.sort();
        return Ok(out);
    }
    let mut out = AnnOutput::default();
    let io0 = is.pool().stats();
    let io_now = || is.pool().stats();
    let span_q = tracer.span_enter(Phase::Query, io_now);
    let abort_phase = std::cell::Cell::new(Phase::Query.name());

    let walk = (|out: &mut AnnOutput| -> QueryResult<()> {
        guard.tick()?;
        if r.is_empty() || is.num_points() == 0 {
            return Ok(());
        }
        // The Hilbert sort stays serial (it is a tiny fraction of the
        // join and its order defines the group boundaries).
        let span_sort = tracer.span_enter(Phase::Sort, io_now);
        let bounds = Mbr::from_points(r.iter().map(|(_, p)| p));
        let mapper = GridMapper::new(bounds);
        let mut sorted: Vec<&(u64, Point<D>)> = r.iter().collect();
        sorted.sort_by_key(|(_, p)| mapper.hilbert_key(p));
        tracer.span_exit(Phase::Sort, span_sort, io_now);

        tracer.event(|| TraceEvent::Root {
            side: Side::S,
            page: is.root_page(),
        });
        let span_j = tracer.span_enter(Phase::Join, io_now);
        abort_phase.set(Phase::Join.name());
        let seeds = crate::morsel::chunk_ranges(sorted.len(), cfg.group_size);
        let sorted = &sorted;
        let (pout, err) = crate::par::run_workers(threads, seeds, tracer, |h| {
            let mut scratch = QueryScratch::new();
            let mut wout = AnnOutput::default();
            let mut cutoff_total = 0u64;
            let wt = h.tracer();
            let join = (|| -> QueryResult<()> {
                while let Some(range) = h.pop() {
                    let group = run_group::<D, M, IS>(
                        &sorted[range],
                        is,
                        cfg,
                        &mut wout,
                        wt,
                        &mut cutoff_total,
                        &mut scratch,
                        guard,
                    );
                    h.complete();
                    group?;
                }
                Ok(())
            })();
            // Per-worker prune summary: the sink sums the counts, so the
            // merged totals equal the serial end-of-run summary.
            if wt.enabled() {
                for (reason, count) in [
                    (PruneReason::OnProbe, wout.stats.pruned_on_probe),
                    (PruneReason::HeapCutoff, cutoff_total),
                ] {
                    if count > 0 {
                        wt.event(|| TraceEvent::Pruned {
                            metric: M::NAME,
                            reason,
                            count,
                        });
                    }
                }
            }
            (wout, join)
        });
        *out = pout;
        tracer.span_exit(Phase::Join, span_j, io_now);
        match err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    })(&mut out);
    tracer.span_exit(Phase::Query, span_q, io_now);

    out.stats.io = is.pool().stats().since(&io0);
    match walk {
        Ok(()) => Ok(out),
        Err(e) => {
            tracer.event(|| TraceEvent::QueryAborted {
                reason: e.reason(),
                phase: abort_phase.get(),
            });
            Err(attach_partial_stats(e, &out.stats))
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_group<const D: usize, M, IS>(
    group: &[&(u64, Point<D>)],
    is: &IS,
    cfg: &BnnConfig,
    out: &mut AnnOutput,
    tracer: Tracer<'_>,
    cutoff_total: &mut u64,
    scratch: &mut QueryScratch<D>,
    guard: &QueryGuard<'_>,
) -> QueryResult<()>
where
    M: PruneMetric,
    IS: SpatialIndex<D>,
{
    let mut heap_pops = 0u64;
    let k_eff = cfg.k + usize::from(cfg.exclude_self);
    let gmbr = Mbr::from_points(group.iter().map(|(_, p)| p));
    let mut states: Vec<PointState<D>> = group
        .iter()
        .map(|&&(oid, point)| PointState {
            oid,
            point,
            best: scratch.take_kbest(),
            want: k_eff,
        })
        .collect();
    // Column-major mirror of the group's query points, so each popped
    // object batches its distances to the whole group in one kernel call.
    let mut gcols = scratch.take_f64();
    for d in 0..D {
        gcols.extend(states.iter().map(|st| st.point[d]));
    }
    let mut dist_buf = scratch.take_f64();
    let mut mind_buf = scratch.take_f64();
    let mut maxd_buf = scratch.take_f64();

    // The group bound combines the metric guarantee (each probed I_S entry
    // guarantees k_eff candidates for *every* group point once k_eff
    // entries are seen) with the realized per-point bounds.
    let mut metric_bound = BoundTracker::new(k_eff, f64::INFINITY);
    let mut point_bound = f64::INFINITY; // max over per-point bounds
    let recompute = |states: &[PointState<D>]| -> f64 {
        states
            .iter()
            .map(PointState::bound_sq)
            .fold(0.0f64, f64::max)
    };

    let mut heap = scratch.take_group_heap();
    let mut hints = scratch.take_hints();
    let hinting = is.pool().prefetch_enabled();
    let root_mbr = is.bounds();
    out.stats.distance_computations += 1;
    let root_maxd = M::upper_sq(&gmbr, &root_mbr);
    metric_bound.offer(root_maxd);
    heap.push(GroupHeapItem {
        mind_sq: min_min_dist_sq(&gmbr, &root_mbr),
        maxd_sq: root_maxd,
        entry: Entry::Node(crate::node::NodeEntry {
            page: is.root_page(),
            count: is.num_points(),
            mbr: root_mbr,
        }),
    });
    out.stats.enqueued += 1;

    while let Some(item) = heap.pop() {
        heap_pops += 1;
        let bound = metric_bound.bound_sq().min(point_bound);
        if item.mind_sq > bound * (1.0 + PRUNE_EPS) {
            if tracer.enabled() {
                // The popped item and everything still queued are cut off.
                *cutoff_total += heap.len() as u64 + 1;
            }
            break; // min-heap: everything remaining is at least this far
        }
        metric_bound.remove(item.maxd_sq);
        match item.entry {
            Entry::Object(s) => {
                // One kernel call for the whole group: (s - p)^2 sums the
                // same squares as the scalar (p - s)^2, bit for bit. The
                // self-pair's distance is computed but never offered or
                // counted, exactly like the scalar skip.
                let gpoints = SoaPoints::new(states.len(), &gcols);
                kernels::dist_sq_batch(&s.point, &gpoints, &mut dist_buf);
                let mut improved_max = false;
                for (i, st) in states.iter_mut().enumerate() {
                    if cfg.exclude_self && st.oid == s.oid {
                        continue;
                    }
                    out.stats.distance_computations += 1;
                    let old = st.bound_sq();
                    if st.offer(dist_buf[i], s.oid) && old >= point_bound {
                        improved_max = true;
                    }
                }
                if improved_max {
                    point_bound = recompute(&states);
                }
            }
            Entry::Node(n) => {
                guard.tick()?;
                let node = is.read_node_cached(n.page)?;
                out.stats.s_nodes_expanded += 1;
                tracer.node_expanded(Side::S, n.page, &node.entries);
                // Batch both bounds over the node's SoA columns, then
                // replay the accept/prune decisions sequentially under the
                // evolving bound — bit-identical to the scalar loop.
                let cols = node.soa_mbrs();
                kernels::min_min_dist_sq_batch(&gmbr, &cols, &mut mind_buf);
                M::upper_sq_batch(&gmbr, &cols, &mut maxd_buf);
                for (i, e) in node.entries.iter().enumerate() {
                    out.stats.distance_computations += 1;
                    let bound = metric_bound.bound_sq().min(point_bound);
                    if mind_buf[i] <= bound * (1.0 + PRUNE_EPS) {
                        metric_bound.offer(maxd_buf[i]);
                        heap.push(GroupHeapItem {
                            mind_sq: mind_buf[i],
                            maxd_sq: maxd_buf[i],
                            entry: *e,
                        });
                        out.stats.enqueued += 1;
                        if hinting {
                            if let Entry::Node(c) = e {
                                // First touch only: a node-cached page is
                                // served without a pool read, so hinting it
                                // would be pure wasted disk I/O.
                                if !is.node_is_cached(c.page) {
                                    hints.push((
                                        c.page,
                                        crate::readahead::depth_priority(c.count),
                                    ));
                                }
                            }
                        }
                    } else {
                        out.stats.pruned_on_probe += 1;
                    }
                }
                // Readahead for the pages just pushed: changes only when
                // their physical reads happen, never the group decisions.
                crate::readahead::submit(is.pool(), &mut hints);
            }
        }
    }

    tracer.event(|| TraceEvent::BnnBatch {
        size: group.len() as u32,
        heap_pops,
    });

    // Emit: per point, best candidates in ascending distance, at most k
    // (the k_eff-th candidate only existed to keep the bound sound in
    // self-join mode).
    for st in states {
        let mut best: Vec<KBest> = st.best.into_vec();
        best.sort_by(|a, b| {
            (a.dist_sq, a.s_oid)
                .partial_cmp(&(b.dist_sq, b.s_oid))
                .expect("finite")
        });
        for b in best.iter().take(cfg.k) {
            out.results.push(NeighborPair {
                r_oid: st.oid,
                s_oid: b.s_oid,
                dist: b.dist_sq.sqrt(),
            });
        }
        scratch.put_kbest(BinaryHeap::from(best));
    }
    scratch.put_group_heap(heap);
    scratch.put_hints(hints);
    scratch.put_f64(gcols);
    scratch.put_f64(dist_buf);
    scratch.put_f64(mind_buf);
    scratch.put_f64(maxd_buf);
    Ok(())
}
