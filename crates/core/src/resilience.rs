//! Query resilience: deadlines, cooperative cancellation, work budgets,
//! and the structured [`QueryError`] every traversal returns.
//!
//! Long-running ANN joins need to be stoppable (a client went away),
//! boundable (admission control wants a worst-case latency or I/O cost),
//! and fault-tolerant (a transient disk error must not kill a batch job;
//! a corrupt page must not wedge it). This module supplies the shared
//! machinery:
//!
//! * [`CancelToken`] — a shareable flag (`Arc<AtomicBool>`); any holder
//!   can cancel an in-flight query from another thread.
//! * [`QueryGuard`] — the per-query limit checker. Every traversal calls
//!   [`QueryGuard::tick`] once per node expansion (HNN, which has no
//!   nodes, ticks per query point), so an abort takes effect within one
//!   expansion. With no limits configured the guard is a single branch,
//!   keeping the fault-free path decision- and counter-identical.
//! * [`QueryError`] — the typed abort/failure taxonomy. Store-layer
//!   failures (after the pool's retries are exhausted) arrive as
//!   [`QueryError::Io`]; budget aborts carry the partial [`AnnStats`]
//!   accumulated up to the abort point.
//!
//! The clean-abort contract: whichever way a query ends, the system is
//! left reusable — pool pins are released by the pool's own miss-path
//! error handling, `NodeCache` entries are never published half-built,
//! `QueryScratch` buffers at worst drop (they are re-allocated on next
//! use), and a subsequent fault-free run returns byte-identical results.

use crate::stats::AnnStats;
use ann_store::{BufferPool, RetryPolicy, StoreError};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shareable cancellation flag. Clone it, hand a copy to another
/// thread (or a timeout reaper), and [`cancel`](CancelToken::cancel) —
/// the query holding the token aborts at its next node expansion with
/// [`QueryError::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; idempotent, callable from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Which limit a [`QueryError::BudgetExhausted`] abort hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetKind {
    /// The physical-read budget (`io_budget`).
    Io,
    /// The node-expansion budget (`visit_budget`).
    Visits,
}

/// How a query ended other than success. Traversals return this instead
/// of panicking; the variants carry enough to tell policy (retry the
/// request? shed it?) from pathology (bad media).
#[derive(Debug)]
pub enum QueryError {
    /// The request's [`CancelToken`] fired.
    Cancelled,
    /// The request's deadline passed mid-traversal.
    DeadlineExceeded,
    /// A work budget ran out. `partial` holds the statistics accumulated
    /// up to the abort point (result pairs are discarded: a truncated
    /// ANN join is not a meaningful answer under the paper's semantics).
    BudgetExhausted {
        /// Which budget was exhausted.
        budget: BudgetKind,
        /// Work done before the abort — accurate counters plus the I/O
        /// delta attributable to this query.
        partial: Box<AnnStats>,
    },
    /// The storage layer failed after the pool's bounded retries:
    /// permanent injected faults, OS errors, or a (now quarantined)
    /// corrupt page.
    Io(StoreError),
}

impl QueryError {
    /// Short stable label for trace events and reports.
    pub fn reason(&self) -> &'static str {
        match self {
            QueryError::Cancelled => "cancelled",
            QueryError::DeadlineExceeded => "deadline",
            QueryError::BudgetExhausted {
                budget: BudgetKind::Io,
                ..
            } => "io-budget",
            QueryError::BudgetExhausted {
                budget: BudgetKind::Visits,
                ..
            } => "visit-budget",
            QueryError::Io(_) => "io-error",
        }
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Cancelled => write!(f, "query cancelled"),
            QueryError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            QueryError::BudgetExhausted { budget, partial } => write!(
                f,
                "query {} budget exhausted after {} node expansions",
                match budget {
                    BudgetKind::Io => "I/O",
                    BudgetKind::Visits => "visit",
                },
                partial.r_nodes_expanded + partial.s_nodes_expanded
            ),
            QueryError::Io(e) => write!(f, "query I/O failure: {e}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for QueryError {
    fn from(e: StoreError) -> Self {
        QueryError::Io(e)
    }
}

/// Convenience alias for everything the query layer returns.
pub type QueryResult<T> = std::result::Result<T, QueryError>;

/// The per-query limit checker threaded through every traversal.
///
/// Internally atomic, so the parallel MBA workers share one guard by
/// reference. [`QueryGuard::disabled`] (what the legacy entrypoints use)
/// reduces [`tick`](QueryGuard::tick) to one predictable branch.
pub struct QueryGuard<'p> {
    active: bool,
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    visit_budget: u64,
    visits: AtomicU64,
    io_budget: u64,
    io_base: u64,
    /// Pools whose physical reads count against `io_budget` (deduped).
    pools: Vec<&'p BufferPool>,
}

impl QueryGuard<'static> {
    /// A guard with no limits: every tick is a single branch.
    pub fn disabled() -> Self {
        QueryGuard {
            active: false,
            cancel: None,
            deadline: None,
            visit_budget: u64::MAX,
            visits: AtomicU64::new(0),
            io_budget: u64::MAX,
            io_base: 0,
            pools: Vec::new(),
        }
    }
}

impl<'p> QueryGuard<'p> {
    /// Builds a guard for one query. `pools` are the buffer pools whose
    /// physical reads the `io_budget` charges (duplicates are folded, so
    /// a shared pool is not double-counted).
    pub fn new(
        cancel: Option<CancelToken>,
        deadline: Option<Instant>,
        visit_budget: Option<u64>,
        io_budget: Option<u64>,
        pools: &[&'p BufferPool],
    ) -> Self {
        let mut deduped: Vec<&'p BufferPool> = Vec::with_capacity(pools.len());
        for &p in pools {
            if !deduped.iter().any(|&q| std::ptr::eq(q, p)) {
                deduped.push(p);
            }
        }
        let io_budget_set = io_budget.is_some();
        let active = cancel.is_some() || deadline.is_some() || visit_budget.is_some() || io_budget_set;
        let mut guard = QueryGuard {
            active,
            cancel,
            deadline,
            visit_budget: visit_budget.unwrap_or(u64::MAX),
            visits: AtomicU64::new(0),
            io_budget: io_budget.unwrap_or(u64::MAX),
            io_base: 0,
            pools: if io_budget_set { deduped } else { Vec::new() },
        };
        guard.io_base = guard.physical_reads();
        guard
    }

    /// Physical reads so far across the charged pools.
    fn physical_reads(&self) -> u64 {
        self.pools.iter().map(|p| p.physical_reads()).sum()
    }

    /// Node expansions charged so far.
    pub fn visits(&self) -> u64 {
        self.visits.load(Ordering::Relaxed)
    }

    /// Checks cancellation and deadline without charging a node
    /// expansion. The query entrypoint calls this once before
    /// materializing inputs, so a request that arrives already cancelled
    /// (or past its deadline) aborts before a single page is read — even
    /// for algorithms that extract points from an index up front.
    pub fn preflight(&self) -> QueryResult<()> {
        if !self.active {
            return Ok(());
        }
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                return Err(QueryError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(QueryError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Charges one node expansion and checks every configured limit, in
    /// severity order: cancellation, deadline, then budgets. Budget
    /// aborts carry empty partial stats here; the traversal entrypoint
    /// fills them in before returning (it owns the counters).
    #[inline]
    pub fn tick(&self) -> QueryResult<()> {
        if !self.active {
            return Ok(());
        }
        self.tick_slow()
    }

    #[cold]
    fn tick_slow(&self) -> QueryResult<()> {
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                return Err(QueryError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(QueryError::DeadlineExceeded);
            }
        }
        let visits = self.visits.fetch_add(1, Ordering::Relaxed) + 1;
        if visits > self.visit_budget {
            return Err(QueryError::BudgetExhausted {
                budget: BudgetKind::Visits,
                partial: Box::default(),
            });
        }
        if self.io_budget != u64::MAX
            && self.physical_reads().saturating_sub(self.io_base) > self.io_budget
        {
            return Err(QueryError::BudgetExhausted {
                budget: BudgetKind::Io,
                partial: Box::default(),
            });
        }
        Ok(())
    }
}

/// Replaces `stats` inside a [`QueryError::BudgetExhausted`] with the
/// partial statistics the aborted traversal accumulated; other variants
/// pass through untouched. Entry points call this on their exit path.
pub fn attach_partial_stats(err: QueryError, stats: &AnnStats) -> QueryError {
    match err {
        QueryError::BudgetExhausted { budget, .. } => QueryError::BudgetExhausted {
            budget,
            partial: Box::new(*stats),
        },
        other => other,
    }
}

/// RAII override of the transient-fault [`RetryPolicy`] on the pools a
/// request touches: applied on entry, restored (in reverse) on drop, so
/// a per-request policy cannot leak into unrelated queries even when the
/// query errors out mid-flight.
pub struct RetryOverride<'p> {
    saved: Vec<(&'p BufferPool, RetryPolicy)>,
}

impl<'p> RetryOverride<'p> {
    /// Applies `policy` to every distinct pool in `pools`.
    pub fn apply(pools: &[&'p BufferPool], policy: RetryPolicy) -> Self {
        let mut saved: Vec<(&'p BufferPool, RetryPolicy)> = Vec::with_capacity(pools.len());
        for &p in pools {
            if saved.iter().any(|&(q, _)| std::ptr::eq(q, p)) {
                continue;
            }
            saved.push((p, p.retry_policy()));
            p.set_retry_policy(policy);
        }
        RetryOverride { saved }
    }
}

impl Drop for RetryOverride<'_> {
    fn drop(&mut self) {
        for (pool, policy) in self.saved.drain(..).rev() {
            pool.set_retry_policy(policy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ann_store::MemDisk;
    use std::time::Duration;

    #[test]
    fn disabled_guard_never_aborts() {
        let g = QueryGuard::disabled();
        for _ in 0..10_000 {
            assert!(g.tick().is_ok());
        }
        assert_eq!(g.visits(), 0, "inactive guard does not count");
    }

    #[test]
    fn cancel_token_aborts_immediately() {
        let token = CancelToken::new();
        let g = QueryGuard::new(Some(token.clone()), None, None, None, &[]);
        assert!(g.tick().is_ok());
        token.cancel();
        assert!(matches!(g.tick(), Err(QueryError::Cancelled)));
        // Cancellation wins over every other limit.
        assert!(matches!(g.tick(), Err(QueryError::Cancelled)));
    }

    #[test]
    fn preflight_checks_limits_without_charging_the_budget() {
        let token = CancelToken::new();
        let g = QueryGuard::new(Some(token.clone()), None, Some(1), None, &[]);
        assert!(g.preflight().is_ok());
        assert_eq!(g.visits(), 0, "preflight must not charge a visit");
        token.cancel();
        assert!(matches!(g.preflight(), Err(QueryError::Cancelled)));

        let g = QueryGuard::new(
            None,
            Some(Instant::now() - Duration::from_millis(1)),
            None,
            None,
            &[],
        );
        assert!(matches!(g.preflight(), Err(QueryError::DeadlineExceeded)));
    }

    #[test]
    fn expired_deadline_aborts() {
        let g = QueryGuard::new(
            None,
            Some(Instant::now() - Duration::from_millis(1)),
            None,
            None,
            &[],
        );
        assert!(matches!(g.tick(), Err(QueryError::DeadlineExceeded)));
    }

    #[test]
    fn visit_budget_allows_exactly_budget_ticks() {
        let g = QueryGuard::new(None, None, Some(3), None, &[]);
        assert!(g.tick().is_ok());
        assert!(g.tick().is_ok());
        assert!(g.tick().is_ok());
        match g.tick() {
            Err(QueryError::BudgetExhausted { budget, .. }) => {
                assert_eq!(budget, BudgetKind::Visits)
            }
            other => panic!("expected visit-budget abort, got {other:?}"),
        }
    }

    #[test]
    fn io_budget_charges_shared_pool_once() {
        let pool = BufferPool::new(MemDisk::new(), 4);
        for _ in 0..3 {
            pool.allocate().unwrap();
        }
        pool.flush_all().unwrap();
        pool.clear().unwrap();
        let g = QueryGuard::new(None, None, None, Some(1), &[&pool, &pool]);
        assert!(g.tick().is_ok(), "no reads yet");
        pool.with_page(0, |_| ()).unwrap(); // 1 physical read: at budget
        assert!(g.tick().is_ok());
        pool.with_page(1, |_| ()).unwrap(); // 2nd read: over budget
        match g.tick() {
            Err(QueryError::BudgetExhausted { budget, .. }) => assert_eq!(budget, BudgetKind::Io),
            other => panic!("expected io-budget abort, got {other:?}"),
        }
    }

    #[test]
    fn attach_partial_stats_fills_budget_aborts_only() {
        let stats = AnnStats {
            r_nodes_expanded: 42,
            ..Default::default()
        };
        let err = QueryError::BudgetExhausted {
            budget: BudgetKind::Io,
            partial: Box::default(),
        };
        match attach_partial_stats(err, &stats) {
            QueryError::BudgetExhausted { partial, .. } => {
                assert_eq!(partial.r_nodes_expanded, 42)
            }
            other => panic!("variant changed: {other:?}"),
        }
        assert!(matches!(
            attach_partial_stats(QueryError::Cancelled, &stats),
            QueryError::Cancelled
        ));
    }

    #[test]
    fn retry_override_restores_on_drop() {
        let pool = BufferPool::new(MemDisk::new(), 4);
        let before = pool.retry_policy();
        let custom = RetryPolicy {
            max_attempts: 7,
            backoff: Duration::from_millis(2),
        };
        {
            let _ovr = RetryOverride::apply(&[&pool, &pool], custom);
            assert_eq!(pool.retry_policy(), custom);
        }
        assert_eq!(pool.retry_policy(), before);
    }
}
