//! The paper's primary contribution: all-nearest-neighbor (ANN) and
//! all-k-nearest-neighbor (AkNN) query evaluation over disk-resident
//! spatial indices.
//!
//! This crate implements, from Chen & Patel (ICDE 2007):
//!
//! * the shared disk-resident node model and the [`SpatialIndex`] trait
//!   ([`node`], [`index`]) that both the MBRQT (`ann-mbrqt`) and the
//!   R*-tree (`ann-rstar`) implement;
//! * the **Local Priority Queue** with the Three-Stage (Expand / Filter /
//!   Gather) pruning heuristic ([`lpq`], paper §3.3.1, §3.3.3);
//! * the **MBA** algorithm — depth-first traversal with bi-directional
//!   node expansion (paper Algorithms 2-4) — generic over index structure
//!   (over an R*-tree it is the paper's **RBA**), pruning metric
//!   (NXNDIST vs MAXMAXDIST) and `k` ([`mba`]);
//! * the alternative traversal/expansion combinations the paper ablates in
//!   §3.3.2 ([`mba::Traversal`], [`mba::Expansion`]);
//! * the **BNN** (batched nearest neighbors, Zhang et al. SSDBM'04),
//!   **MNN** (index nested loops) and **HNN** (spatial-hash, no index)
//!   baselines ([`bnn`], [`mnn`], [`hnn`]);
//! * brute-force ground truth for testing ([`brute`]);
//! * per-run counters ([`stats::AnnStats`]) covering distance
//!   computations, queue traffic, node expansions and buffer-pool I/O.
//!
//! # Quickstart
//!
//! ```no_run
//! use ann_core::prelude::*;
//! # fn demo<I: SpatialIndex<2>>(ir: &I, is: &I) -> QueryResult<()> {
//! // `ir` indexes the query set R, `is` the target set S.
//! let req = AnnRequest::new(Algorithm::mba());
//! let output = run(&req, Input::Index(ir), Input::Index(is))?;
//! for pair in &output.results {
//!     println!("r#{} -> s#{} at distance {}", pair.r_oid, pair.s_oid, pair.dist);
//! }
//! # Ok(()) }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Store-error paths in the traversals must propagate typed errors, not
// panic: flag any unwrap that sneaks into non-test code.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod bnn;
pub mod brute;
pub mod closest_pairs;
pub mod extsort;
pub mod hnn;
pub mod index;
pub mod knn;
pub mod lpq;
pub mod mba;
pub mod mnn;
pub mod morsel;
pub mod node;
pub mod node_cache;
pub mod par;
pub mod prelude;
pub mod query;
pub mod readahead;
pub mod resilience;
pub mod scratch;
pub mod snapshot;
pub mod stats;
pub mod trace;
pub mod wire;

pub use extsort::{HilbertSorter, KeyedPoint, PointSpill, SortedStream};
pub use index::SpatialIndex;
pub use node::{DecodedNode, Entry, Node, NodeColumns, NodeEntry, ObjectEntry};
pub use scratch::QueryScratch;
pub use snapshot::{MetaFields, MetaReader, ReadContext, VersionedHandle};
pub use morsel::MorselPool;
pub use node_cache::{NodeCache, NodeCacheStats};
pub use par::{run_workers, WorkerHandle};
pub use query::{Algorithm, AnnRequest, MetricChoice};
pub use resilience::{BudgetKind, CancelToken, QueryError, QueryGuard, QueryResult};
pub use stats::{AnnOutput, AnnStats, NeighborPair};
pub use trace::{ExecutionReport, RecordingSink, TraceSink, Tracer};
pub use wire::{
    CollectionId, ErrorCode, JsonValue, QueryOutcome, QuerySpec, WireError, WIRE_SCHEMA_VERSION,
};
