//! Result and statistics types shared by every ANN algorithm.

use ann_store::IoSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};

/// One `(r, s)` neighbor pair in an ANN / AkNN result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NeighborPair {
    /// Object id from the query set `R`.
    pub r_oid: u64,
    /// Object id of one of its `k` nearest neighbors in `S`.
    pub s_oid: u64,
    /// Euclidean distance between the two objects.
    pub dist: f64,
}

/// Work counters for one ANN run.
///
/// These are the quantities the paper argues about: the efficiency of an
/// ANN algorithm "heavily depends on how many PQ entries are created and
/// processed" (§1), so the counters make the pruning-metric effect
/// directly observable, independent of wall-clock noise.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AnnStats {
    /// `Distances` evaluations (one MIND + one MAXD computation).
    pub distance_computations: u64,
    /// Local priority queues created (one per unique `I_R` entry reached).
    pub lpqs_created: u64,
    /// Entries pushed into some LPQ (survived the Expand-stage filter).
    pub enqueued: u64,
    /// Entries rejected by the Expand-stage `MIND > MAXD` test.
    pub pruned_on_probe: u64,
    /// Entries evicted by the Filter stage while already queued.
    pub pruned_in_queue: u64,
    /// Nodes of `I_R` expanded.
    pub r_nodes_expanded: u64,
    /// Nodes of `I_S` expanded.
    pub s_nodes_expanded: u64,
    /// Buffer-pool I/O attributable to this run.
    pub io: IoSnapshot,
}

impl AnnStats {
    /// Total entries considered (enqueued + rejected at probe time).
    pub fn entries_probed(&self) -> u64 {
        self.enqueued + self.pruned_on_probe
    }

    /// Adds another run's counters field-wise, I/O included.
    pub fn merge(&mut self, other: &AnnStats) {
        self.distance_computations += other.distance_computations;
        self.lpqs_created += other.lpqs_created;
        self.enqueued += other.enqueued;
        self.pruned_on_probe += other.pruned_on_probe;
        self.pruned_in_queue += other.pruned_in_queue;
        self.r_nodes_expanded += other.r_nodes_expanded;
        self.s_nodes_expanded += other.s_nodes_expanded;
        self.io = self.io.merge(&other.io);
    }
}

/// Shared, thread-safe work counters for parallel runs.
///
/// Workers keep their hot-loop counters in a plain local [`AnnStats`]
/// (no synchronization in the traversal itself) and fold the totals in
/// with one relaxed [`add`](Self::add) when they finish a unit of work or
/// exit. Relaxed ordering suffices: the counters are statistics, and the
/// thread join that ends the parallel phase provides the happens-before
/// edge that makes the final [`load`](Self::load) complete.
#[derive(Debug, Default)]
pub struct AtomicAnnStats {
    distance_computations: AtomicU64,
    lpqs_created: AtomicU64,
    enqueued: AtomicU64,
    pruned_on_probe: AtomicU64,
    pruned_in_queue: AtomicU64,
    r_nodes_expanded: AtomicU64,
    s_nodes_expanded: AtomicU64,
}

impl AtomicAnnStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds a worker's local counters in (relaxed; I/O is measured
    /// globally at the pool and is not part of the merge).
    pub fn add(&self, s: &AnnStats) {
        self.distance_computations
            .fetch_add(s.distance_computations, Ordering::Relaxed);
        self.lpqs_created.fetch_add(s.lpqs_created, Ordering::Relaxed);
        self.enqueued.fetch_add(s.enqueued, Ordering::Relaxed);
        self.pruned_on_probe
            .fetch_add(s.pruned_on_probe, Ordering::Relaxed);
        self.pruned_in_queue
            .fetch_add(s.pruned_in_queue, Ordering::Relaxed);
        self.r_nodes_expanded
            .fetch_add(s.r_nodes_expanded, Ordering::Relaxed);
        self.s_nodes_expanded
            .fetch_add(s.s_nodes_expanded, Ordering::Relaxed);
    }

    /// Reads the totals out into a plain [`AnnStats`] (with zeroed I/O —
    /// the caller attributes pool I/O separately).
    pub fn load(&self) -> AnnStats {
        AnnStats {
            distance_computations: self.distance_computations.load(Ordering::Relaxed),
            lpqs_created: self.lpqs_created.load(Ordering::Relaxed),
            enqueued: self.enqueued.load(Ordering::Relaxed),
            pruned_on_probe: self.pruned_on_probe.load(Ordering::Relaxed),
            pruned_in_queue: self.pruned_in_queue.load(Ordering::Relaxed),
            r_nodes_expanded: self.r_nodes_expanded.load(Ordering::Relaxed),
            s_nodes_expanded: self.s_nodes_expanded.load(Ordering::Relaxed),
            io: IoSnapshot::default(),
        }
    }
}

/// The output of an ANN / AkNN run: the neighbor pairs plus work counters.
#[derive(Clone, Debug, Default)]
pub struct AnnOutput {
    /// Neighbor pairs, in no particular order. For AkNN each query object
    /// contributes up to `k` pairs.
    pub results: Vec<NeighborPair>,
    /// Work counters for the run.
    pub stats: AnnStats,
}

impl AnnOutput {
    /// Sorts results by `(r_oid, dist, s_oid)` — canonical order for
    /// comparisons in tests.
    pub fn sort(&mut self) {
        self.results.sort_by(|a, b| {
            (a.r_oid, a.dist, a.s_oid)
                .partial_cmp(&(b.r_oid, b.dist, b.s_oid))
                .expect("distances are finite")
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_orders_by_query_then_distance() {
        let mut out = AnnOutput {
            results: vec![
                NeighborPair {
                    r_oid: 2,
                    s_oid: 0,
                    dist: 1.0,
                },
                NeighborPair {
                    r_oid: 1,
                    s_oid: 5,
                    dist: 2.0,
                },
                NeighborPair {
                    r_oid: 1,
                    s_oid: 3,
                    dist: 0.5,
                },
            ],
            stats: AnnStats::default(),
        };
        out.sort();
        let order: Vec<_> = out.results.iter().map(|p| (p.r_oid, p.s_oid)).collect();
        assert_eq!(order, vec![(1, 3), (1, 5), (2, 0)]);
    }

    #[test]
    fn probed_is_sum() {
        let stats = AnnStats {
            enqueued: 3,
            pruned_on_probe: 4,
            ..Default::default()
        };
        assert_eq!(stats.entries_probed(), 7);
    }
}
