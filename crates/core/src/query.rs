//! The unified ANN query entrypoint: one request builder, one `run`.
//!
//! The crate grew five divergent entrypoints (`mba`, `bnn`, `mnn`, `hnn`,
//! plus `gorder_join` in `ann-gorder`), each with its own `*Config` — so
//! calling, comparing, or instrumenting them meant five slightly different
//! dances. [`AnnRequest`] carries the fields they all share (`k`,
//! `exclude_self`, the pruning-metric choice, and the [`Tracer`] hookup),
//! while [`Algorithm`] carries each method's extras as variant payload.
//! The legacy entrypoints remain as thin wrappers and behave identically.
//!
//! GORDER lives downstream of this crate (`ann-gorder` depends on
//! `ann-core`), so it cannot appear in [`Algorithm`]; it follows the same
//! pattern with `ann_gorder::gorder_join_traced`.
//!
//! ```no_run
//! use ann_core::prelude::*;
//! # fn demo<I: SpatialIndex<2> + Sync>(ir: &I, is: &I) -> ann_core::QueryResult<()> {
//! let out = AnnRequest::new(Algorithm::mba())
//!     .k(10)
//!     .metric(MetricChoice::Nxn)
//!     .run(Input::Index(ir), Input::Index(is))?;
//! # let _ = out; Ok(()) }
//! ```
//!
//! # Resilience
//!
//! A request also carries the query-resilience knobs: a deadline, a
//! shareable [`CancelToken`], I/O and node-visit budgets, and a
//! per-request transient-fault [`RetryPolicy`]. All of them default to
//! off, in which case the traversals run their original fault-free fast
//! path. See [`crate::resilience`] for the abort taxonomy and guarantees.
//!
//! ```no_run
//! use ann_core::prelude::*;
//! use std::time::Duration;
//! # fn demo<I: SpatialIndex<2> + Sync>(ir: &I, is: &I) -> ann_core::QueryResult<()> {
//! let cancel = CancelToken::new();
//! let out = AnnRequest::new(Algorithm::mba())
//!     .deadline_in(Duration::from_secs(30))
//!     .cancel_token(cancel.clone()) // another thread may cancel() it
//!     .io_budget(50_000)
//!     .run(Input::Index(ir), Input::Index(is));
//! match out {
//!     Ok(out) => println!("{} pairs", out.results.len()),
//!     Err(QueryError::DeadlineExceeded) => println!("too slow, shed"),
//!     Err(e) => return Err(e),
//! }
//! # Ok(()) }
//! ```

use crate::bnn::{bnn_guarded, bnn_parallel_guarded, BnnConfig};
use crate::hnn::{hnn_guarded, hnn_parallel_guarded, HnnConfig};
use crate::index::{collect_objects, SpatialIndex};
use crate::mba::{mba_guarded, mba_parallel_guarded, Expansion, MbaConfig, Traversal};
use crate::mnn::{mnn_guarded, mnn_parallel_guarded, MnnConfig};
use crate::node_cache::NodeCache;
use crate::resilience::{CancelToken, QueryGuard, QueryResult, RetryOverride};
use crate::scratch::QueryScratch;
use crate::stats::AnnOutput;
use crate::trace::{TraceSink, Tracer};
use ann_geom::{MaxMaxDist, Mbr, NxnDist, Point, PruneMetric};
use ann_store::{BufferPool, PageId, RetryPolicy};
use std::time::{Duration, Instant};

/// Which pruning metric bounds the search (Figure 3(a)'s comparison).
///
/// Wire-facing (serialized by `ann_core::wire`): `#[non_exhaustive]`, so
/// downstream matches keep a wildcard arm and a future metric variant is
/// not a breaking change.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum MetricChoice {
    /// `NXNDIST` — the paper's contributed tighter bound.
    #[default]
    Nxn,
    /// `MAXMAXDIST` — the classical loose bound.
    MaxMax,
}

impl MetricChoice {
    /// The metric's display name ([`PruneMetric::NAME`]).
    pub fn name(self) -> &'static str {
        match self {
            MetricChoice::Nxn => NxnDist::NAME,
            MetricChoice::MaxMax => MaxMaxDist::NAME,
        }
    }
}

/// Which join algorithm evaluates the request, with its method-specific
/// knobs as payload. Construct via the [`Algorithm::mba`]-style helpers
/// for the defaults each legacy `*Config` used.
///
/// Wire-facing (serialized by `ann_core::wire`): `#[non_exhaustive]`, so
/// downstream matches keep a wildcard arm and the roadmap's future
/// scenarios (reverse k-NN, aggregate NN, …) are not breaking changes.
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
pub enum Algorithm {
    /// The paper's MBA (over MBRQTs) / RBA (over R*-trees): depth-first
    /// bi-directional traversal with Three-Stage pruning. Requires
    /// [`Input::Index`] on both sides.
    Mba {
        /// Query-side traversal order (§3.3.2).
        traversal: Traversal,
        /// Node-expansion strategy (§3.3.2).
        expansion: Expansion,
        /// Worker threads: `1` = the serial algorithm, `0` = one per
        /// core, otherwise that many workers.
        threads: usize,
    },
    /// Batched NN baseline (Zhang et al. SSDBM'04): Hilbert-grouped
    /// best-first searches over the `S` index. `R` may be plain points.
    Bnn {
        /// Query objects per Hilbert-contiguous group.
        group_size: usize,
    },
    /// Index-nested-loops baseline: one best-first kNN search per query
    /// object. Requires [`Input::Index`] on both sides.
    Mnn,
    /// Spatial-hash baseline: no index at all; both sides may be plain
    /// points. Ignores the metric choice (it prunes on exact grid-ring
    /// geometry).
    Hnn {
        /// Target average number of `S` points per grid cell.
        avg_cell_occupancy: f64,
    },
}

impl Algorithm {
    /// MBA/RBA with the paper's defaults: depth-first, bi-directional,
    /// serial.
    pub fn mba() -> Self {
        Algorithm::Mba {
            traversal: Traversal::default(),
            expansion: Expansion::default(),
            threads: 1,
        }
    }

    /// BNN with the default group size ([`BnnConfig::default`]).
    pub fn bnn() -> Self {
        Algorithm::Bnn {
            group_size: BnnConfig::default().group_size,
        }
    }

    /// HNN with the default occupancy ([`HnnConfig::default`]).
    pub fn hnn() -> Self {
        Algorithm::Hnn {
            avg_cell_occupancy: HnnConfig::default().avg_cell_occupancy,
        }
    }

    /// Short display name for reports and labels.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Mba { .. } => "mba",
            Algorithm::Bnn { .. } => "bnn",
            Algorithm::Mnn => "mnn",
            Algorithm::Hnn { .. } => "hnn",
        }
    }
}

/// One side of the join: an index, or plain points.
///
/// Algorithms that need an index on a side will panic when handed
/// [`Input::Points`] there (building an index implicitly would need a
/// pool and build configuration this API deliberately does not own).
/// Algorithms that need points will accept [`Input::Index`] and collect
/// the objects with a full traversal first — convenient, but the
/// collection's page reads happen *outside* the query's I/O accounting,
/// exactly like the bench harness's explicit materialization.
pub enum Input<'a, const D: usize, I: SpatialIndex<D>> {
    /// A disk-resident spatial index over the side's points.
    Index(&'a I),
    /// The side's `(oid, point)` pairs directly.
    Points(&'a [(u64, Point<D>)]),
}

/// Placeholder index type for point-only [`Input`] sides: an empty enum,
/// so the index paths are statically unreachable. Use as
/// `Input::<D, NoIndex>::Points(..)` when a side has no index type to
/// name.
#[derive(Clone, Copy, Debug)]
pub enum NoIndex {}

impl<const D: usize> SpatialIndex<D> for NoIndex {
    fn pool(&self) -> &BufferPool {
        match *self {}
    }
    fn root_page(&self) -> PageId {
        match *self {}
    }
    fn num_points(&self) -> u64 {
        match *self {}
    }
    fn bounds(&self) -> Mbr<D> {
        match *self {}
    }
    fn node_cache(&self) -> Option<&NodeCache<D>> {
        match *self {}
    }
}

/// A unified ANN/AkNN query: the shared knobs every algorithm honors,
/// plus the [`Algorithm`] selection and an optional [`TraceSink`].
///
/// Build with [`AnnRequest::new`] and the chained setters, then call
/// [`run`](AnnRequest::run) (or the free function [`run`]).
#[derive(Clone)]
pub struct AnnRequest<'a> {
    /// Neighbors per query object (`1` = plain ANN).
    pub k: usize,
    /// Self-join mode: skip same-oid pairs (bounds are computed for one
    /// extra neighbor internally so no query starves).
    pub exclude_self: bool,
    /// Pruning metric.
    pub metric: MetricChoice,
    /// Algorithm and its method-specific knobs.
    pub algorithm: Algorithm,
    /// Abort with [`crate::QueryError::DeadlineExceeded`] once this
    /// instant passes (checked at node-expansion granularity).
    pub deadline: Option<Instant>,
    /// Abort with [`crate::QueryError::BudgetExhausted`] after this many
    /// physical page reads attributable to the query.
    pub io_budget: Option<u64>,
    /// Abort with [`crate::QueryError::BudgetExhausted`] after this many
    /// node expansions.
    pub visit_budget: Option<u64>,
    /// Transient-fault retry policy applied to the touched pools for the
    /// duration of the query (restored afterwards, error or not).
    pub retry: Option<RetryPolicy>,
    /// Snapshot version to evaluate against, for time-travel queries over
    /// versioned indexes. The core algorithms don't interpret this — the
    /// layer that owns the index (e.g. the serving registry) pins the
    /// version and hands the resulting [`crate::ReadContext`] in as the
    /// [`Input`]; the field rides along so one request value carries the
    /// full query description across the wire and into logs.
    pub version: Option<u32>,
    /// Intra-query worker threads: `1` (the default) runs the serial
    /// path, `0` means one worker per available core, and any other
    /// value fans the join out over that many workers through the
    /// morsel engine ([`crate::par`]). The unified entrypoint returns
    /// canonical `(r_oid, dist, s_oid)` order at *every* thread count
    /// (serial traversal output is sorted on the way out), so results
    /// are byte-identical regardless of this knob. For
    /// [`Algorithm::Mba`] this overrides the variant's own `threads`
    /// knob unless left at `1`.
    pub threads: usize,
    cancel: Option<CancelToken>,
    tracer: Tracer<'a>,
}

impl<'a> AnnRequest<'a> {
    /// A request for `algorithm` with `k = 1`, no self-exclusion,
    /// NXNDIST, tracing disabled, and no resilience limits.
    pub fn new(algorithm: Algorithm) -> Self {
        AnnRequest {
            k: 1,
            exclude_self: false,
            metric: MetricChoice::default(),
            algorithm,
            deadline: None,
            io_budget: None,
            visit_budget: None,
            retry: None,
            version: None,
            threads: 1,
            cancel: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Sets the intra-query worker-thread count (see the
    /// [`threads`](AnnRequest::threads) field docs; `1` = serial, `0` =
    /// one per core).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Pins the query to snapshot `version` of a versioned index
    /// (time-travel). Resolution happens in the index-owning layer; see
    /// the [`version`](AnnRequest::version) field docs.
    pub fn at_version(mut self, version: u32) -> Self {
        self.version = Some(version);
        self
    }

    /// Sets the neighbors-per-object count.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets self-join mode.
    pub fn exclude_self(mut self, exclude: bool) -> Self {
        self.exclude_self = exclude;
        self
    }

    /// Sets the pruning metric.
    pub fn metric(mut self, metric: MetricChoice) -> Self {
        self.metric = metric;
        self
    }

    /// Attaches a trace sink — the single point where observability plugs
    /// into every algorithm.
    pub fn trace(mut self, sink: &'a dyn TraceSink) -> Self {
        self.tracer = Tracer::new(sink);
        self
    }

    /// Aborts the query once `deadline` passes.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Aborts the query `timeout` from now — sugar for
    /// [`deadline`](AnnRequest::deadline).
    pub fn deadline_in(self, timeout: Duration) -> Self {
        self.deadline(Instant::now() + timeout)
    }

    /// Attaches a cancellation token; keep a clone to cancel the running
    /// query from another thread.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Caps the query's physical page reads.
    pub fn io_budget(mut self, pages: u64) -> Self {
        self.io_budget = Some(pages);
        self
    }

    /// Caps the query's node expansions.
    pub fn visit_budget(mut self, nodes: u64) -> Self {
        self.visit_budget = Some(nodes);
        self
    }

    /// Overrides the transient-fault retry policy on the pools this query
    /// touches, for the duration of the query.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// The tracer this request will thread through the algorithm.
    pub fn tracer(&self) -> Tracer<'a> {
        self.tracer
    }

    /// Evaluates the request — method-call sugar for the free [`run`].
    pub fn run<const D: usize, IR, IS>(
        &self,
        r: Input<'_, D, IR>,
        s: Input<'_, D, IS>,
    ) -> QueryResult<AnnOutput>
    where
        IR: SpatialIndex<D> + Sync,
        IS: SpatialIndex<D> + Sync,
    {
        run(self, r, s)
    }

    /// Evaluates the request through a caller-owned [`QueryScratch`] —
    /// method-call sugar for the free [`run_scratch`].
    pub fn run_scratch<const D: usize, IR, IS>(
        &self,
        r: Input<'_, D, IR>,
        s: Input<'_, D, IS>,
        scratch: &mut QueryScratch<D>,
    ) -> QueryResult<AnnOutput>
    where
        IR: SpatialIndex<D> + Sync,
        IS: SpatialIndex<D> + Sync,
    {
        run_scratch(self, r, s, scratch)
    }
}

/// The `Debug` rendering is the server's request-log line, so it must
/// cover *every* knob — the resilience fields included (a log that hides
/// the deadline or budgets is useless for debugging shed requests). The
/// deadline renders as the duration remaining (`deadline_in`), which is
/// what a log reader actually wants; `None` means no deadline, and
/// `Some(0ns)` means already expired.
impl std::fmt::Debug for AnnRequest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnnRequest")
            .field("k", &self.k)
            .field("exclude_self", &self.exclude_self)
            .field("metric", &self.metric)
            .field("algorithm", &self.algorithm)
            .field(
                "deadline_in",
                &self
                    .deadline
                    .map(|d| d.saturating_duration_since(Instant::now())),
            )
            .field("cancellable", &self.cancel.is_some())
            .field(
                "cancelled",
                &self.cancel.as_ref().is_some_and(|c| c.is_cancelled()),
            )
            .field("io_budget", &self.io_budget)
            .field("visit_budget", &self.visit_budget)
            .field("retry", &self.retry)
            .field("version", &self.version)
            .field("threads", &self.threads)
            .field("traced", &self.tracer.enabled())
            .finish()
    }
}

/// Evaluates `req` joining `r` against `s`: for every object on the `r`
/// side, find its `req.k` nearest neighbors on the `s` side.
///
/// Dispatches the runtime [`MetricChoice`] onto the compile-time
/// [`PruneMetric`] generics of the legacy entrypoints, which this calls
/// unchanged — results, stats, and page-op order are identical to calling
/// those directly with the equivalent `*Config`.
///
/// Degenerate requests are uniform across algorithms: `k == 0` or an
/// empty side yields an empty result, and `k > |S|` yields fewer than `k`
/// neighbors per query — never a panic. Equal-distance neighbors follow
/// the canonical tie-break of [`brute_force_aknn`](crate::brute): per
/// query, ascending `(distance, s_oid)`.
///
/// # Panics
///
/// When the algorithm requires an index on a side that was passed
/// [`Input::Points`] (see [`Algorithm`] variant docs).
pub fn run<const D: usize, IR, IS>(
    req: &AnnRequest<'_>,
    r: Input<'_, D, IR>,
    s: Input<'_, D, IS>,
) -> QueryResult<AnnOutput>
where
    IR: SpatialIndex<D> + Sync,
    IS: SpatialIndex<D> + Sync,
{
    run_scratch(req, r, s, &mut QueryScratch::new())
}

/// [`run`] through a caller-owned [`QueryScratch`] — **the** canonical
/// execution path. Every other entrypoint (the free [`run`], the
/// [`AnnRequest::run`] sugar, the deprecated per-algorithm wrappers, and
/// the serving layer's `QuerySpec` path) funnels into this one function,
/// so there is exactly one place where metric dispatch, guard setup, and
/// algorithm selection happen.
///
/// A long-lived caller (a server worker, a benchmark loop) reuses one
/// scratch arena across queries and reaches a zero-allocation steady
/// state; results, stats, and page-op order are identical to [`run`].
pub fn run_scratch<const D: usize, IR, IS>(
    req: &AnnRequest<'_>,
    r: Input<'_, D, IR>,
    s: Input<'_, D, IS>,
    scratch: &mut QueryScratch<D>,
) -> QueryResult<AnnOutput>
where
    IR: SpatialIndex<D> + Sync,
    IS: SpatialIndex<D> + Sync,
{
    match req.metric {
        MetricChoice::Nxn => run_with_metric::<D, NxnDist, IR, IS>(req, r, s, scratch),
        MetricChoice::MaxMax => run_with_metric::<D, MaxMaxDist, IR, IS>(req, r, s, scratch),
    }
}

fn run_with_metric<const D: usize, M, IR, IS>(
    req: &AnnRequest<'_>,
    r: Input<'_, D, IR>,
    s: Input<'_, D, IS>,
    scratch: &mut QueryScratch<D>,
) -> QueryResult<AnnOutput>
where
    M: PruneMetric,
    IR: SpatialIndex<D> + Sync,
    IS: SpatialIndex<D> + Sync,
{
    let tracer = req.tracer;
    // The pools the query will touch: the guard charges their physical
    // reads against the I/O budget and the retry override applies there.
    let mut pools: Vec<&BufferPool> = Vec::with_capacity(2);
    if let Input::Index(ir) = &r {
        pools.push(ir.pool());
    }
    if let Input::Index(is) = &s {
        pools.push(is.pool());
    }
    let guard = QueryGuard::new(
        req.cancel.clone(),
        req.deadline,
        req.visit_budget,
        req.io_budget,
        &pools,
    );
    guard.preflight()?;
    let _retry = req.retry.map(|policy| RetryOverride::apply(&pools, policy));
    let ran = match req.algorithm {
        Algorithm::Mba {
            traversal,
            expansion,
            threads,
        } => {
            let Input::Index(ir) = r else {
                panic!("Algorithm::Mba requires Input::Index on the r side")
            };
            let Input::Index(is) = s else {
                panic!("Algorithm::Mba requires Input::Index on the s side")
            };
            let cfg = MbaConfig {
                k: req.k,
                traversal,
                expansion,
                exclude_self: req.exclude_self,
            };
            // The request-level knob wins unless left at its serial
            // default; the variant's own `threads` remains for wire
            // compatibility and the legacy parallel entrypoints.
            let threads = if req.threads == 1 {
                threads
            } else {
                req.threads
            };
            if threads == 1 {
                mba_guarded::<D, M, IR, IS>(ir, is, &cfg, tracer, scratch, &guard)
            } else {
                mba_parallel_guarded::<D, M, IR, IS>(ir, is, &cfg, threads, tracer, &guard)
            }
        }
        Algorithm::Bnn { group_size } => {
            let Input::Index(is) = s else {
                panic!("Algorithm::Bnn requires Input::Index on the s side")
            };
            let cfg = BnnConfig {
                k: req.k,
                group_size,
                exclude_self: req.exclude_self,
            };
            let collected;
            let r_pts = match r {
                Input::Points(p) => p,
                Input::Index(ir) => {
                    collected = collect_objects(ir)?;
                    &collected
                }
            };
            if req.threads == 1 {
                bnn_guarded::<D, M, IS>(r_pts, is, &cfg, tracer, scratch, &guard)
            } else {
                bnn_parallel_guarded::<D, M, IS>(r_pts, is, &cfg, req.threads, tracer, &guard)
            }
        }
        Algorithm::Mnn => {
            let Input::Index(ir) = r else {
                panic!("Algorithm::Mnn requires Input::Index on the r side")
            };
            let Input::Index(is) = s else {
                panic!("Algorithm::Mnn requires Input::Index on the s side")
            };
            let cfg = MnnConfig {
                k: req.k,
                exclude_self: req.exclude_self,
            };
            if req.threads == 1 {
                mnn_guarded::<D, M, IR, IS>(ir, is, &cfg, tracer, scratch, &guard)
            } else {
                mnn_parallel_guarded::<D, M, IR, IS>(ir, is, &cfg, req.threads, tracer, &guard)
            }
        }
        Algorithm::Hnn { avg_cell_occupancy } => {
            let cfg = HnnConfig {
                k: req.k,
                avg_cell_occupancy,
                exclude_self: req.exclude_self,
            };
            let r_collected;
            let r_pts = match r {
                Input::Points(p) => p,
                Input::Index(ir) => {
                    r_collected = collect_objects(ir)?;
                    &r_collected
                }
            };
            let s_collected;
            let s_pts = match s {
                Input::Points(p) => p,
                Input::Index(is) => {
                    s_collected = collect_objects(is)?;
                    &s_collected
                }
            };
            if req.threads == 1 {
                hnn_guarded(r_pts, s_pts, &cfg, tracer, scratch, &guard)
            } else {
                hnn_parallel_guarded(r_pts, s_pts, &cfg, req.threads, tracer, &guard)
            }
        }
    };
    // Canonical `(r_oid, dist, s_oid)` order on every path: the morsel
    // engine already merges into it, but the serial algorithms emit
    // traversal order — sorting here makes the unified entrypoint's
    // output byte-identical at *any* thread count, including 1, so
    // library callers never see ordering flip between threads=1 and
    // threads=2. (Near-free on the parallel paths: already sorted.)
    let mut out = ran?;
    out.sort();
    Ok(out)
}
