//! The shared morsel-driven parallel execution engine.
//!
//! Every parallel algorithm variant (`mba_parallel_guarded`,
//! `bnn_parallel_guarded`, `mnn_parallel_guarded`, `hnn_parallel_guarded`)
//! delegates to [`run_workers`]: the caller seeds a [`MorselPool`] with
//! its algorithm-specific units of work and supplies one worker closure;
//! the engine owns thread spawning, work stealing, the statistics fold,
//! trace aggregation, deterministic result merging, and first-error
//! selection. The contract that makes the parallel output **byte-identical**
//! to serial:
//!
//! - **Independent morsels.** Each unit's results and prune decisions
//!   depend only on the unit itself (plus immutable shared state), never
//!   on which worker ran it or what ran before it on the same worker.
//! - **Canonical merge.** Worker outputs are concatenated in worker-index
//!   order, then sorted under the canonical `(r_oid, dist, s_oid)`
//!   tie-break — the same order every comparison path in the repo uses —
//!   so scheduling nondeterminism cannot reach the caller.
//! - **Commutative counters.** [`AnnStats`] fields are sums; workers fold
//!   into one relaxed [`AtomicAnnStats`] and the engine cross-checks the
//!   fold against a sequential merge in debug builds.
//! - **Ordered trace replay.** A shared `&dyn TraceSink` is `Sync`, but
//!   interleaved emission would corrupt [`RecordingSink`]'s level
//!   inference (it infers a page's level from its parent's earlier
//!   `NodeExpanded`). Workers therefore buffer events into per-worker
//!   sinks tagged by one global sequence counter; after the join the
//!   engine replays the merged stream in acquisition order. A parent's
//!   expansion always acquires its tag before the children become
//!   stealable, so parent-before-child ordering survives the merge.
//!
//! Error propagation: a worker whose closure returns `Err` aborts the
//! pool, so every sibling's next `pop` returns `None` and the whole team
//! unwinds within one morsel step. Outputs from aborted workers still
//! fold in — partial statistics stay faithful — and the first error in
//! worker-index order is returned for the caller to wrap
//! ([`crate::resilience::attach_partial_stats`] plus the `QueryAborted`
//! trace event stay the caller's job, exactly as on the serial paths).
//!
//! Panic propagation: each worker closure runs under `catch_unwind`. A
//! panicking worker popped a morsel it will never `complete()`, so
//! without intervention its siblings would wait on the in-flight counter
//! forever and `run_workers` would never return. The unwind guard aborts
//! the pool instead — siblings drain within one morsel step, the scoped
//! join finishes — and the engine re-raises the first panic payload to
//! the caller, matching what the same panic would do on the serial path.
//!
//! [`RecordingSink`]: crate::trace::RecordingSink

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::morsel::MorselPool;
use crate::resilience::{QueryError, QueryResult};
use crate::stats::{AnnOutput, AnnStats, AtomicAnnStats};
use crate::trace::{TraceEvent, TraceSink, Tracer};

/// A per-worker buffering sink: every event is tagged with a globally
/// unique, monotonically assigned sequence number and retained locally;
/// the engine merges all buffers by tag after the join and replays them
/// into the real sink. Span notifications are not forwarded — workers do
/// not open phase spans; the caller owns the `Join` span that encloses
/// the whole parallel region.
struct BufferedSink<'e> {
    seq: &'e AtomicU64,
    events: Mutex<Vec<(u64, TraceEvent)>>,
}

impl TraceSink for BufferedSink<'_> {
    fn event(&self, event: &TraceEvent) {
        let tag = self.seq.fetch_add(1, Ordering::Relaxed);
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((tag, event.clone()));
    }
}

/// A worker's handle onto the shared [`MorselPool`]: pop/push/complete
/// plus the worker-local [`Tracer`] whose events the engine will merge.
pub struct WorkerHandle<'e, T> {
    index: usize,
    pool: &'e MorselPool<T>,
    tracer: Tracer<'e>,
}

impl<'e, T> WorkerHandle<'e, T> {
    /// This worker's index in `0..threads` (stable for the whole run).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The worker-local tracer. Disabled when the caller's tracer is
    /// disabled, so the traced-off hot path stays free of buffering.
    pub fn tracer(&self) -> Tracer<'e> {
        self.tracer
    }

    /// Next morsel: own deque first, then steal. `None` = run over.
    pub fn pop(&self) -> Option<T> {
        self.pool.pop(self.index)
    }

    /// Publishes a child morsel produced by the unit being processed.
    /// Must precede the matching [`complete`](Self::complete).
    pub fn push(&self, unit: T) {
        self.pool.push(self.index, unit);
    }

    /// Marks the morsel most recently popped as fully processed.
    pub fn complete(&self) {
        self.pool.complete();
    }
}

/// Runs `threads` workers over a morsel pool seeded with `seeds` and
/// merges their outputs deterministically.
///
/// Each worker closure receives a [`WorkerHandle`] and must drain it
/// (`while let Some(unit) = h.pop() { ...; h.complete(); }`), returning
/// its local [`AnnOutput`] *unconditionally* — even when it also returns
/// an error — so partial statistics survive aborts. The engine returns
/// the canonically sorted union of all results plus the first error in
/// worker-index order, if any. The caller keeps responsibility for I/O
/// attribution, `attach_partial_stats`, and the `QueryAborted` event,
/// mirroring the serial entrypoints.
pub fn run_workers<T, F>(
    threads: usize,
    seeds: Vec<T>,
    tracer: Tracer<'_>,
    worker: F,
) -> (AnnOutput, Option<QueryError>)
where
    T: Send,
    F: Fn(WorkerHandle<'_, T>) -> (AnnOutput, QueryResult<()>) + Sync,
{
    assert!(threads >= 1, "run_workers needs at least one worker");
    let pool = MorselPool::new(threads, seeds);
    let seq = AtomicU64::new(0);
    let sinks: Vec<BufferedSink<'_>> = (0..threads)
        .map(|_| BufferedSink {
            seq: &seq,
            events: Mutex::new(Vec::new()),
        })
        .collect();
    let shared_stats = AtomicAnnStats::new();

    let mut panicked: Option<Box<dyn std::any::Any + Send>> = None;
    let results: Vec<(AnnOutput, QueryResult<()>)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|index| {
                let pool = &pool;
                let sink = &sinks[index];
                let shared_stats = &shared_stats;
                let worker = &worker;
                let traced = tracer.enabled();
                scope.spawn(move |_| {
                    let wtracer = if traced {
                        Tracer::new(sink)
                    } else {
                        Tracer::disabled()
                    };
                    let ran = panic::catch_unwind(AssertUnwindSafe(|| {
                        worker(WorkerHandle {
                            index,
                            pool,
                            tracer: wtracer,
                        })
                    }));
                    match &ran {
                        Ok((out, status)) => {
                            if status.is_err() {
                                pool.abort();
                            }
                            shared_stats.add(&out.stats);
                        }
                        // The panicking worker popped a morsel it will
                        // never complete; abort so siblings drain
                        // instead of waiting on the in-flight counter
                        // forever (which would also wedge the join).
                        Err(_) => pool.abort(),
                    }
                    ran
                })
            })
            .collect();
        let mut results = Vec::with_capacity(threads);
        for h in handles {
            match h.join().expect("parallel worker crashed outside catch_unwind") {
                Ok(pair) => results.push(pair),
                Err(payload) => {
                    if panicked.is_none() {
                        panicked = Some(payload);
                    }
                }
            }
        }
        results
    })
    .expect("parallel scope failed");
    if let Some(payload) = panicked {
        // Re-raise on the calling thread, exactly as the serial path
        // would have; all siblings have already drained and joined.
        panic::resume_unwind(payload);
    }

    let mut out = AnnOutput::default();
    let mut sequential_fold = AnnStats::default();
    let mut failure: Option<QueryError> = None;
    let mut complete = true;
    for (wout, status) in results {
        sequential_fold.merge(&wout.stats);
        out.results.extend(wout.results);
        if let Err(e) = status {
            complete = false;
            if failure.is_none() {
                failure = Some(e);
            }
        }
    }
    out.stats = shared_stats.load();
    debug_assert!(
        !complete || out.stats == sequential_fold,
        "atomic fold diverged from sequential merge: {:?} vs {:?}",
        out.stats,
        sequential_fold
    );

    if tracer.enabled() {
        let mut events: Vec<(u64, TraceEvent)> = Vec::new();
        for sink in sinks {
            events.extend(sink.events.into_inner().unwrap_or_else(|e| e.into_inner()));
        }
        events.sort_by_key(|&(tag, _)| tag);
        for (_, event) in events {
            tracer.event(move || event);
        }
    }

    out.sort();
    (out, failure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::NeighborPair;

    fn pair(r: u64, s: u64, d: f64) -> NeighborPair {
        NeighborPair {
            r_oid: r,
            s_oid: s,
            dist: d,
        }
    }

    #[test]
    fn merges_results_canonically_and_folds_stats() {
        for threads in [1usize, 2, 3, 8] {
            let seeds: Vec<u64> = (0..37).collect();
            let (out, err) = run_workers(threads, seeds, Tracer::disabled(), |h| {
                let mut out = AnnOutput::default();
                while let Some(unit) = h.pop() {
                    out.results.push(pair(unit, unit + 1, unit as f64));
                    out.stats.distance_computations += 1;
                    h.complete();
                }
                (out, Ok(()))
            });
            assert!(err.is_none());
            assert_eq!(out.results.len(), 37, "threads={threads}");
            assert_eq!(out.stats.distance_computations, 37);
            let oids: Vec<u64> = out.results.iter().map(|p| p.r_oid).collect();
            let mut sorted = oids.clone();
            sorted.sort_unstable();
            assert_eq!(oids, sorted, "canonical order at threads={threads}");
        }
    }

    #[test]
    fn worker_pushed_children_are_processed() {
        // Each seed < 8 fans out two children; count total units handled.
        let (out, err) = run_workers(4, vec![1u64], Tracer::disabled(), |h| {
            let mut out = AnnOutput::default();
            while let Some(unit) = h.pop() {
                if unit < 8 {
                    h.push(unit * 2);
                    h.push(unit * 2 + 1);
                }
                out.stats.enqueued += 1;
                h.complete();
            }
            (out, Ok(()))
        });
        assert!(err.is_none());
        assert_eq!(out.stats.enqueued, 15, "full binary fan-out 1..=15");
    }

    #[test]
    fn first_error_aborts_promptly_and_keeps_partial_stats() {
        let (out, err) = run_workers(3, (0..1000u64).collect(), Tracer::disabled(), |h| {
            let mut out = AnnOutput::default();
            let mut status = Ok(());
            while let Some(unit) = h.pop() {
                out.stats.enqueued += 1;
                h.complete();
                if unit == 5 {
                    status = Err(QueryError::Cancelled);
                    break;
                }
            }
            (out, status)
        });
        assert!(matches!(err, Some(QueryError::Cancelled)));
        assert!(
            out.stats.enqueued < 1000,
            "abort drained the pool early: {}",
            out.stats.enqueued
        );
    }

    #[test]
    fn worker_panic_propagates_instead_of_hanging() {
        // Before the unwind guard, a panicking worker left its popped
        // morsel in-flight forever: siblings waited on the counter and
        // run_workers never returned. Now the pool aborts, siblings
        // drain, and the panic re-raises on the calling thread.
        let caught = std::panic::catch_unwind(|| {
            run_workers(4, (0..1000u64).collect(), Tracer::disabled(), |h| {
                let mut out = AnnOutput::default();
                while let Some(unit) = h.pop() {
                    if unit == 3 {
                        panic!("injected worker panic");
                    }
                    out.stats.enqueued += 1;
                    h.complete();
                }
                (out, Ok(()))
            })
        });
        let payload = caught.expect_err("panic must propagate, not hang");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "injected worker panic");
    }

    #[test]
    fn trace_events_replay_in_acquisition_order() {
        use crate::trace::RecordingSink;
        let rec = RecordingSink::new();
        let tracer = Tracer::new(&rec);
        let (_, err) = run_workers(2, vec![0u64, 1, 2, 3], tracer, |h| {
            let out = AnnOutput::default();
            while let Some(unit) = h.pop() {
                h.tracer().event(|| TraceEvent::LpqRetired {
                    enqueued: unit + 1,
                    filtered: 0,
                    high_water: 1,
                });
                h.complete();
            }
            (out, Ok(()))
        });
        assert!(err.is_none());
        let report = rec.report("par-test");
        assert_eq!(report.lpq.retired, 4, "all worker events reached the sink");
        assert_eq!(report.lpq.enqueued, 1 + 2 + 3 + 4);
    }
}
