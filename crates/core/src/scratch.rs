//! [`QueryScratch`] — a per-thread arena of reusable query buffers.
//!
//! Every algorithm in this crate used to allocate its working memory
//! per query (LPQ entry vectors in MBA, best-first heaps in kNN/MNN/BNN,
//! per-point k-best heaps in BNN/HNN, visit stacks, and the distance
//! buffers the batched kernels of [`ann_geom::kernels`] write into).
//! `QueryScratch` pools those buffers so a steady stream of queries
//! re-uses the same allocations: after a warm-up query every pool has
//! reached its high-water capacity and subsequent queries perform no
//! heap allocation from the pooled paths.
//!
//! # Lifecycle
//!
//! Buffers are checked out with `take_*` (popping a parked buffer, or
//! allocating an empty one the first time) and checked back in with
//! `put_*`, which clears the contents but keeps the capacity. The arena
//! is deliberately not thread-safe: parallel MBA workers each own one.
//! The legacy entrypoints (`mba`, `bnn`, ...) create a transient arena
//! internally; the `*_scratch` variants accept a caller-owned arena for
//! allocation-free steady state.
//!
//! # Observability
//!
//! [`footprint_bytes`](QueryScratch::footprint_bytes) reports the total
//! capacity currently *parked* in the arena. Because capacities only
//! ever grow, a stable footprint across repeated identical queries
//! proves the steady state reallocates nothing — that is exactly what
//! the reuse test in `crates/core/tests/scratch_reuse.rs` asserts.

use crate::lpq::{Lpq, QueuedEntry};
use crate::node::Entry;
use ann_store::PageId;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::mem::size_of;

/// Min-heap item for best-first index descents (kNN and MNN): popped in
/// ascending `(MIND, nodes-before-objects, page/oid)` order. A child's
/// MIND never undercuts its parent's, so popping tied nodes first
/// guarantees every object at distance `d` is in the heap before any tied
/// object is emitted — equal-distance hits then surface in the canonical
/// smaller-oid-first order.
#[derive(Clone, Copy, Debug)]
pub struct BestFirstItem<const D: usize> {
    /// Squared `MINMINDIST` to the query — the pop priority.
    pub mind_sq: f64,
    /// Squared pruning-metric upper bound.
    pub maxd_sq: f64,
    /// The queued target-index entry.
    pub entry: Entry<D>,
}

impl<const D: usize> BestFirstItem<D> {
    #[inline]
    fn key(&self) -> (f64, u8, u64) {
        match self.entry {
            Entry::Node(n) => (self.mind_sq, 0, u64::from(n.page)),
            Entry::Object(o) => (self.mind_sq, 1, o.oid),
        }
    }
}

impl<const D: usize> PartialEq for BestFirstItem<D> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<const D: usize> Eq for BestFirstItem<D> {}
impl<const D: usize> PartialOrd for BestFirstItem<D> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize> Ord for BestFirstItem<D> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need the smallest key.
        other
            .key()
            .partial_cmp(&self.key())
            .expect("distances are finite")
    }
}

/// Min-heap item for BNN's group traversal: popped in ascending `MIND`
/// order with ties left to the heap (exactly the ordering BNN has always
/// used — changing it would change the baseline's counter trajectory).
#[derive(Clone, Copy, Debug)]
pub struct GroupHeapItem<const D: usize> {
    /// Squared `MINMINDIST(group MBR, entry)` — the pop priority.
    pub mind_sq: f64,
    /// Squared pruning-metric upper bound.
    pub maxd_sq: f64,
    /// The queued target-index entry.
    pub entry: Entry<D>,
}

impl<const D: usize> PartialEq for GroupHeapItem<D> {
    fn eq(&self, other: &Self) -> bool {
        self.mind_sq == other.mind_sq
    }
}
impl<const D: usize> Eq for GroupHeapItem<D> {}
impl<const D: usize> PartialOrd for GroupHeapItem<D> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize> Ord for GroupHeapItem<D> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .mind_sq
            .partial_cmp(&self.mind_sq)
            .expect("distances are finite")
    }
}

/// Max-heap entry of a per-point k-best candidate list (BNN and HNN):
/// for equal distances the larger oid is "greater" (evicted first),
/// matching the brute-force tie-break of keeping the smaller oid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KBest {
    /// Squared distance of the candidate.
    pub dist_sq: f64,
    /// The candidate's object id on the `S` side.
    pub s_oid: u64,
}
impl Eq for KBest {}
impl PartialOrd for KBest {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for KBest {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist_sq
            .partial_cmp(&other.dist_sq)
            .expect("finite")
            .then(self.s_oid.cmp(&other.s_oid))
    }
}

/// The arena. See the module docs for the lifecycle contract.
#[derive(Debug, Default)]
pub struct QueryScratch<const D: usize> {
    f64_bufs: Vec<Vec<f64>>,
    entry_bufs: Vec<Vec<QueuedEntry<D>>>,
    lpq_lists: Vec<Vec<Lpq<D>>>,
    lpq_queues: Vec<VecDeque<Lpq<D>>>,
    page_stacks: Vec<Vec<PageId>>,
    hint_bufs: Vec<Vec<(PageId, u32)>>,
    best_first_bufs: Vec<Vec<BestFirstItem<D>>>,
    group_heap_bufs: Vec<Vec<GroupHeapItem<D>>>,
    kbest_bufs: Vec<Vec<KBest>>,
}

fn pool_bytes<T>(pool: &[Vec<T>]) -> usize {
    pool.iter().map(|v| v.capacity() * size_of::<T>()).sum()
}

impl<const D: usize> QueryScratch<D> {
    /// An empty arena; pools fill lazily as buffers are returned.
    pub fn new() -> Self {
        Self::default()
    }

    /// A distance buffer for the batched kernels.
    pub fn take_f64(&mut self) -> Vec<f64> {
        self.f64_bufs.pop().unwrap_or_default()
    }

    /// Returns a distance buffer to the pool.
    pub fn put_f64(&mut self, mut buf: Vec<f64>) {
        buf.clear();
        self.f64_bufs.push(buf);
    }

    /// Backing storage for an LPQ (pass to [`Lpq::new_in`]).
    pub fn take_entries(&mut self) -> Vec<QueuedEntry<D>> {
        self.entry_bufs.pop().unwrap_or_default()
    }

    /// Returns LPQ storage (from [`Lpq::into_storage`]) to the pool.
    pub fn put_entries(&mut self, mut buf: Vec<QueuedEntry<D>>) {
        buf.clear();
        self.entry_bufs.push(buf);
    }

    /// A child-LPQ list for MBA's Expand stage.
    pub fn take_lpq_list(&mut self) -> Vec<Lpq<D>> {
        self.lpq_lists.pop().unwrap_or_default()
    }

    /// Returns a (drained) child-LPQ list to the pool.
    pub fn put_lpq_list(&mut self, mut list: Vec<Lpq<D>>) {
        list.clear();
        self.lpq_lists.push(list);
    }

    /// A traversal queue of LPQs for MBA's depth-/breadth-first loops.
    pub fn take_lpq_queue(&mut self) -> VecDeque<Lpq<D>> {
        self.lpq_queues.pop().unwrap_or_default()
    }

    /// Returns a (drained) LPQ traversal queue to the pool.
    pub fn put_lpq_queue(&mut self, mut queue: VecDeque<Lpq<D>>) {
        queue.clear();
        self.lpq_queues.push(queue);
    }

    /// A page-id visit stack (index walks).
    pub fn take_pages(&mut self) -> Vec<PageId> {
        self.page_stacks.pop().unwrap_or_default()
    }

    /// Returns a page-id visit stack to the pool.
    pub fn put_pages(&mut self, mut stack: Vec<PageId>) {
        stack.clear();
        self.page_stacks.push(stack);
    }

    /// A `(page, priority)` hint buffer for readahead submission
    /// ([`crate::readahead`]).
    pub fn take_hints(&mut self) -> Vec<(PageId, u32)> {
        self.hint_bufs.pop().unwrap_or_default()
    }

    /// Returns a readahead hint buffer to the pool.
    pub fn put_hints(&mut self, mut buf: Vec<(PageId, u32)>) {
        buf.clear();
        self.hint_bufs.push(buf);
    }

    /// A best-first heap for kNN/MNN descents. An empty `Vec` heapifies
    /// trivially, so this preserves the parked buffer's capacity.
    pub fn take_best_first(&mut self) -> BinaryHeap<BestFirstItem<D>> {
        BinaryHeap::from(self.best_first_bufs.pop().unwrap_or_default())
    }

    /// Returns a best-first heap's backing storage to the pool.
    pub fn put_best_first(&mut self, heap: BinaryHeap<BestFirstItem<D>>) {
        let mut buf = heap.into_vec();
        buf.clear();
        self.best_first_bufs.push(buf);
    }

    /// A group-traversal heap for BNN.
    pub fn take_group_heap(&mut self) -> BinaryHeap<GroupHeapItem<D>> {
        BinaryHeap::from(self.group_heap_bufs.pop().unwrap_or_default())
    }

    /// Returns a BNN group heap's backing storage to the pool.
    pub fn put_group_heap(&mut self, heap: BinaryHeap<GroupHeapItem<D>>) {
        let mut buf = heap.into_vec();
        buf.clear();
        self.group_heap_bufs.push(buf);
    }

    /// A per-point k-best heap for BNN/HNN.
    pub fn take_kbest(&mut self) -> BinaryHeap<KBest> {
        BinaryHeap::from(self.kbest_bufs.pop().unwrap_or_default())
    }

    /// Returns a k-best heap's backing storage to the pool.
    pub fn put_kbest(&mut self, heap: BinaryHeap<KBest>) {
        let mut buf = heap.into_vec();
        buf.clear();
        self.kbest_bufs.push(buf);
    }

    /// Total bytes of capacity currently parked in the arena (checked-out
    /// buffers are not counted — return everything before comparing).
    /// Capacities never shrink, so a stable footprint across repeated
    /// identical queries proves the steady state allocates nothing new.
    pub fn footprint_bytes(&self) -> usize {
        pool_bytes(&self.f64_bufs)
            + pool_bytes(&self.entry_bufs)
            + self
                .lpq_lists
                .iter()
                .map(|v| v.capacity() * size_of::<Lpq<D>>())
                .sum::<usize>()
            + self
                .lpq_queues
                .iter()
                .map(|q| q.capacity() * size_of::<Lpq<D>>())
                .sum::<usize>()
            + pool_bytes(&self.page_stacks)
            + pool_bytes(&self.hint_bufs)
            + pool_bytes(&self.best_first_bufs)
            + pool_bytes(&self.group_heap_bufs)
            + pool_bytes(&self.kbest_bufs)
    }

    /// Number of buffers currently parked across all pools.
    pub fn parked(&self) -> usize {
        self.f64_bufs.len()
            + self.entry_bufs.len()
            + self.lpq_lists.len()
            + self.lpq_queues.len()
            + self.page_stacks.len()
            + self.hint_bufs.len()
            + self.best_first_bufs.len()
            + self.group_heap_bufs.len()
            + self.kbest_bufs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_round_trip_with_capacity() {
        let mut s: QueryScratch<2> = QueryScratch::new();
        let mut b = s.take_f64();
        assert_eq!(b.capacity(), 0);
        b.extend_from_slice(&[1.0; 100]);
        s.put_f64(b);
        let b = s.take_f64();
        assert!(b.is_empty(), "returned buffers come back cleared");
        assert!(b.capacity() >= 100, "…but keep their capacity");
        s.put_f64(b);
        assert_eq!(s.parked(), 1);
    }

    #[test]
    fn heaps_keep_backing_capacity() {
        let mut s: QueryScratch<2> = QueryScratch::new();
        let mut h = s.take_kbest();
        for i in 0..50 {
            h.push(KBest {
                dist_sq: i as f64,
                s_oid: i,
            });
        }
        s.put_kbest(h);
        let before = s.footprint_bytes();
        assert!(before >= 50 * size_of::<KBest>());
        let h = s.take_kbest();
        assert!(h.is_empty());
        s.put_kbest(h);
        assert_eq!(s.footprint_bytes(), before, "no growth on reuse");
    }

    #[test]
    fn footprint_counts_only_parked_buffers() {
        let mut s: QueryScratch<2> = QueryScratch::new();
        let mut b = s.take_f64();
        b.resize(32, 0.0);
        assert_eq!(s.footprint_bytes(), 0, "checked-out buffers don't count");
        s.put_f64(b);
        assert!(s.footprint_bytes() >= 32 * size_of::<f64>());
    }
}
