//! Zero-dependency query-execution tracing.
//!
//! The algorithms in this crate are instrumented against a run-time
//! [`TraceSink`]. A [`Tracer`] is a `Copy` handle that is either *enabled*
//! (wraps a `&dyn TraceSink`) or *disabled* (`None`); every instrumentation
//! site is guarded so that a disabled tracer performs no work at all — no
//! closures run, no allocations happen, no counters move. Disabled-tracer
//! runs are therefore decision- and counter-identical to the uninstrumented
//! code (the equivalence suite asserts this).
//!
//! Two kinds of signal flow into a sink:
//!
//! * **Spans** — coarse phases of a query ([`Phase`]): enter/exit pairs,
//!   with the buffer-pool I/O delta over the span handed to the sink at
//!   exit. The sink supplies its own wall clock, so the algorithms never
//!   touch `Instant` themselves.
//! * **Events** — typed observations ([`TraceEvent`]): node expansions
//!   (from which a sink infers per-level histograms), prune tallies by
//!   reason and metric, LPQ lifecycle summaries, BNN batch sizes, GORDER
//!   block-scheduling decisions, and bulk-build level completions.
//!
//! [`RecordingSink`] is the built-in aggregating sink: bounded memory
//! (tallies, not an event log), thread-safe, and able to render a
//! structured [`ExecutionReport`] serializable to JSON without any
//! third-party dependency. The bench `figures --trace DIR` mode writes one
//! such report per run.

use ann_store::{IoSnapshot, PageId};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Which of the two joined sets an index-side observation belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Side {
    /// The query set R (each of whose objects receives neighbors).
    R,
    /// The target set S (whose objects are the neighbor candidates).
    S,
}

impl Side {
    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Side::R => "r",
            Side::S => "s",
        }
    }
}

/// A coarse phase of query execution, used as the span label.
///
/// Variant order is the order phases appear in an [`ExecutionReport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Index or grid construction (bulk build, HNN grid, BNN ordering
    /// preparation).
    Build,
    /// GORDER's PCA transform of both point sets.
    Pca,
    /// Space-ordering sort (GORDER grid-order, BNN Hilbert sort).
    Sort,
    /// Serial seeding of the parallel work queue (`mba_parallel`).
    Seed,
    /// The main join / traversal loop.
    Join,
    /// The whole query, from entry to returning results.
    Query,
}

impl Phase {
    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Build => "build",
            Phase::Pca => "pca",
            Phase::Sort => "sort",
            Phase::Seed => "seed",
            Phase::Join => "join",
            Phase::Query => "query",
        }
    }
}

/// Why a candidate (entry, node, or block) was discarded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PruneReason {
    /// Rejected on first contact: MINDIST already above the LPQ bound
    /// (the Expand stage's probe check).
    OnProbe,
    /// Evicted from a queue tail after a better candidate tightened the
    /// bound (the Filter stage).
    InQueue,
    /// A parent's whole child set was rejected against an object queue, so
    /// the object was not propagated to any child (bi-directional
    /// expansion's parent-level rejection).
    ParentReject,
    /// A best-first heap terminated because its next candidate's MINDIST
    /// reached the current kNN bound (BNN / MNN / kNN cutoff).
    HeapCutoff,
    /// A GORDER inner block was skipped because its MINMINDIST to the
    /// outer block exceeded the block's pruning bound.
    BlockSkip,
    /// An HNN grid ring was not visited because nearer rings already
    /// satisfied the kNN bound.
    RingCutoff,
}

impl PruneReason {
    /// Stable snake_case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            PruneReason::OnProbe => "on_probe",
            PruneReason::InQueue => "in_queue",
            PruneReason::ParentReject => "parent_reject",
            PruneReason::HeapCutoff => "heap_cutoff",
            PruneReason::BlockSkip => "block_skip",
            PruneReason::RingCutoff => "ring_cutoff",
        }
    }
}

/// A typed observation delivered to a [`TraceSink`].
///
/// Events are aggregates or per-node/per-block records — never per-point —
/// so a traced run stays within a small constant factor of the untraced
/// one.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// A traversal is starting from this root page. Seeds the sink's
    /// page-to-level inference (the root is level 0).
    Root {
        /// Which tree.
        side: Side,
        /// The root node's first page.
        page: PageId,
    },
    /// An index node was expanded (its entries enumerated). `children`
    /// lists the child *node* pages (empty for leaves) so the sink can
    /// assign them `level + 1`; `objects` counts object entries.
    NodeExpanded {
        /// Which tree.
        side: Side,
        /// The expanded node's first page.
        page: PageId,
        /// First pages of the child nodes, in entry order.
        children: Vec<PageId>,
        /// Object entries held directly by this node.
        objects: u32,
    },
    /// `count` candidates were discarded for `reason` under `metric`
    /// (a [`ann_geom::PruneMetric::NAME`] or `"euclidean"` for exact
    /// cutoffs).
    Pruned {
        /// The pruning metric in effect.
        metric: &'static str,
        /// The discard site.
        reason: PruneReason,
        /// How many candidates the site discarded (batched per call
        /// site, not one event per candidate).
        count: u64,
    },
    /// One object's Local Priority Queue was retired (its kNN satisfied
    /// or its queue exhausted).
    LpqRetired {
        /// Entries the queue ever accepted.
        enqueued: u64,
        /// Entries the Filter stage evicted from its tail.
        filtered: u64,
        /// The queue's length high-water mark.
        high_water: u32,
    },
    /// One BNN batch (a Hilbert-contiguous group) completed.
    BnnBatch {
        /// Points in the batch.
        size: u32,
        /// Heap pops (node or object) the batch's best-first search made.
        heap_pops: u64,
    },
    /// One GORDER outer block's schedule was executed.
    GorderBlock {
        /// Outer block ordinal.
        outer: u32,
        /// Inner blocks actually joined.
        scanned: u32,
        /// Inner blocks pruned off the schedule tail.
        skipped: u32,
    },
    /// One level of a bulk build finished (leaves are level 0).
    IndexLevelBuilt {
        /// Which tree is being built.
        side: Side,
        /// Tree level, counting up from the leaves.
        level: u32,
        /// Nodes the level contains.
        nodes: u64,
    },
    /// The query aborted instead of completing: cancellation, deadline,
    /// budget exhaustion, or a storage failure that survived the retry
    /// policy. Emitted once by the traversal entrypoint, after closing
    /// its open spans.
    QueryAborted {
        /// Stable abort label ([`crate::QueryError::reason`]).
        reason: &'static str,
        /// The phase the traversal was in when it aborted.
        phase: &'static str,
    },
}

/// Receiver of spans and events. Implementations must be cheap and
/// thread-safe: `mba_parallel` workers share one sink.
///
/// All methods default to no-ops so a sink only implements what it needs.
pub trait TraceSink: Send + Sync {
    /// A [`Phase`] span was entered.
    fn span_enter(&self, _phase: Phase) {}
    /// A [`Phase`] span was exited; `io` is the buffer-pool counter delta
    /// over the span (all-zero for poolless phases).
    fn span_exit(&self, _phase: Phase, _io: IoSnapshot) {}
    /// A typed observation.
    fn event(&self, _event: &TraceEvent) {}
}

/// A sink that ignores everything. Useful for overhead measurements where
/// the *enabled* path must run but nothing should be retained.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {}

/// A `Copy` handle threading an optional [`TraceSink`] through a query.
///
/// Every helper takes closures for anything that costs work (building a
/// child-page list, snapshotting pool counters) and guarantees the closure
/// never runs when the tracer is disabled.
#[derive(Clone, Copy, Default)]
pub struct Tracer<'a> {
    sink: Option<&'a dyn TraceSink>,
}

impl<'a> Tracer<'a> {
    /// A tracer delivering to `sink`.
    pub fn new(sink: &'a dyn TraceSink) -> Self {
        Tracer { sink: Some(sink) }
    }

    /// The disabled tracer: every operation is a no-op.
    pub const fn disabled() -> Self {
        Tracer { sink: None }
    }

    /// Whether a sink is attached. Instrumentation that must tally
    /// locally (e.g. per-queue counters) guards on this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Delivers `make()` to the sink; `make` never runs when disabled.
    #[inline]
    pub fn event(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.sink {
            sink.event(&make());
        }
    }

    /// Emits a [`TraceEvent::NodeExpanded`] for a node whose entry slice
    /// is `entries`. Builds nothing when disabled.
    #[inline]
    pub fn node_expanded<const D: usize>(
        &self,
        side: Side,
        page: PageId,
        entries: &[crate::node::Entry<D>],
    ) {
        if let Some(sink) = self.sink {
            let mut children = Vec::new();
            let mut objects = 0u32;
            for e in entries {
                match e {
                    crate::node::Entry::Node(n) => children.push(n.page),
                    crate::node::Entry::Object(_) => objects += 1,
                }
            }
            sink.event(&TraceEvent::NodeExpanded {
                side,
                page,
                children,
                objects,
            });
        }
    }

    /// Enters a `phase` span. Returns the enter-time I/O snapshot (taken
    /// via `io`) to be handed back to [`span_exit`](Self::span_exit);
    /// returns `None` — without calling `io` — when disabled.
    #[inline]
    pub fn span_enter(&self, phase: Phase, io: impl FnOnce() -> IoSnapshot) -> Option<IoSnapshot> {
        let sink = self.sink?;
        let at_enter = io();
        sink.span_enter(phase);
        Some(at_enter)
    }

    /// Exits a `phase` span entered with the matching
    /// [`span_enter`](Self::span_enter) token, reporting the I/O delta
    /// over the span. No-op (and `io` never runs) when disabled.
    #[inline]
    pub fn span_exit(
        &self,
        phase: Phase,
        entered: Option<IoSnapshot>,
        io: impl FnOnce() -> IoSnapshot,
    ) {
        if let Some(sink) = self.sink {
            let delta = match entered {
                Some(at_enter) => io().since(&at_enter),
                None => IoSnapshot::default(),
            };
            sink.span_exit(phase, delta);
        }
    }
}

impl std::fmt::Debug for Tracer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// Per-phase aggregate kept by [`RecordingSink`].
#[derive(Debug, Default, Clone, Copy)]
struct PhaseAgg {
    wall_seconds: f64,
    enters: u64,
    exits: u64,
    io: IoSnapshot,
}

/// Mutable state behind the [`RecordingSink`] mutex.
#[derive(Debug, Default)]
struct RecState {
    open: Vec<(Phase, Instant)>,
    phases: BTreeMap<Phase, PhaseAgg>,
    /// Page -> inferred tree level (root = 0), per side.
    page_level: BTreeMap<(Side, PageId), u32>,
    /// (side, level) -> (expansions, objects enumerated).
    levels: BTreeMap<(Side, u32), (u64, u64)>,
    prunes: BTreeMap<(&'static str, PruneReason), u64>,
    lpq_retired: u64,
    lpq_enqueued: u64,
    lpq_filtered: u64,
    lpq_max_high_water: u32,
    bnn_batches: u64,
    bnn_total_size: u64,
    bnn_min_size: u32,
    bnn_max_size: u32,
    bnn_heap_pops: u64,
    gorder_outer_blocks: u64,
    gorder_scanned: u64,
    gorder_skipped: u64,
    build_levels: BTreeMap<(Side, u32), u64>,
    aborts: Vec<AbortReport>,
}

/// The built-in aggregating sink.
///
/// Keeps tallies — per-phase wall time and I/O deltas, per-level expansion
/// histograms (levels inferred from [`TraceEvent::Root`] +
/// [`TraceEvent::NodeExpanded`] parent-before-child ordering), prune
/// counts by `(metric, reason)`, LPQ / batch / block summaries — in
/// bounded memory: it never logs raw events. Thread-safe behind one
/// mutex; tracing is off the measured path, so contention is acceptable.
#[derive(Debug, Default)]
pub struct RecordingSink {
    state: Mutex<RecState>,
}

impl RecordingSink {
    /// A fresh sink with empty tallies.
    pub fn new() -> Self {
        Self::default()
    }

    /// Spans currently open (entered, not yet exited). Zero after a
    /// well-formed query.
    pub fn open_spans(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).open.len()
    }

    /// Total span enters and exits seen, for balance checks.
    pub fn span_counts(&self) -> (u64, u64) {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let enters = st.phases.values().map(|a| a.enters).sum();
        let exits = st.phases.values().map(|a| a.exits).sum();
        (enters, exits)
    }

    /// Renders everything recorded so far as an [`ExecutionReport`]
    /// labeled `label`. Does not reset the sink.
    pub fn report(&self, label: &str) -> ExecutionReport {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        ExecutionReport {
            label: label.to_string(),
            phases: st
                .phases
                .iter()
                .map(|(p, a)| PhaseReport {
                    phase: p.name(),
                    wall_seconds: a.wall_seconds,
                    enters: a.enters,
                    exits: a.exits,
                    io: a.io,
                })
                .collect(),
            levels: st
                .levels
                .iter()
                .map(|(&(side, level), &(expansions, objects))| LevelReport {
                    side: side.name(),
                    level,
                    expansions,
                    objects,
                })
                .collect(),
            prunes: st
                .prunes
                .iter()
                .map(|(&(metric, reason), &count)| PruneReport {
                    metric,
                    reason: reason.name(),
                    count,
                })
                .collect(),
            lpq: LpqReport {
                retired: st.lpq_retired,
                enqueued: st.lpq_enqueued,
                filtered: st.lpq_filtered,
                max_high_water: st.lpq_max_high_water,
            },
            bnn: BatchReport {
                batches: st.bnn_batches,
                total_size: st.bnn_total_size,
                min_size: if st.bnn_batches == 0 { 0 } else { st.bnn_min_size },
                max_size: st.bnn_max_size,
                heap_pops: st.bnn_heap_pops,
            },
            gorder: BlockReport {
                outer_blocks: st.gorder_outer_blocks,
                inner_scanned: st.gorder_scanned,
                inner_skipped: st.gorder_skipped,
            },
            build_levels: st
                .build_levels
                .iter()
                .map(|(&(side, level), &nodes)| BuildLevelReport {
                    side: side.name(),
                    level,
                    nodes,
                })
                .collect(),
            aborts: st.aborts.clone(),
        }
    }
}

impl TraceSink for RecordingSink {
    fn span_enter(&self, phase: Phase) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.open.push((phase, Instant::now()));
        st.phases.entry(phase).or_default().enters += 1;
    }

    fn span_exit(&self, phase: Phase, io: IoSnapshot) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        // Close the innermost open span of this phase; tolerate (but
        // record) an unbalanced exit so tests can detect it.
        let wall = st
            .open
            .iter()
            .rposition(|(p, _)| *p == phase)
            .map(|i| st.open.remove(i).1.elapsed().as_secs_f64())
            .unwrap_or(0.0);
        let agg = st.phases.entry(phase).or_default();
        agg.exits += 1;
        agg.wall_seconds += wall;
        agg.io = agg.io.merge(&io);
    }

    fn event(&self, event: &TraceEvent) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match event {
            TraceEvent::Root { side, page } => {
                st.page_level.insert((*side, *page), 0);
            }
            TraceEvent::NodeExpanded {
                side,
                page,
                children,
                objects,
            } => {
                let level = st.page_level.get(&(*side, *page)).copied().unwrap_or(0);
                let slot = st.levels.entry((*side, level)).or_insert((0, 0));
                slot.0 += 1;
                slot.1 += u64::from(*objects);
                for &child in children {
                    st.page_level.insert((*side, child), level + 1);
                }
            }
            TraceEvent::Pruned {
                metric,
                reason,
                count,
            } => {
                *st.prunes.entry((metric, *reason)).or_insert(0) += count;
            }
            TraceEvent::LpqRetired {
                enqueued,
                filtered,
                high_water,
            } => {
                st.lpq_retired += 1;
                st.lpq_enqueued += enqueued;
                st.lpq_filtered += filtered;
                st.lpq_max_high_water = st.lpq_max_high_water.max(*high_water);
            }
            TraceEvent::BnnBatch { size, heap_pops } => {
                if st.bnn_batches == 0 {
                    st.bnn_min_size = *size;
                    st.bnn_max_size = *size;
                } else {
                    st.bnn_min_size = st.bnn_min_size.min(*size);
                    st.bnn_max_size = st.bnn_max_size.max(*size);
                }
                st.bnn_batches += 1;
                st.bnn_total_size += u64::from(*size);
                st.bnn_heap_pops += heap_pops;
            }
            TraceEvent::GorderBlock {
                outer: _,
                scanned,
                skipped,
            } => {
                st.gorder_outer_blocks += 1;
                st.gorder_scanned += u64::from(*scanned);
                st.gorder_skipped += u64::from(*skipped);
            }
            TraceEvent::IndexLevelBuilt { side, level, nodes } => {
                *st.build_levels.entry((*side, *level)).or_insert(0) += nodes;
            }
            TraceEvent::QueryAborted { reason, phase } => {
                st.aborts.push(AbortReport { reason, phase });
            }
        }
    }
}

/// One phase row of an [`ExecutionReport`].
#[derive(Clone, Debug)]
pub struct PhaseReport {
    /// Phase name ([`Phase::name`]).
    pub phase: &'static str,
    /// Total wall-clock seconds across this phase's spans.
    pub wall_seconds: f64,
    /// Spans entered.
    pub enters: u64,
    /// Spans exited.
    pub exits: u64,
    /// Buffer-pool counter delta summed over this phase's spans.
    pub io: IoSnapshot,
}

/// Per-level traversal tallies (root is level 0).
#[derive(Clone, Debug)]
pub struct LevelReport {
    /// `"r"` or `"s"`.
    pub side: &'static str,
    /// Tree level, root = 0.
    pub level: u32,
    /// Nodes of this level expanded.
    pub expansions: u64,
    /// Object entries enumerated while expanding this level.
    pub objects: u64,
}

/// Prune tallies for one `(metric, reason)` pair.
#[derive(Clone, Debug)]
pub struct PruneReport {
    /// Pruning metric name (`"NXNDIST"`, `"MAXMAXDIST"`, `"euclidean"`).
    pub metric: &'static str,
    /// Discard-site name ([`PruneReason::name`]).
    pub reason: &'static str,
    /// Candidates discarded.
    pub count: u64,
}

/// Aggregated Local-Priority-Queue lifecycle over a run.
#[derive(Clone, Debug, Default)]
pub struct LpqReport {
    /// Queues retired.
    pub retired: u64,
    /// Entries accepted across all queues.
    pub enqueued: u64,
    /// Entries the Filter stage evicted across all queues.
    pub filtered: u64,
    /// Largest queue length any queue reached.
    pub max_high_water: u32,
}

/// Aggregated BNN batch shape over a run (all-zero for other methods).
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Batches executed.
    pub batches: u64,
    /// Points across all batches.
    pub total_size: u64,
    /// Smallest batch.
    pub min_size: u32,
    /// Largest batch.
    pub max_size: u32,
    /// Best-first heap pops across all batches.
    pub heap_pops: u64,
}

/// Aggregated GORDER block scheduling over a run (all-zero for other
/// methods).
#[derive(Clone, Debug, Default)]
pub struct BlockReport {
    /// Outer blocks processed.
    pub outer_blocks: u64,
    /// Inner blocks joined.
    pub inner_scanned: u64,
    /// Inner blocks pruned off schedule tails.
    pub inner_skipped: u64,
}

/// One recorded query abort ([`TraceEvent::QueryAborted`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbortReport {
    /// Stable abort label ([`crate::QueryError::reason`]).
    pub reason: &'static str,
    /// The phase the traversal was in when it aborted.
    pub phase: &'static str,
}

/// Nodes written per level during a traced bulk build.
#[derive(Clone, Debug)]
pub struct BuildLevelReport {
    /// `"r"` or `"s"`.
    pub side: &'static str,
    /// Tree level counting up from the leaves (leaves = 0).
    pub level: u32,
    /// Nodes the level contains.
    pub nodes: u64,
}

/// The structured result of one traced query: per-phase wall times and
/// I/O, per-level expansion histograms, and the pruning-effectiveness
/// breakdown. Rendered by [`RecordingSink::report`], serialized by
/// [`ExecutionReport::to_json`].
#[derive(Clone, Debug)]
pub struct ExecutionReport {
    /// Caller-chosen run label (method, metric, k, workload...).
    pub label: String,
    /// One row per phase observed, in [`Phase`] order.
    pub phases: Vec<PhaseReport>,
    /// Traversal histogram rows, ordered by (side, level).
    pub levels: Vec<LevelReport>,
    /// Prune tallies, ordered by (metric, reason).
    pub prunes: Vec<PruneReport>,
    /// LPQ lifecycle aggregate.
    pub lpq: LpqReport,
    /// BNN batch aggregate.
    pub bnn: BatchReport,
    /// GORDER block aggregate.
    pub gorder: BlockReport,
    /// Bulk-build level rows, ordered by (side, level).
    pub build_levels: Vec<BuildLevelReport>,
    /// Query aborts observed, in occurrence order (empty for completed
    /// runs).
    pub aborts: Vec<AbortReport>,
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number (`null` for non-finite values).
/// `Display` for a finite f64 is the shortest string that parses back to
/// the same bits, so a JSON round-trip through this is lossless.
pub(crate) fn json_num(f: f64) -> String {
    if f.is_finite() {
        // `Display` for finite f64 is always a valid JSON number.
        let s = format!("{f}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

pub(crate) fn json_io(io: &IoSnapshot) -> String {
    format!(
        "{{\"logical_reads\":{},\"physical_reads\":{},\"physical_writes\":{},\
         \"pool_hits\":{},\"pool_misses\":{},\"evictions\":{},\"retries\":{},\
         \"checksum_failures\":{},\"lock_contention\":{},\
         \"quarantined_pages\":{},\"quarantine_hits\":{}}}",
        io.logical_reads,
        io.physical_reads,
        io.physical_writes,
        io.pool_hits,
        io.pool_misses,
        io.evictions,
        io.retries,
        io.checksum_failures,
        io.lock_contention,
        io.quarantined_pages,
        io.quarantine_hits,
    )
}

impl ExecutionReport {
    /// Serializes the report to a self-contained JSON object. Hand-rolled
    /// so the tracing layer stays dependency-free; output is deterministic
    /// for fixed tallies.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!("{{\"label\":\"{}\",", json_escape(&self.label)));

        out.push_str("\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"phase\":\"{}\",\"wall_seconds\":{},\"enters\":{},\"exits\":{},\"io\":{}}}",
                p.phase,
                json_num(p.wall_seconds),
                p.enters,
                p.exits,
                json_io(&p.io),
            ));
        }
        out.push_str("],");

        out.push_str("\"levels\":[");
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"side\":\"{}\",\"level\":{},\"expansions\":{},\"objects\":{}}}",
                l.side, l.level, l.expansions, l.objects,
            ));
        }
        out.push_str("],");

        out.push_str("\"prunes\":[");
        for (i, p) in self.prunes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"metric\":\"{}\",\"reason\":\"{}\",\"count\":{}}}",
                json_escape(p.metric),
                p.reason,
                p.count,
            ));
        }
        out.push_str("],");

        out.push_str(&format!(
            "\"lpq\":{{\"retired\":{},\"enqueued\":{},\"filtered\":{},\"max_high_water\":{}}},",
            self.lpq.retired, self.lpq.enqueued, self.lpq.filtered, self.lpq.max_high_water,
        ));
        out.push_str(&format!(
            "\"bnn\":{{\"batches\":{},\"total_size\":{},\"min_size\":{},\"max_size\":{},\
             \"heap_pops\":{}}},",
            self.bnn.batches,
            self.bnn.total_size,
            self.bnn.min_size,
            self.bnn.max_size,
            self.bnn.heap_pops,
        ));
        out.push_str(&format!(
            "\"gorder\":{{\"outer_blocks\":{},\"inner_scanned\":{},\"inner_skipped\":{}}},",
            self.gorder.outer_blocks, self.gorder.inner_scanned, self.gorder.inner_skipped,
        ));

        out.push_str("\"build_levels\":[");
        for (i, b) in self.build_levels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"side\":\"{}\",\"level\":{},\"nodes\":{}}}",
                b.side, b.level, b.nodes,
            ));
        }
        out.push_str("],");

        out.push_str("\"aborts\":[");
        for (i, a) in self.aborts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"reason\":\"{}\",\"phase\":\"{}\"}}",
                a.reason, a.phase,
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_runs_no_closures() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.event(|| unreachable!("event closure ran on a disabled tracer"));
        let tok = t.span_enter(Phase::Query, || unreachable!("enter io closure ran"));
        assert!(tok.is_none());
        t.span_exit(Phase::Query, tok, || unreachable!("exit io closure ran"));
    }

    #[test]
    fn recording_sink_balances_spans_and_times_them() {
        let sink = RecordingSink::new();
        let t = Tracer::new(&sink);
        assert!(t.enabled());
        let q = t.span_enter(Phase::Query, IoSnapshot::default);
        let j = t.span_enter(Phase::Join, IoSnapshot::default);
        assert_eq!(sink.open_spans(), 2);
        t.span_exit(Phase::Join, j, IoSnapshot::default);
        t.span_exit(Phase::Query, q, IoSnapshot::default);
        assert_eq!(sink.open_spans(), 0);
        let (enters, exits) = sink.span_counts();
        assert_eq!(enters, 2);
        assert_eq!(exits, 2);
        let report = sink.report("spans");
        assert_eq!(report.phases.len(), 2);
        for p in &report.phases {
            assert_eq!(p.enters, 1);
            assert_eq!(p.exits, 1);
            assert!(p.wall_seconds >= 0.0);
        }
    }

    #[test]
    fn span_io_delta_is_reported() {
        let sink = RecordingSink::new();
        let t = Tracer::new(&sink);
        let before = IoSnapshot {
            logical_reads: 10,
            pool_hits: 7,
            pool_misses: 3,
            physical_reads: 3,
            ..Default::default()
        };
        let after = IoSnapshot {
            logical_reads: 25,
            pool_hits: 20,
            pool_misses: 5,
            physical_reads: 5,
            evictions: 2,
            ..Default::default()
        };
        let tok = t.span_enter(Phase::Join, || before);
        t.span_exit(Phase::Join, tok, || after);
        let report = sink.report("io");
        let join = &report.phases[0];
        assert_eq!(join.io.logical_reads, 15);
        assert_eq!(join.io.pool_hits, 13);
        assert_eq!(join.io.evictions, 2);
    }

    #[test]
    fn level_inference_from_expansion_order() {
        let sink = RecordingSink::new();
        let t = Tracer::new(&sink);
        t.event(|| TraceEvent::Root { side: Side::R, page: 1 });
        t.event(|| TraceEvent::NodeExpanded {
            side: Side::R,
            page: 1,
            children: vec![2, 3],
            objects: 0,
        });
        t.event(|| TraceEvent::NodeExpanded {
            side: Side::R,
            page: 2,
            children: vec![],
            objects: 8,
        });
        t.event(|| TraceEvent::NodeExpanded {
            side: Side::R,
            page: 3,
            children: vec![],
            objects: 5,
        });
        // A different side with the same page numbers stays separate.
        t.event(|| TraceEvent::Root { side: Side::S, page: 1 });
        t.event(|| TraceEvent::NodeExpanded {
            side: Side::S,
            page: 1,
            children: vec![],
            objects: 2,
        });
        let report = sink.report("levels");
        assert_eq!(report.levels.len(), 3);
        let r0 = &report.levels[0];
        assert_eq!((r0.side, r0.level, r0.expansions, r0.objects), ("r", 0, 1, 0));
        let r1 = &report.levels[1];
        assert_eq!((r1.side, r1.level, r1.expansions, r1.objects), ("r", 1, 2, 13));
        let s0 = &report.levels[2];
        assert_eq!((s0.side, s0.level, s0.expansions, s0.objects), ("s", 0, 1, 2));
    }

    #[test]
    fn prune_and_lpq_and_batch_tallies() {
        let sink = RecordingSink::new();
        let t = Tracer::new(&sink);
        t.event(|| TraceEvent::Pruned {
            metric: "NXNDIST",
            reason: PruneReason::OnProbe,
            count: 4,
        });
        t.event(|| TraceEvent::Pruned {
            metric: "NXNDIST",
            reason: PruneReason::OnProbe,
            count: 6,
        });
        t.event(|| TraceEvent::Pruned {
            metric: "NXNDIST",
            reason: PruneReason::InQueue,
            count: 1,
        });
        t.event(|| TraceEvent::LpqRetired {
            enqueued: 12,
            filtered: 3,
            high_water: 7,
        });
        t.event(|| TraceEvent::LpqRetired {
            enqueued: 2,
            filtered: 0,
            high_water: 2,
        });
        t.event(|| TraceEvent::BnnBatch {
            size: 256,
            heap_pops: 40,
        });
        t.event(|| TraceEvent::BnnBatch {
            size: 100,
            heap_pops: 25,
        });
        t.event(|| TraceEvent::GorderBlock {
            outer: 0,
            scanned: 3,
            skipped: 5,
        });
        let report = sink.report("tallies");
        assert_eq!(report.prunes.len(), 2);
        let on_probe = report
            .prunes
            .iter()
            .find(|p| p.reason == "on_probe")
            .unwrap();
        assert_eq!(on_probe.count, 10);
        assert_eq!(report.lpq.retired, 2);
        assert_eq!(report.lpq.enqueued, 14);
        assert_eq!(report.lpq.filtered, 3);
        assert_eq!(report.lpq.max_high_water, 7);
        assert_eq!(report.bnn.batches, 2);
        assert_eq!(report.bnn.min_size, 100);
        assert_eq!(report.bnn.max_size, 256);
        assert_eq!(report.bnn.heap_pops, 65);
        assert_eq!(report.gorder.outer_blocks, 1);
        assert_eq!(report.gorder.inner_scanned, 3);
        assert_eq!(report.gorder.inner_skipped, 5);
    }

    #[test]
    fn json_is_well_formed() {
        let sink = RecordingSink::new();
        let t = Tracer::new(&sink);
        let tok = t.span_enter(Phase::Query, IoSnapshot::default);
        t.event(|| TraceEvent::Root { side: Side::R, page: 9 });
        t.event(|| TraceEvent::NodeExpanded {
            side: Side::R,
            page: 9,
            children: vec![],
            objects: 3,
        });
        t.event(|| TraceEvent::Pruned {
            metric: "MAXMAXDIST",
            reason: PruneReason::HeapCutoff,
            count: 2,
        });
        t.span_exit(Phase::Query, tok, IoSnapshot::default);
        let json = sink.report("a \"quoted\" label\n").to_json();
        // Structural smoke checks (no JSON parser in this crate): balanced
        // braces/brackets, escaped label, all sections present.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"label\":\"a \\\"quoted\\\" label\\n\""));
        for key in [
            "\"phases\":[",
            "\"levels\":[",
            "\"prunes\":[",
            "\"lpq\":{",
            "\"bnn\":{",
            "\"gorder\":{",
            "\"build_levels\":[",
            "\"wall_seconds\":",
            "\"heap_cutoff\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn json_num_formats() {
        assert_eq!(json_num(0.0), "0.0");
        assert_eq!(json_num(1.5), "1.5");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
    }
}
