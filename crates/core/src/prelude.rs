//! One-line import for the common case: `use ann_core::prelude::*;`.
//!
//! Brings in the unified query API ([`AnnRequest`] and friends), the
//! tracing facade, the [`SpatialIndex`] trait (needed in scope to call
//! index methods generically), and the result types every caller touches.

pub use crate::index::{collect_objects, SpatialIndex};
pub use crate::mba::{Expansion, Traversal};
pub use crate::query::{run, run_scratch, Algorithm, AnnRequest, Input, MetricChoice, NoIndex};
pub use crate::resilience::{BudgetKind, CancelToken, QueryError, QueryGuard, QueryResult};
pub use crate::stats::{AnnOutput, AnnStats, NeighborPair};
pub use ann_store::RetryPolicy;
pub use crate::trace::{ExecutionReport, RecordingSink, TraceSink, Tracer};
pub use crate::wire::{
    CollectionId, ErrorCode, QueryOutcome, QuerySpec, WireError, WIRE_SCHEMA_VERSION,
};
