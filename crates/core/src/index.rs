//! The [`SpatialIndex`] trait: what an index must expose for the ANN
//! algorithms to traverse it.

use crate::node::{read_node, DecodedNode, Entry, Node};
use crate::node_cache::NodeCache;
use ann_geom::{Mbr, Point};
use ann_store::{BufferPool, PageId, Result, StoreError};
use std::sync::Arc;

/// A disk-resident spatial index over `D`-dimensional points.
///
/// Both the MBRQT (`ann-mbrqt`) and the R*-tree (`ann-rstar`) implement
/// this; the MBA traversal, the BNN/MNN baselines and the validation
/// helpers below work against it generically — instantiating MBA over an
/// R*-tree yields the paper's RBA algorithm with no further code.
pub trait SpatialIndex<const D: usize> {
    /// The buffer pool this index reads through.
    fn pool(&self) -> &BufferPool;

    /// First page of the root node.
    fn root_page(&self) -> PageId;

    /// Number of indexed points.
    fn num_points(&self) -> u64;

    /// Tight bounding box of all indexed points ([`Mbr::empty`] when the
    /// index is empty).
    fn bounds(&self) -> Mbr<D>;

    /// Reads and decodes the node starting at `page`.
    ///
    /// The default implementation uses the shared codec in [`crate::node`];
    /// indices with bespoke layouts can override it.
    fn read_node(&self, page: PageId) -> Result<Node<D>> {
        read_node(self.pool(), page)
    }

    /// Reads the root node.
    fn read_root(&self) -> Result<Node<D>> {
        self.read_node(self.root_page())
    }

    /// The index's decoded-node cache, when it keeps one.
    ///
    /// Indices that return `Some` must either bump the cache's epoch on
    /// every structural mutation (the default, epoch-keyed scheme) or key
    /// the cache by MVCC version via [`cache_key`](Self::cache_key), so
    /// [`read_node_cached`](Self::read_node_cached) can never serve a
    /// node from a different tree state than the one being traversed.
    fn node_cache(&self) -> Option<&NodeCache<D>> {
        None
    }

    /// The invalidation key this view caches nodes under.
    ///
    /// Defaults to the node cache's current epoch (whole-cache
    /// invalidation on mutation). Snapshot views over a versioned store
    /// override this with their pinned version, so entries cached for
    /// older snapshots stay valid and shareable instead of being thrown
    /// away on every commit.
    fn cache_key(&self) -> u64 {
        self.node_cache().map_or(0, |cache| cache.epoch())
    }

    /// Reports whether `page` is already held decoded in the node cache.
    ///
    /// A cached node is served by [`read_node_cached`](Self::read_node_cached)
    /// without touching the buffer pool, so readahead hook sites skip
    /// hinting such pages: prefetching them could only waste disk reads.
    /// Indices without a node cache report `false` for every page.
    fn node_is_cached(&self, page: PageId) -> bool {
        let key = self.cache_key();
        self.node_cache()
            .is_some_and(|cache| cache.contains(key, page))
    }

    /// Reads the node starting at `page` through the decoded-node cache:
    /// a hit returns the shared decoded node — with its column-major SoA
    /// mirror for the batched kernels — without touching the buffer pool;
    /// a miss decodes via [`read_node`](Self::read_node), builds the
    /// columns, and caches the result. Falls back to a plain (uncached)
    /// read-and-decode when the index keeps no cache.
    ///
    /// The traversal hot paths (MBA/RBA, BNN, MNN, kNN, closest pairs)
    /// read through this; structural validation and collection deliberately
    /// use the uncached [`read_node`](Self::read_node) so they observe the
    /// on-disk bytes.
    fn read_node_cached(&self, page: PageId) -> Result<Arc<DecodedNode<D>>> {
        let Some(cache) = self.node_cache() else {
            return Ok(Arc::new(DecodedNode::new(self.read_node(page)?)));
        };
        // Snapshot the key before the pool read: if a mutation lands in
        // between, the insert goes under the superseded key and is
        // dropped at the cache's retired floor instead of poisoning the
        // new one.
        let key = self.cache_key();
        if let Some(node) = cache.get(key, page) {
            return Ok(node);
        }
        let node = Arc::new(DecodedNode::new(self.read_node(page)?));
        cache.insert(key, page, Arc::clone(&node));
        Ok(node)
    }
}

/// Collects every `(oid, point)` in the index by a full traversal.
/// Intended for tests and examples, not hot paths.
pub fn collect_objects<const D: usize, I: SpatialIndex<D> + ?Sized>(
    index: &I,
) -> Result<Vec<(u64, Point<D>)>> {
    let mut out = Vec::with_capacity(index.num_points() as usize);
    let mut stack = vec![index.root_page()];
    while let Some(page) = stack.pop() {
        let node = index.read_node(page)?;
        for e in &node.entries {
            match e {
                Entry::Object(o) => out.push((o.oid, o.point)),
                Entry::Node(n) => stack.push(n.page),
            }
        }
    }
    Ok(out)
}

/// Structural statistics gathered by [`validate`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TreeShape {
    /// Total nodes (internal + leaf).
    pub nodes: u64,
    /// Leaf nodes.
    pub leaves: u64,
    /// Height (a lone leaf has height 1).
    pub height: u32,
    /// Data objects found.
    pub objects: u64,
}

/// Exhaustively checks the structural invariants every index must uphold:
///
/// 1. each child entry's MBR contains its child node's MBR, and equals the
///    MBR the child node reports for itself;
/// 2. a node's MBR is the tight union of its entries;
/// 3. each child entry's `count` equals the child subtree's object count;
/// 4. every object lies inside its leaf's MBR;
/// 5. the root's count matches [`SpatialIndex::num_points`].
///
/// Returns shape statistics on success.
pub fn validate<const D: usize, I: SpatialIndex<D> + ?Sized>(index: &I) -> Result<TreeShape> {
    fn recurse<const D: usize, I: SpatialIndex<D> + ?Sized>(
        index: &I,
        page: PageId,
        shape: &mut TreeShape,
    ) -> Result<(Node<D>, u64, u32)> {
        let node = index.read_node(page)?;
        shape.nodes += 1;
        // Invariant 2: tight MBR over entries.
        let mut union = Mbr::empty();
        for e in &node.entries {
            union.expand(&e.mbr());
        }
        if !node.entries.is_empty() && union != node.mbr {
            return Err(StoreError::corrupt("node MBR is not tight over entries"));
        }
        if node.is_leaf {
            shape.leaves += 1;
            let count = node.entries.len() as u64;
            shape.objects += count;
            for e in &node.entries {
                if let Entry::Node(_) = e {
                    return Err(StoreError::corrupt("leaf holds a child entry"));
                }
                // Invariant 4 is implied by invariant 2 for leaves.
            }
            return Ok((node, count, 1));
        }
        let mut count = 0;
        let mut height = 0;
        for e in node.entries.clone() {
            let Entry::Node(child_ref) = e else {
                return Err(StoreError::corrupt("internal node holds an object"));
            };
            let (child, child_count, child_height) = recurse(index, child_ref.page, shape)?;
            // Invariant 1.
            if child.mbr != child_ref.mbr {
                return Err(StoreError::corrupt("child entry MBR mismatch"));
            }
            // Invariant 3.
            if child_count != child_ref.count {
                return Err(StoreError::corrupt("child entry count mismatch"));
            }
            count += child_count;
            height = height.max(child_height);
        }
        Ok((node, count, height + 1))
    }

    let mut shape = TreeShape::default();
    let (_, count, height) = recurse(index, index.root_page(), &mut shape)?;
    shape.height = height;
    // Invariant 5.
    if count != index.num_points() {
        return Err(StoreError::corrupt("root count != num_points"));
    }
    Ok(shape)
}
