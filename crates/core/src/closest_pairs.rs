//! **k-closest-pairs** — the distance-join relative of ANN (paper §2;
//! Corral et al., SIGMOD 2000).
//!
//! Finds the `k` globally closest `(r, s)` pairs between two indexed point
//! sets by a best-first traversal over *pairs* of index entries, ordered
//! by `MINMINDIST`. Two pruning bounds cooperate:
//!
//! * the realized bound — the `k`-th best object pair found so far;
//! * the guarantee bound — queued entry pairs are pairwise-disjoint
//!   *pair sets* (they differ in at least one subtree), and each
//!   guarantees one concrete pair within its `MAXMAXDIST`, so the `k`-th
//!   smallest queued `MAXMAXDIST` bounds the answer before any object
//!   pair has even been seen. This reuses [`crate::lpq::BoundTracker`].
//!
//! Included because the paper positions ANN within the distance-join
//! family; the implementation shares the node model and costs I/O through
//! the same buffer pool.

use crate::index::SpatialIndex;
use crate::lpq::BoundTracker;
use crate::node::Entry;
use crate::resilience::{attach_partial_stats, QueryGuard, QueryResult};
use crate::stats::{AnnOutput, NeighborPair};
use ann_geom::{max_max_dist_sq, min_min_dist_sq};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Configuration for [`closest_pairs`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClosestPairsConfig {
    /// Number of closest pairs to report.
    pub k: usize,
    /// Skip pairs whose two sides carry the same object id (self-join
    /// mode). Note that a self-join still reports both orientations of a
    /// pair of distinct points, `(a, b)` and `(b, a)`, matching the
    /// relational semantics of a join.
    pub exclude_self: bool,
}

impl Default for ClosestPairsConfig {
    fn default() -> Self {
        ClosestPairsConfig {
            k: 1,
            exclude_self: false,
        }
    }
}

struct PairItem<const D: usize> {
    mind_sq: f64,
    maxd_sq: f64,
    r: Entry<D>,
    s: Entry<D>,
}

impl<const D: usize> PartialEq for PairItem<D> {
    fn eq(&self, other: &Self) -> bool {
        self.mind_sq == other.mind_sq
    }
}
impl<const D: usize> Eq for PairItem<D> {}
impl<const D: usize> PartialOrd for PairItem<D> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize> Ord for PairItem<D> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .mind_sq
            .partial_cmp(&self.mind_sq)
            .expect("distances are finite")
    }
}

/// Max-heap item over realized pairs.
#[derive(Clone, Copy, PartialEq)]
struct Realized {
    dist_sq: f64,
    r_oid: u64,
    s_oid: u64,
}
impl Eq for Realized {}
impl PartialOrd for Realized {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Realized {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist_sq
            .partial_cmp(&other.dist_sq)
            .expect("finite")
            .then(self.r_oid.cmp(&other.r_oid))
            .then(self.s_oid.cmp(&other.s_oid))
    }
}

/// Finds the `cfg.k` closest pairs between the points of `ir` and `is`,
/// reported in ascending distance order.
pub fn closest_pairs<const D: usize, IR, IS>(
    ir: &IR,
    is: &IS,
    cfg: &ClosestPairsConfig,
) -> QueryResult<AnnOutput>
where
    IR: SpatialIndex<D>,
    IS: SpatialIndex<D>,
{
    closest_pairs_guarded(ir, is, cfg, &QueryGuard::disabled())
}

/// [`closest_pairs`] under a [`QueryGuard`], consulted before every node
/// read on either side. On abort the partially accumulated counters are
/// carried in the error; partially found pairs are discarded (the k-best
/// set is only meaningful once the heap cutoff fires).
pub fn closest_pairs_guarded<const D: usize, IR, IS>(
    ir: &IR,
    is: &IS,
    cfg: &ClosestPairsConfig,
    guard: &QueryGuard<'_>,
) -> QueryResult<AnnOutput>
where
    IR: SpatialIndex<D>,
    IS: SpatialIndex<D>,
{
    if cfg.k == 0 {
        guard.tick()?;
        return Ok(AnnOutput::default());
    }
    let mut out = AnnOutput::default();
    let io_r0 = ir.pool().stats();
    let shared_pool = std::ptr::eq(
        ir.pool() as *const _ as *const u8,
        is.pool() as *const _ as *const u8,
    );
    let io_s0 = is.pool().stats();

    let walk = (|out: &mut AnnOutput| -> QueryResult<()> {
        guard.tick()?;
        if ir.num_points() == 0 || is.num_points() == 0 {
            return Ok(());
        }
        // Guarantee soundness under self-exclusion: MAXMAXDIST bounds
        // *every* pair of a product, so any product other than a
        // same-single-point `{a}×{a}` guarantees a non-self pair within
        // its MAXMAXDIST — and those singleton self products are filtered
        // out before they are ever queued (below).
        let mut guarantee = BoundTracker::new(cfg.k, f64::INFINITY);
        let mut realized: BinaryHeap<Realized> = BinaryHeap::with_capacity(cfg.k + 1);
        let mut heap: BinaryHeap<PairItem<D>> = BinaryHeap::new();

        let r_root = Entry::Node(crate::node::NodeEntry {
            page: ir.root_page(),
            count: ir.num_points(),
            mbr: ir.bounds(),
        });
        let s_root = Entry::Node(crate::node::NodeEntry {
            page: is.root_page(),
            count: is.num_points(),
            mbr: is.bounds(),
        });
        let mind_sq = min_min_dist_sq(&ir.bounds(), &is.bounds());
        let maxd_sq = max_max_dist_sq(&ir.bounds(), &is.bounds());
        out.stats.distance_computations += 1;
        guarantee.offer(maxd_sq);
        heap.push(PairItem {
            mind_sq,
            maxd_sq,
            r: r_root,
            s: s_root,
        });
        out.stats.enqueued += 1;

        let realized_bound = |h: &BinaryHeap<Realized>| -> f64 {
            if h.len() < cfg.k {
                f64::INFINITY
            } else {
                h.peek().expect("non-empty").dist_sq
            }
        };

        while let Some(item) = heap.pop() {
            let bound = guarantee.bound_sq().min(realized_bound(&realized));
            if item.mind_sq > bound * (1.0 + crate::lpq::PRUNE_EPS) {
                break;
            }
            guarantee.remove(item.maxd_sq);
            match (item.r, item.s) {
                (Entry::Object(r), Entry::Object(s)) => {
                    if cfg.exclude_self && r.oid == s.oid {
                        continue; // the root pair of a 1-point self-join
                    }
                    // mind of two degenerate MBRs is the exact distance.
                    realized.push(Realized {
                        dist_sq: item.mind_sq,
                        r_oid: r.oid,
                        s_oid: s.oid,
                    });
                    if realized.len() > cfg.k {
                        realized.pop();
                    }
                    // No `satisfy_one` here: unlike a kNN gather, the
                    // search does not end after k emissions — later
                    // products can still yield *closer* pairs, and the
                    // realized k-th-best bound is what tightens from now
                    // on. The guarantee tracker keeps needing k live
                    // products, which stays sound (k disjoint products
                    // always guarantee k distinct pairs).
                }
                (r, s) => {
                    // Expand the side with the larger region (objects and
                    // smaller boxes stay fixed), the classic heuristic.
                    let expand_r = match (&r, &s) {
                        (Entry::Node(rn), Entry::Node(sn)) => rn.mbr.margin() >= sn.mbr.margin(),
                        (Entry::Node(_), Entry::Object(_)) => true,
                        (Entry::Object(_), Entry::Node(_)) => false,
                        _ => unreachable!("object/object handled above"),
                    };
                    let (node_page, fixed, fixed_is_r) = if expand_r {
                        let Entry::Node(rn) = r else { unreachable!() };
                        (rn.page, s, false)
                    } else {
                        let Entry::Node(sn) = s else { unreachable!() };
                        (sn.page, r, true)
                    };
                    guard.tick()?;
                    let node = if expand_r {
                        ir.read_node_cached(node_page)?
                    } else {
                        is.read_node_cached(node_page)?
                    };
                    if expand_r {
                        out.stats.r_nodes_expanded += 1;
                    } else {
                        out.stats.s_nodes_expanded += 1;
                    }
                    for child in node.entries.iter().copied() {
                        let (re, se) = if fixed_is_r {
                            (fixed, child)
                        } else {
                            (child, fixed)
                        };
                        if cfg.exclude_self {
                            if let (Entry::Object(ro), Entry::Object(so)) = (&re, &se) {
                                if ro.oid == so.oid {
                                    continue; // singleton self product
                                }
                            }
                        }
                        let mind_sq = min_min_dist_sq(&re.mbr(), &se.mbr());
                        let maxd_sq = max_max_dist_sq(&re.mbr(), &se.mbr());
                        out.stats.distance_computations += 1;
                        let bound = guarantee.bound_sq().min(realized_bound(&realized));
                        if mind_sq <= bound * (1.0 + crate::lpq::PRUNE_EPS) {
                            guarantee.offer(maxd_sq);
                            heap.push(PairItem {
                                mind_sq,
                                maxd_sq,
                                r: re,
                                s: se,
                            });
                            out.stats.enqueued += 1;
                        } else {
                            out.stats.pruned_on_probe += 1;
                        }
                    }
                }
            }
        }

        let mut pairs: Vec<Realized> = realized.into_vec();
        pairs.sort();
        for p in pairs {
            out.results.push(NeighborPair {
                r_oid: p.r_oid,
                s_oid: p.s_oid,
                dist: p.dist_sq.sqrt(),
            });
        }
        Ok(())
    })(&mut out);

    let mut io = ir.pool().stats().since(&io_r0);
    if !shared_pool {
        io = io.merge(&is.pool().stats().since(&io_s0));
    }
    out.stats.io = io;
    match walk {
        Ok(()) => Ok(out),
        Err(e) => {
            out.results.clear();
            Err(attach_partial_stats(e, &out.stats))
        }
    }
}
