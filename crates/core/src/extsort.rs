//! External Hilbert-order sorting for out-of-core bulk builds.
//!
//! The in-memory bulk loaders materialize the whole dataset before
//! packing it; at out-of-core scale that is exactly what a buffer pool
//! exists to avoid. [`HilbertSorter`] implements the classic external
//! merge sort, specialized to the one ordering the streaming builders
//! need — ascending `(hilbert_key, oid)`:
//!
//! 1. **Run formation** — points are pushed one at a time; each is keyed
//!    with [`ann_geom::curve::GridMapper::hilbert_key`] over the dataset
//!    bounds.
//!    When the in-memory buffer reaches the run budget it is sorted by
//!    `(key, oid)` and spilled to a [`HeapFile`] of fixed-size records on
//!    a caller-supplied *scratch* pool, so sort memory is bounded by the
//!    budget regardless of input size.
//! 2. **K-way merge** — [`HilbertSorter::finish`] sorts-and-spills the
//!    final partial run and returns a [`SortedStream`] that merges all
//!    runs through a binary heap, yielding records in globally ascending
//!    `(key, oid)` order.
//!
//! The `oid` tie-break makes the output order *total*: points mapping to
//! the same grid cell (duplicates, or distinct points within one cell)
//! always stream in ascending oid order, so external builds are
//! byte-for-byte reproducible for a given input set — independent of push
//! order, run budget, and therefore of how the input happened to be
//! chunked.

use ann_geom::curve::GridMapper;
use ann_geom::{Mbr, Point};
use ann_store::{BufferPool, HeapFile, Result, StoreError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// One keyed record: the sort key, the tie-breaking object id, and the
/// point itself. `D * 8 + 24` bytes on disk, little-endian.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KeyedPoint<const D: usize> {
    /// Hilbert curve position of the point's grid cell.
    pub key: u128,
    /// Object id; the secondary sort key.
    pub oid: u64,
    /// The point.
    pub point: Point<D>,
}

impl<const D: usize> KeyedPoint<D> {
    /// On-disk record size.
    pub const fn record_size() -> usize {
        16 + 8 + 8 * D
    }

    fn encode(&self, out: &mut [u8]) {
        out[0..16].copy_from_slice(&self.key.to_le_bytes());
        out[16..24].copy_from_slice(&self.oid.to_le_bytes());
        for (d, c) in self.point.coords().iter().enumerate() {
            out[24 + d * 8..32 + d * 8].copy_from_slice(&c.to_le_bytes());
        }
    }

    fn decode(buf: &[u8]) -> Self {
        let key = u128::from_le_bytes(buf[0..16].try_into().expect("record layout"));
        let oid = u64::from_le_bytes(buf[16..24].try_into().expect("record layout"));
        let mut c = [0.0f64; D];
        for (d, v) in c.iter_mut().enumerate() {
            *v = f64::from_le_bytes(buf[24 + d * 8..32 + d * 8].try_into().expect("layout"));
        }
        KeyedPoint {
            key,
            oid,
            point: Point::new(c),
        }
    }
}

/// Streaming external sorter; see the module docs.
pub struct HilbertSorter<const D: usize> {
    scratch: Arc<BufferPool>,
    mapper: GridMapper<D>,
    run_budget: usize,
    buf: Vec<KeyedPoint<D>>,
    runs: Vec<HeapFile>,
    len: u64,
}

impl<const D: usize> HilbertSorter<D> {
    /// Creates a sorter keying points against `bounds`, spilling runs of
    /// at most `run_budget` records to `scratch`.
    ///
    /// `bounds` must cover every point subsequently pushed (out-of-bounds
    /// points clamp to the grid edge — still sorted, just with degraded
    /// locality). The scratch pool is only ever used for spill heaps; use
    /// a dedicated pool so spill traffic doesn't evict the build's pages.
    pub fn new(scratch: Arc<BufferPool>, bounds: Mbr<D>, run_budget: usize) -> Self {
        assert!(run_budget > 0, "run budget must be positive");
        HilbertSorter {
            scratch,
            mapper: GridMapper::new(bounds),
            run_budget,
            buf: Vec::with_capacity(run_budget.min(1 << 16)),
            runs: Vec::new(),
            len: 0,
        }
    }

    /// Number of points pushed so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no points have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Keys and buffers one point, spilling a sorted run if the buffer
    /// just reached the run budget.
    pub fn push(&mut self, oid: u64, point: Point<D>) -> Result<()> {
        if !point.is_finite() {
            return Err(StoreError::corrupt("points must have finite coordinates"));
        }
        self.buf.push(KeyedPoint {
            key: self.mapper.hilbert_key(&point),
            oid,
            point,
        });
        self.len += 1;
        if self.buf.len() >= self.run_budget {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.buf.sort_unstable_by_key(|r| (r.key, r.oid));
        let mut heap = HeapFile::create(Arc::clone(&self.scratch), KeyedPoint::<D>::record_size())?;
        let mut rec = vec![0u8; KeyedPoint::<D>::record_size()];
        for r in self.buf.drain(..) {
            r.encode(&mut rec);
            heap.append(&rec)?;
        }
        self.runs.push(heap);
        Ok(())
    }

    /// Spills the final run and returns the merged, globally sorted
    /// stream.
    pub fn finish(mut self) -> Result<SortedStream<D>> {
        self.spill()?;
        let mut heads = BinaryHeap::with_capacity(self.runs.len());
        for (run, heap) in self.runs.iter().enumerate() {
            if heap.len() > 0 {
                let first = KeyedPoint::<D>::decode(&heap.get(0)?);
                heads.push(Reverse(MergeHead {
                    key: first.key,
                    oid: first.oid,
                    point: first.point,
                    run,
                    next: 1,
                }));
            }
        }
        Ok(SortedStream {
            runs: self.runs,
            heads,
            remaining: self.len,
        })
    }
}

/// Heap entry of the k-way merge: the next undelivered record of one run,
/// ordered by the global `(key, oid)` sort key. Runs are internally
/// sorted, so the heap always holds each run's minimum — popping the heap
/// minimum yields the global order.
#[derive(Clone, Copy)]
struct MergeHead<const D: usize> {
    key: u128,
    oid: u64,
    point: Point<D>,
    run: usize,
    next: u64,
}

impl<const D: usize> PartialEq for MergeHead<D> {
    fn eq(&self, other: &Self) -> bool {
        (self.key, self.oid, self.run) == (other.key, other.oid, other.run)
    }
}
impl<const D: usize> Eq for MergeHead<D> {}
impl<const D: usize> PartialOrd for MergeHead<D> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize> Ord for MergeHead<D> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // The run index resolves exact `(key, oid)` collisions (possible
        // only if one oid is pushed twice) deterministically.
        (self.key, self.oid, self.run).cmp(&(other.key, other.oid, other.run))
    }
}

/// The merged output of a [`HilbertSorter`]: yields every pushed point
/// exactly once, in ascending `(hilbert_key, oid)` order.
///
/// Not an `Iterator` because record reads go through the scratch pool and
/// can fail; call [`next_point`](SortedStream::next_point) until it
/// returns `Ok(None)`.
pub struct SortedStream<const D: usize> {
    runs: Vec<HeapFile>,
    heads: BinaryHeap<Reverse<MergeHead<D>>>,
    remaining: u64,
}

impl<const D: usize> SortedStream<D> {
    /// Records not yet delivered.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Pops the next record in global order, or `Ok(None)` when drained.
    pub fn next_point(&mut self) -> Result<Option<KeyedPoint<D>>> {
        let Some(Reverse(head)) = self.heads.pop() else {
            return Ok(None);
        };
        let out = KeyedPoint {
            key: head.key,
            oid: head.oid,
            point: head.point,
        };
        let run = &self.runs[head.run];
        if head.next < run.len() {
            let next = KeyedPoint::<D>::decode(&run.get(head.next)?);
            self.heads.push(Reverse(MergeHead {
                key: next.key,
                oid: next.oid,
                point: next.point,
                run: head.run,
                next: head.next + 1,
            }));
        }
        self.remaining -= 1;
        Ok(Some(out))
    }
}

/// A raw (unkeyed, unsorted) spill of `(oid, point)` records — the
/// staging pass of a streaming build: the input iterator is consumed once
/// to disk while the dataset bounds are computed, and then replayed into
/// a [`HilbertSorter`] (whose grid needs those bounds up front).
pub struct PointSpill<const D: usize> {
    heap: HeapFile,
    /// Reusable record-encoding buffer (`8 + 8 * D` bytes).
    rec: Vec<u8>,
    /// Tight bounds over every spilled point.
    pub bounds: Mbr<D>,
    /// Number of spilled points.
    pub len: u64,
}

impl<const D: usize> PointSpill<D> {
    /// An empty spill on `scratch`; fill it with [`push`](Self::push).
    pub fn create(scratch: Arc<BufferPool>) -> Result<Self> {
        Ok(PointSpill {
            heap: HeapFile::create(scratch, 8 + 8 * D)?,
            rec: vec![0u8; 8 + 8 * D],
            bounds: Mbr::empty(),
            len: 0,
        })
    }

    /// Appends one record, expanding the bounds. Rejects non-finite
    /// coordinates.
    pub fn push(&mut self, oid: u64, point: Point<D>) -> Result<()> {
        if !point.is_finite() {
            return Err(StoreError::corrupt("points must have finite coordinates"));
        }
        self.rec[0..8].copy_from_slice(&oid.to_le_bytes());
        for (d, c) in point.coords().iter().enumerate() {
            self.rec[8 + d * 8..16 + d * 8].copy_from_slice(&c.to_le_bytes());
        }
        self.heap.append(&self.rec)?;
        self.bounds.expand(&Mbr::from_point(&point));
        self.len += 1;
        Ok(())
    }

    /// Consumes `points` into a heap file on `scratch`, computing bounds
    /// and rejecting non-finite coordinates.
    pub fn consume(
        scratch: Arc<BufferPool>,
        points: impl IntoIterator<Item = (u64, Point<D>)>,
    ) -> Result<Self> {
        let mut spill = Self::create(scratch)?;
        for (oid, point) in points {
            spill.push(oid, point)?;
        }
        Ok(spill)
    }

    /// Replays every spilled record, in spill order, into `f`.
    pub fn replay(&self, mut f: impl FnMut(u64, Point<D>) -> Result<()>) -> Result<()> {
        let mut pending = Ok(());
        self.heap.scan(|_, buf| {
            if pending.is_err() {
                return;
            }
            let oid = u64::from_le_bytes(buf[0..8].try_into().expect("record layout"));
            let mut c = [0.0f64; D];
            for (d, v) in c.iter_mut().enumerate() {
                *v = f64::from_le_bytes(buf[8 + d * 8..16 + d * 8].try_into().expect("layout"));
            }
            pending = f(oid, Point::new(c));
        })?;
        pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ann_store::MemDisk;

    fn scratch() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(MemDisk::new(), 64))
    }

    fn unit_bounds() -> Mbr<2> {
        Mbr::new([0.0, 0.0], [1.0, 1.0])
    }

    #[test]
    fn matches_in_memory_sort_across_run_budgets() {
        // 257 pseudo-random points, budgets that do and don't divide the
        // input: the external order must equal one big in-memory sort.
        let mut pts = Vec::new();
        let mut s = 0x9E3779B97F4A7C15u64;
        for i in 0..257u64 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let x = (s >> 40) as f64 / (1u64 << 24) as f64;
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let y = (s >> 40) as f64 / (1u64 << 24) as f64;
            pts.push((i, Point::new([x, y])));
        }
        let mapper = GridMapper::new(unit_bounds());
        let mut expect: Vec<(u128, u64)> = pts
            .iter()
            .map(|(oid, p)| (mapper.hilbert_key(p), *oid))
            .collect();
        expect.sort_unstable();

        for budget in [7usize, 64, 500] {
            let mut sorter = HilbertSorter::new(scratch(), unit_bounds(), budget);
            for (oid, p) in &pts {
                sorter.push(*oid, *p).unwrap();
            }
            let mut stream = sorter.finish().unwrap();
            let mut got = Vec::new();
            while let Some(r) = stream.next_point().unwrap() {
                got.push((r.key, r.oid));
            }
            assert_eq!(got, expect, "budget {budget}");
            assert_eq!(stream.remaining(), 0);
        }
    }

    #[test]
    fn duplicate_keys_tie_break_on_oid() {
        // All points identical: every key collides, so the output order is
        // pinned entirely by the oid tie-break — ascending, total, and
        // independent of push order.
        let mut sorter = HilbertSorter::new(scratch(), unit_bounds(), 4);
        for oid in [9u64, 2, 7, 0, 5, 3, 8, 1, 6, 4] {
            sorter.push(oid, Point::new([0.5, 0.5])).unwrap();
        }
        let mut stream = sorter.finish().unwrap();
        let mut oids = Vec::new();
        while let Some(r) = stream.next_point().unwrap() {
            oids.push(r.oid);
        }
        assert_eq!(oids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let sorter: HilbertSorter<2> = HilbertSorter::new(scratch(), unit_bounds(), 8);
        assert!(sorter.is_empty());
        let mut stream = sorter.finish().unwrap();
        assert!(stream.next_point().unwrap().is_none());

        let mut sorter = HilbertSorter::new(scratch(), unit_bounds(), 8);
        sorter.push(42, Point::new([0.25, 0.75])).unwrap();
        assert_eq!(sorter.len(), 1);
        let mut stream = sorter.finish().unwrap();
        let r = stream.next_point().unwrap().unwrap();
        assert_eq!(r.oid, 42);
        assert!(stream.next_point().unwrap().is_none());
    }

    #[test]
    fn non_finite_points_are_rejected() {
        let mut sorter = HilbertSorter::new(scratch(), unit_bounds(), 8);
        assert!(sorter.push(0, Point::new([f64::NAN, 0.0])).is_err());
    }

    #[test]
    fn record_round_trips() {
        let r = KeyedPoint::<3> {
            key: 0x0123_4567_89AB_CDEF_0011_2233_4455_6677,
            oid: u64::MAX - 5,
            point: Point::new([1.5, -2.25, 1e300]),
        };
        let mut buf = vec![0u8; KeyedPoint::<3>::record_size()];
        r.encode(&mut buf);
        assert_eq!(KeyedPoint::<3>::decode(&buf), r);
    }

    #[test]
    fn point_spill_replays_in_order_with_bounds() {
        let pts = vec![
            (3u64, Point::new([0.5, -1.0])),
            (1, Point::new([2.0, 4.0])),
            (2, Point::new([-3.0, 0.25])),
        ];
        let spill = PointSpill::consume(scratch(), pts.clone()).unwrap();
        assert_eq!(spill.len, 3);
        assert_eq!(spill.bounds, Mbr::new([-3.0, -1.0], [2.0, 4.0]));
        let mut replayed = Vec::new();
        spill
            .replay(|oid, p| {
                replayed.push((oid, p));
                Ok(())
            })
            .unwrap();
        assert_eq!(replayed, pts);

        let bad = PointSpill::consume(
            scratch(),
            vec![(0u64, Point::new([f64::INFINITY, 0.0]))],
        );
        assert!(bad.is_err());
    }
}
