//! Morsel decomposition of R-side work for the parallel engine.
//!
//! A *morsel* is a bounded unit of query-side work: an LPQ subtree for
//! MBA, one Hilbert-contiguous group for BNN, an `I_R` subtree (degrading
//! to single leaf runs) for MNN/kNN-style per-object searches, and a
//! fixed-size slice of query points for HNN. Morsels live in per-worker
//! deques inside a [`MorselPool`]; a worker consumes its own deque
//! depth-first (newest first, for locality with the subtree it just
//! split) and steals the *oldest* morsel from a sibling when its own
//! deque runs dry — the oldest queued unit is the coarsest, so a steal
//! moves the most work for one synchronization.
//!
//! The pool is deliberately simple: one uncontended `Mutex<VecDeque>` per
//! worker (a worker locks its own deque for nanoseconds per morsel; a
//! steal locks a sibling's), one atomic in-flight counter for
//! termination, and one abort flag for prompt error propagation. No
//! morsel is ever dropped silently: a unit leaves the pool either by
//! being processed ([`MorselPool::complete`]) or because the pool aborted
//! and the remaining units became unreachable by construction.
//!
//! An idle worker spins through a few steal rounds and then *parks* on a
//! condvar instead of busy-waiting: during a long morsel (an inline walk
//! of a 512-object subtree, the tail of a skewed query) the blocked
//! siblings consume no CPU, so granted-but-idle workers do not
//! oversubscribe the box under concurrent serving load. Every event that
//! can unblock a sleeper — a push, the in-flight counter reaching zero,
//! an abort — bumps a wake epoch under the condvar's lock and notifies;
//! a would-be sleeper snapshots the epoch *before* scanning the deques
//! and only parks while it is unchanged, so no wakeup can be lost.
//!
//! Determinism note: morsel boundaries never depend on the worker count —
//! they are fixed by the input (tree structure, group size, point order).
//! Which worker processes which morsel *does* vary run to run; every
//! algorithm built on this pool therefore only uses morsels whose results
//! are independent of processing order, and the engine
//! ([`crate::par::run_workers`]) canonicalizes the merged output.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Subtrees holding at most this many objects are processed inline
/// (serial recursion) instead of being split into child morsels: below
/// this size the deque traffic costs more than the imbalance it fixes.
pub const INLINE_SUBTREE_OBJECTS: u64 = 512;

/// Failed pop-and-steal rounds an idle worker burns (yielding between
/// rounds) before parking on the pool's condvar. A short spin covers the
/// common case where a sibling splits a subtree within microseconds; the
/// park covers long morsels where spinning would waste whole cores.
const SPIN_ROUNDS: u32 = 32;

/// Points per object-batch morsel for poolless per-point algorithms
/// (HNN). Small enough that a skewed hot cell cannot hide a multi-second
/// stall inside one morsel, large enough to amortize a deque operation
/// over hundreds of kernel calls.
pub const POINT_MORSEL: usize = 256;

/// Resolves a requested thread count: `0` means one worker per available
/// core, anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Splits `0..len` into consecutive ranges of `chunk` elements (the last
/// may be shorter) — identical boundaries to `slice::chunks(chunk)`, so
/// a chunked parallel loop visits exactly the serial loop's groups.
pub fn chunk_ranges(len: usize, chunk: usize) -> Vec<Range<usize>> {
    assert!(chunk >= 1, "chunk size must be at least 1");
    let mut ranges = Vec::with_capacity(len.div_ceil(chunk));
    let mut at = 0;
    while at < len {
        let end = (at + chunk).min(len);
        ranges.push(at..end);
        at = end;
    }
    ranges
}

/// The work-stealing morsel pool: per-worker deques, an in-flight
/// counter for termination, and an abort flag for prompt teardown.
#[derive(Debug)]
pub struct MorselPool<T> {
    deques: Vec<Mutex<VecDeque<T>>>,
    /// Morsels queued or currently being processed. Seeds count from
    /// construction; [`push`](Self::push) increments *before* the unit
    /// becomes stealable and [`complete`](Self::complete) decrements
    /// after processing, so the counter can only reach zero when no
    /// worker will produce further work.
    in_flight: AtomicUsize,
    aborted: AtomicBool,
    /// Wake epoch for parked workers: bumped under the lock by every
    /// event that can unblock a sleeper (push, in-flight reaching zero,
    /// abort). See the module docs for the lost-wakeup argument.
    wake: Mutex<u64>,
    wake_cv: Condvar,
}

impl<T> MorselPool<T> {
    /// A pool for `workers` deques, seeded round-robin with `seeds`.
    pub fn new(workers: usize, seeds: Vec<T>) -> Self {
        assert!(workers >= 1, "a pool needs at least one worker");
        let mut deques: Vec<VecDeque<T>> = (0..workers).map(|_| VecDeque::new()).collect();
        let in_flight = seeds.len();
        for (i, unit) in seeds.into_iter().enumerate() {
            deques[i % workers].push_back(unit);
        }
        MorselPool {
            deques: deques.into_iter().map(Mutex::new).collect(),
            in_flight: AtomicUsize::new(in_flight),
            aborted: AtomicBool::new(false),
            wake: Mutex::new(0),
            wake_cv: Condvar::new(),
        }
    }

    /// Bumps the wake epoch and wakes every parked worker. Called by
    /// every event a sleeper's park condition depends on.
    fn notify(&self) {
        *self.wake.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        self.wake_cv.notify_all();
    }

    /// Adds a morsel to `worker`'s own deque (newest end).
    pub fn push(&self, worker: usize, unit: T) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        self.deques[worker]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(unit);
        self.notify();
    }

    /// Takes the next morsel for `worker`: its own newest first, then a
    /// steal of the oldest unit from a sibling. Blocks while other
    /// workers are still processing — they may push more work — spinning
    /// briefly and then parking; returns `None` once all work is done or
    /// the pool aborted.
    pub fn pop(&self, worker: usize) -> Option<T> {
        let n = self.deques.len();
        let mut spins = 0u32;
        loop {
            if self.aborted.load(Ordering::Acquire) {
                return None;
            }
            // Snapshot the wake epoch before scanning: any push /
            // final-complete / abort racing with the scan bumps it and
            // forbids the park below, so the event cannot be missed.
            let epoch = *self.wake.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(unit) = self.deques[worker]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_back()
            {
                return Some(unit);
            }
            for i in 1..n {
                let victim = (worker + i) % n;
                if let Some(unit) = self.deques[victim]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop_front()
                {
                    return Some(unit);
                }
            }
            if self.in_flight.load(Ordering::SeqCst) == 0 {
                return None;
            }
            if spins < SPIN_ROUNDS {
                spins += 1;
                std::thread::yield_now();
                continue;
            }
            let mut guard = self.wake.lock().unwrap_or_else(|e| e.into_inner());
            while *guard == epoch
                && !self.aborted.load(Ordering::Acquire)
                && self.in_flight.load(Ordering::SeqCst) != 0
            {
                guard = self
                    .wake_cv
                    .wait(guard)
                    .unwrap_or_else(|e| e.into_inner());
            }
            drop(guard);
            spins = 0;
        }
    }

    /// Marks one previously popped morsel as fully processed. Call this
    /// *after* pushing any child morsels the unit produced, so the
    /// in-flight counter can never be zero while work remains.
    pub fn complete(&self) {
        if self.in_flight.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.notify();
        }
    }

    /// Aborts the pool: every pending and future [`pop`](Self::pop)
    /// returns `None` promptly, regardless of queued work.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
        self.notify();
    }

    /// Whether [`abort`](Self::abort) has been called.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_match_slice_chunks() {
        for (len, chunk) in [(0usize, 3usize), (1, 3), (3, 3), (10, 3), (9, 3), (10, 256)] {
            let data: Vec<usize> = (0..len).collect();
            let via_ranges: Vec<Vec<usize>> = chunk_ranges(len, chunk)
                .into_iter()
                .map(|r| data[r].to_vec())
                .collect();
            let via_chunks: Vec<Vec<usize>> = data.chunks(chunk).map(|c| c.to_vec()).collect();
            assert_eq!(via_ranges, via_chunks, "len={len} chunk={chunk}");
        }
    }

    #[test]
    fn single_worker_drains_in_lifo_order() {
        let pool = MorselPool::new(1, vec![1, 2, 3]);
        // Own deque pops newest first.
        assert_eq!(pool.pop(0), Some(3));
        pool.complete();
        pool.push(0, 4);
        assert_eq!(pool.pop(0), Some(4));
        pool.complete();
        assert_eq!(pool.pop(0), Some(2));
        pool.complete();
        assert_eq!(pool.pop(0), Some(1));
        pool.complete();
        assert_eq!(pool.pop(0), None, "all work completed");
    }

    #[test]
    fn steal_takes_oldest_from_sibling() {
        let pool = MorselPool::new(2, Vec::new());
        pool.push(0, 10);
        pool.push(0, 11);
        // Worker 1 has nothing of its own; it steals worker 0's oldest.
        assert_eq!(pool.pop(1), Some(10));
        pool.complete();
        assert_eq!(pool.pop(0), Some(11));
        pool.complete();
        assert_eq!(pool.pop(0), None);
    }

    #[test]
    fn abort_unblocks_pop_with_work_queued() {
        let pool = MorselPool::new(1, vec![7]);
        pool.abort();
        assert!(pool.is_aborted());
        assert_eq!(pool.pop(0), None, "aborted pools hand out no work");
    }

    #[test]
    fn parked_worker_wakes_on_push() {
        use std::sync::Arc;
        // Worker 0 holds the only unit, so worker 1's pop must block
        // (eventually parking) until a child is published.
        let pool = Arc::new(MorselPool::new(2, vec![0u32]));
        assert_eq!(pool.pop(0), Some(0));
        let stealer = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.pop(1))
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        pool.push(0, 7);
        assert_eq!(stealer.join().unwrap(), Some(7));
        pool.complete();
        pool.complete();
        assert_eq!(pool.pop(1), None);
    }

    #[test]
    fn parked_worker_wakes_on_abort() {
        use std::sync::Arc;
        let pool = Arc::new(MorselPool::new(2, vec![0u32]));
        assert_eq!(pool.pop(0), Some(0));
        let stealer = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.pop(1))
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        pool.abort();
        assert_eq!(stealer.join().unwrap(), None);
    }

    #[test]
    fn parked_worker_wakes_on_final_complete() {
        use std::sync::Arc;
        let pool = Arc::new(MorselPool::new(2, vec![0u32]));
        assert_eq!(pool.pop(0), Some(0));
        let stealer = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.pop(1))
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        pool.complete();
        assert_eq!(stealer.join().unwrap(), None);
    }

    #[test]
    fn termination_waits_for_in_flight_producers() {
        // One seed; the worker that pops it pushes a child before
        // completing, so a concurrent pop must see the child rather than
        // terminating early.
        let pool = MorselPool::new(2, vec![0]);
        let unit = pool.pop(0).unwrap();
        assert_eq!(unit, 0);
        pool.push(0, 1);
        pool.complete();
        assert_eq!(pool.pop(1), Some(1));
        pool.complete();
        assert_eq!(pool.pop(1), None);
    }
}
