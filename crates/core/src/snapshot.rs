//! Pinned, versioned read views over a spatial index.
//!
//! A tree backed by an [`ann_store::VersionedStore`] separates its write
//! handle (the tree struct itself, `&mut self` mutations) from read
//! views: a [`VersionedHandle`] is a cheap, cloneable, thread-safe
//! factory of [`ReadContext`]s, and each `ReadContext` pins one version
//! for its whole lifetime. Queries run against the `ReadContext` exactly
//! as against the tree (it implements [`SpatialIndex`]), but:
//!
//! * every page read translates through the pinned version's table, so
//!   a writer committing mid-query can never tear the traversal;
//! * the decoded-node cache is keyed by `(version, page)` — entries
//!   cached by readers of older versions stay valid and shareable, and
//!   commits don't clear the cache;
//! * the meta fields (root, point count, bounds) are read through the
//!   snapshot at pin time, so they are mutually consistent with every
//!   node the traversal will see.
//!
//! The pinned version is reclaim-exempt until the `ReadContext` drops;
//! see `ann_store::versioned` for the GC rules.

use crate::index::SpatialIndex;
use crate::node::{read_node, Node};
use crate::node_cache::NodeCache;
use ann_geom::Mbr;
use ann_store::{BufferPool, PageId, Result, Snapshot, VersionedStore};
use std::sync::Arc;

/// The per-version meta fields a snapshot read needs: parsed from the
/// tree's meta page *through* the snapshot's translation table.
#[derive(Clone, Copy, Debug)]
pub struct MetaFields<const D: usize> {
    /// First page of the root node in this version.
    pub root: PageId,
    /// Number of indexed points in this version.
    pub num_points: u64,
    /// Tight bounds of all points in this version.
    pub bounds: Mbr<D>,
}

/// Parses a tree's meta page through an arbitrary snapshot.
///
/// Each tree crate supplies one (a plain `fn`, so the handle stays
/// `Copy`-cheap, `Send` and `Sync` without trait objects): it must read
/// the meta page via the snapshot's `PageStore` impl and return the
/// version-consistent fields.
pub type MetaReader<const D: usize> = fn(&Snapshot, PageId) -> Result<MetaFields<D>>;

/// A cloneable, thread-safe factory of pinned read views over one
/// versioned tree. Obtained from the tree (`versioned_handle()`) after
/// versioning is enabled.
pub struct VersionedHandle<const D: usize> {
    store: Arc<VersionedStore>,
    cache: Arc<NodeCache<D>>,
    meta_page: PageId,
    meta_reader: MetaReader<D>,
}

impl<const D: usize> Clone for VersionedHandle<D> {
    fn clone(&self) -> Self {
        VersionedHandle {
            store: Arc::clone(&self.store),
            cache: Arc::clone(&self.cache),
            meta_page: self.meta_page,
            meta_reader: self.meta_reader,
        }
    }
}

impl<const D: usize> std::fmt::Debug for VersionedHandle<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionedHandle")
            .field("meta_page", &self.meta_page)
            .field("latest", &self.store.latest())
            .finish()
    }
}

impl<const D: usize> VersionedHandle<D> {
    /// Builds a handle from a tree's versioned store, shared node cache,
    /// meta page and meta parser.
    pub fn new(
        store: Arc<VersionedStore>,
        cache: Arc<NodeCache<D>>,
        meta_page: PageId,
        meta_reader: MetaReader<D>,
    ) -> Self {
        VersionedHandle {
            store,
            cache,
            meta_page,
            meta_reader,
        }
    }

    /// The underlying versioned store.
    pub fn store(&self) -> &Arc<VersionedStore> {
        &self.store
    }

    /// The shared decoded-node cache.
    pub fn cache(&self) -> &Arc<NodeCache<D>> {
        &self.cache
    }

    /// The most recently committed version.
    pub fn latest(&self) -> u32 {
        self.store.latest()
    }

    /// Pins `version` (latest when `None`) and reads its meta fields,
    /// returning a query-ready [`ReadContext`]. Fails with
    /// [`ann_store::StoreError::VersionNotRetained`] when the version has
    /// aged out of the history window.
    pub fn pin(&self, version: Option<u32>) -> Result<ReadContext<D>> {
        let snap = self.store.pin(version)?;
        let meta = (self.meta_reader)(&snap, self.meta_page)?;
        Ok(ReadContext {
            snap,
            cache: Arc::clone(&self.cache),
            meta,
        })
    }

    /// Drops node-cache entries for versions no snapshot can pin anymore
    /// (below the store's GC floor). Writers call this after commits.
    pub fn sync_cache_floor(&self) {
        self.cache.retire_below(self.store.version_floor() as u64);
    }
}

/// A read view of one pinned version of a tree.
///
/// Implements [`SpatialIndex`], so every algorithm (MBA/RBA, BNN, MNN,
/// HNN, kNN, closest pairs, validation) runs against it unchanged. The
/// pinned version cannot be garbage-collected while this value lives.
pub struct ReadContext<const D: usize> {
    snap: Snapshot,
    cache: Arc<NodeCache<D>>,
    meta: MetaFields<D>,
}

impl<const D: usize> ReadContext<D> {
    /// The version this context reads.
    pub fn version(&self) -> u32 {
        self.snap.version()
    }

    /// The pinned storage snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snap
    }

    /// The meta fields read at pin time.
    pub fn meta(&self) -> &MetaFields<D> {
        &self.meta
    }
}

impl<const D: usize> std::fmt::Debug for ReadContext<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadContext")
            .field("version", &self.snap.version())
            .field("root", &self.meta.root)
            .field("num_points", &self.meta.num_points)
            .finish()
    }
}

impl<const D: usize> SpatialIndex<D> for ReadContext<D> {
    fn pool(&self) -> &BufferPool {
        self.snap.store().pool()
    }

    fn root_page(&self) -> PageId {
        self.meta.root
    }

    fn num_points(&self) -> u64 {
        self.meta.num_points
    }

    fn bounds(&self) -> Mbr<D> {
        self.meta.bounds
    }

    fn read_node(&self, page: PageId) -> Result<Node<D>> {
        // The snapshot translates every page of the node's continuation
        // chain, so even multi-page nodes decode version-consistently.
        read_node(&self.snap, page)
    }

    fn node_cache(&self) -> Option<&NodeCache<D>> {
        Some(&self.cache)
    }

    fn cache_key(&self) -> u64 {
        // Key by pinned version: entries for other versions neither
        // match nor get clobbered, so concurrent readers of different
        // versions share one cache without invalidating each other.
        self.snap.version() as u64
    }
}
