//! Synthetic dataset generation for the ANN experiments.
//!
//! The paper evaluates on (Table 2):
//!
//! * `500K2D` / `500K4D` / `500K6D` — 500 K synthetic points produced with
//!   a modified GSTD generator;
//! * **TAC** — the Twin Astrographic Catalog, ~700 K real 2-D star
//!   positions;
//! * **FC** — Forest Cover Type, 580 K tuples projected to their 10 real
//!   attributes.
//!
//! The two real datasets are not redistributable here, so this crate ships
//! *simulated* stand-ins ([`tac_like`], [`fc_like`]) that preserve the
//! properties the experiments actually exercise — cardinality,
//! dimensionality, clustering (TAC) and strong inter-attribute correlation
//! (FC, which is what gives GORDER's PCA step its leverage). The GSTD-style
//! generators ([`uniform`], [`gaussian_clusters`], [`skewed`]) cover the
//! synthetic workloads.
//!
//! Everything is deterministic given a seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod io;

use ann_geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled dataset description, mirroring the paper's Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Paper name (e.g. `"500K2D"`, `"TAC"`, `"FC"`).
    pub name: &'static str,
    /// Cardinality used in the paper.
    pub cardinality: usize,
    /// Dimensionality.
    pub dims: usize,
    /// Short description.
    pub description: &'static str,
}

/// The paper's Table 2.
pub const TABLE2: &[DatasetSpec] = &[
    DatasetSpec {
        name: "500K2D",
        cardinality: 500_000,
        dims: 2,
        description: "2D point data (GSTD-style synthetic)",
    },
    DatasetSpec {
        name: "500K4D",
        cardinality: 500_000,
        dims: 4,
        description: "4D point data (GSTD-style synthetic)",
    },
    DatasetSpec {
        name: "500K6D",
        cardinality: 500_000,
        dims: 6,
        description: "6D point data (GSTD-style synthetic)",
    },
    DatasetSpec {
        name: "TAC",
        cardinality: 700_000,
        dims: 2,
        description: "2D Twin Astrographic Catalog data (simulated stand-in)",
    },
    DatasetSpec {
        name: "FC",
        cardinality: 580_000,
        dims: 10,
        description: "10D Forest Cover Type data (simulated stand-in)",
    },
];

/// One standard-normal sample via Box-Muller (keeps us inside the `rand`
/// crate without `rand_distr`).
fn normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// `n` points uniform in the unit cube.
pub fn uniform<const D: usize>(n: usize, seed: u64) -> Vec<(u64, Point<D>)> {
    uniform_stream(n, seed).collect()
}

/// The exact sequence [`uniform`] materializes, as a lazy iterator: the
/// streaming bulk builders consume this directly, so arbitrarily large
/// datasets never exist in memory at once.
pub fn uniform_stream<const D: usize>(
    n: usize,
    seed: u64,
) -> impl Iterator<Item = (u64, Point<D>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(move |i| {
        let mut c = [0.0; D];
        for v in c.iter_mut() {
            *v = rng.gen_range(0.0..1.0);
        }
        (i as u64, Point::new(c))
    })
}

/// `n` points from a mixture of `clusters` spherical gaussians with the
/// given standard deviation, cluster centers uniform in the unit cube.
/// Samples are clamped to `[0, 1]^D` so dataset bounds stay stable.
pub fn gaussian_clusters<const D: usize>(
    n: usize,
    clusters: usize,
    sigma: f64,
    seed: u64,
) -> Vec<(u64, Point<D>)> {
    assert!(clusters >= 1, "need at least one cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<[f64; D]> = (0..clusters)
        .map(|_| {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                *v = rng.gen_range(0.1..0.9);
            }
            c
        })
        .collect();
    (0..n)
        .map(|i| {
            let center = centers[rng.gen_range(0..clusters)];
            let mut c = [0.0; D];
            for (d, v) in c.iter_mut().enumerate() {
                *v = (center[d] + sigma * normal(&mut rng)).clamp(0.0, 1.0);
            }
            (i as u64, Point::new(c))
        })
        .collect()
}

/// `n` points with power-law (Zipf-like) skew towards the origin in every
/// dimension: coordinate `= u^alpha` for uniform `u`. `alpha > 1` crowds
/// points near 0 — the skewed workloads that defeat spatial hashing (the
/// paper's §2 remark on HNN).
pub fn skewed<const D: usize>(n: usize, alpha: f64, seed: u64) -> Vec<(u64, Point<D>)> {
    assert!(alpha > 0.0, "alpha must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                let u: f64 = rng.gen_range(0.0..1.0);
                *v = u.powf(alpha);
            }
            (i as u64, Point::new(c))
        })
        .collect()
}

/// A simulated Twin Astrographic Catalog: `n` 2-D "star positions" in
/// (right ascension [0, 360), declination [-90, 90]) degrees.
///
/// Star catalogs are strongly clustered (open clusters and the galactic
/// band over a sparse background); the stand-in mixes ~65 % points drawn
/// from several hundred small gaussian clusters concentrated around an
/// inclined band with ~35 % near-uniform background — large, 2-D and
/// non-uniform, which is what the TAC experiments exercise.
pub fn tac_like(n: usize, seed: u64) -> Vec<(u64, Point<2>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_clusters = 400.max(n / 2000);
    // Cluster centers concentrated around a sinusoidal "galactic band".
    let centers: Vec<(f64, f64, f64)> = (0..n_clusters)
        .map(|_| {
            let ra: f64 = rng.gen_range(0.0..360.0);
            let band = 25.0 * (ra.to_radians() * 1.0).sin();
            let dec = (band + 18.0 * normal(&mut rng)).clamp(-89.0, 89.0);
            let sigma = rng.gen_range(0.05..1.2);
            (ra, dec, sigma)
        })
        .collect();
    (0..n)
        .map(|i| {
            let (ra, dec) = if rng.gen_bool(0.65) {
                let (cra, cdec, sigma) = centers[rng.gen_range(0..n_clusters)];
                (
                    (cra + sigma * normal(&mut rng)).rem_euclid(360.0),
                    (cdec + sigma * normal(&mut rng)).clamp(-90.0, 90.0),
                )
            } else {
                (rng.gen_range(0.0..360.0), rng.gen_range(-90.0..90.0))
            };
            (i as u64, Point::new([ra, dec]))
        })
        .collect()
}

/// A simulated Forest Cover dataset: `n` 10-D points whose dimensions are
/// linear combinations of 3 latent "terrain" factors plus noise, rescaled
/// to the unit cube and quantized to integer-like grids.
///
/// Two properties of the real FC attributes matter to the experiments and
/// are both preserved:
///
/// * they are strongly correlated (elevation, slope, three hillshade
///   readings, distances to hydrology/roads/fire points all reflect the
///   same terrain), which is what lets GORDER's PCA step concentrate
///   variance in few principal components;
/// * they are *integers* with coarse ranges (hillshade is 0-255, slope
///   0-66 degrees, ...), and each row describes one 30 m terrain cell —
///   adjacent cells in uniform terrain repeat entire attribute profiles,
///   so the dataset is full of duplicate values and exact-duplicate
///   points. Nearest-neighbor distances are tiny or zero, which
///   index-based pruning feeds on (and which turns out to decide the
///   MBA-vs-GORDER comparison; see EXPERIMENTS.md). The stand-in
///   therefore quantizes every dimension to a realistic resolution and
///   samples rows from a pool of `n / 5` distinct profiles.
pub fn fc_like(n: usize, seed: u64) -> Vec<(u64, Point<10>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let distinct = (n / 5).max(1);
    // Fixed mixing matrix: 10 attributes from 3 latent factors.
    // Rows chosen so groups of attributes share factors (like the three
    // hillshade readings do in the real data).
    const MIX: [[f64; 3]; 10] = [
        [1.00, 0.10, 0.05],
        [0.90, 0.20, 0.00],
        [0.80, -0.30, 0.10],
        [0.10, 1.00, 0.05],
        [0.05, 0.95, -0.10],
        [-0.20, 0.85, 0.15],
        [0.15, 0.05, 1.00],
        [0.00, -0.10, 0.90],
        [0.25, 0.15, 0.80],
        [0.50, 0.50, 0.50],
    ];
    const NOISE: f64 = 0.15;
    let mut raw = Vec::with_capacity(distinct);
    let mut lo = [f64::INFINITY; 10];
    let mut hi = [f64::NEG_INFINITY; 10];
    for _ in 0..distinct {
        // Latents: two gaussian, one bimodal (forest type regimes).
        let f0 = normal(&mut rng);
        let f1 = normal(&mut rng);
        let f2 = 0.6 * normal(&mut rng) + if rng.gen_bool(0.5) { 1.2 } else { -1.2 };
        let mut c = [0.0; 10];
        for (d, row) in MIX.iter().enumerate() {
            c[d] = row[0] * f0 + row[1] * f1 + row[2] * f2 + NOISE * normal(&mut rng);
            lo[d] = lo[d].min(c[d]);
            hi[d] = hi[d].max(c[d]);
        }
        raw.push(c);
    }
    // Integer resolutions mirroring the real attribute ranges:
    // elevation (~2000 distinct meters), aspect (360°), slope (~66°),
    // 3 × hillshade (0-255), 4 × horizontal/vertical distances (~1400
    // distinct values in the raw data).
    const LEVELS: [f64; 10] = [
        2000.0, 360.0, 66.0, 255.0, 255.0, 255.0, 1400.0, 1400.0, 1400.0, 700.0,
    ];
    let profiles: Vec<[f64; 10]> = raw
        .into_iter()
        .map(|mut c| {
            for d in 0..10 {
                let ext = hi[d] - lo[d];
                let unit = if ext > 0.0 { (c[d] - lo[d]) / ext } else { 0.5 };
                c[d] = (unit * LEVELS[d]).round() / LEVELS[d];
            }
            c
        })
        .collect();
    (0..n)
        .map(|i| {
            let profile = profiles[rng.gen_range(0..profiles.len())];
            (i as u64, Point::new(profile))
        })
        .collect()
}

/// The synthetic `500K{2,4,6}D`-style dataset at an arbitrary scale:
/// GSTD-like gaussian-cluster data in `D` dimensions.
pub fn synthetic_nd<const D: usize>(n: usize, seed: u64) -> Vec<(u64, Point<D>)> {
    gaussian_clusters::<D>(n, 50, 0.03, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ann_geom::Mbr;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform::<2>(100, 7), uniform::<2>(100, 7));
        assert_eq!(tac_like(100, 7), tac_like(100, 7));
        assert_eq!(fc_like(100, 7), fc_like(100, 7));
        assert_ne!(uniform::<2>(100, 7), uniform::<2>(100, 8));
    }

    #[test]
    fn uniform_stream_matches_materialized_uniform() {
        let eager = uniform::<3>(500, 42);
        let lazy: Vec<_> = uniform_stream::<3>(500, 42).collect();
        assert_eq!(eager, lazy);
    }

    #[test]
    fn uniform_fills_unit_cube() {
        let pts = uniform::<3>(5000, 1);
        let mbr = Mbr::from_points(pts.iter().map(|(_, p)| p));
        for d in 0..3 {
            assert!(mbr.lo[d] >= 0.0 && mbr.hi[d] <= 1.0);
            assert!(mbr.extent(d) > 0.9, "should nearly fill the cube");
        }
    }

    #[test]
    fn oids_are_sequential() {
        let pts = uniform::<2>(100, 3);
        for (i, (oid, _)) in pts.iter().enumerate() {
            assert_eq!(*oid, i as u64);
        }
    }

    #[test]
    fn gaussian_clusters_are_clustered() {
        // Mean nearest-neighbor distance of clustered data is far below
        // uniform data of the same cardinality.
        let clustered = gaussian_clusters::<2>(2000, 10, 0.01, 5);
        let uni = uniform::<2>(2000, 5);
        let mean_nn = |pts: &[(u64, Point<2>)]| {
            let mut total = 0.0;
            for (i, (_, p)) in pts.iter().enumerate() {
                let mut best = f64::INFINITY;
                for (j, (_, q)) in pts.iter().enumerate() {
                    if i != j {
                        best = best.min(p.dist_sq(q));
                    }
                }
                total += best.sqrt();
            }
            total / pts.len() as f64
        };
        assert!(mean_nn(&clustered) < mean_nn(&uni) * 0.8);
    }

    #[test]
    fn skew_crowds_towards_origin() {
        let pts = skewed::<2>(5000, 3.0, 9);
        let below = pts.iter().filter(|(_, p)| p[0] < 0.125).count();
        // u^3 < 0.125 iff u < 0.5: about half the mass is below 0.125.
        assert!(below > 2000, "skew should crowd the origin: {below}");
        assert!(pts.iter().all(|(_, p)| p[0] >= 0.0 && p[0] <= 1.0));
    }

    #[test]
    fn tac_like_is_in_sky_coordinates_and_clustered() {
        let pts = tac_like(20_000, 11);
        assert!(pts
            .iter()
            .all(|(_, p)| (0.0..360.0).contains(&p[0]) && (-90.0..=90.0).contains(&p[1])));
        // Clustering: count occupied cells of a coarse grid; clustered data
        // occupies far fewer cells than uniform would.
        let mut cells = std::collections::HashSet::new();
        for (_, p) in &pts {
            cells.insert(((p[0] / 4.0) as i32, (p[1] / 4.0) as i32));
        }
        assert!(
            cells.len() < 3500,
            "TAC-like data should be clumpy, got {} occupied cells",
            cells.len()
        );
    }

    #[test]
    fn fc_like_is_unit_scaled_and_correlated() {
        let pts = fc_like(5000, 13);
        for (_, p) in &pts {
            for d in 0..10 {
                assert!((0.0..=1.0).contains(&p[d]));
            }
        }
        // Attributes 0 and 1 share the dominant latent factor: their
        // Pearson correlation must be strong.
        let n = pts.len() as f64;
        let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for (_, p) in &pts {
            sx += p[0];
            sy += p[1];
            sxx += p[0] * p[0];
            syy += p[1] * p[1];
            sxy += p[0] * p[1];
        }
        let cov = sxy / n - (sx / n) * (sy / n);
        let vx = sxx / n - (sx / n) * (sx / n);
        let vy = syy / n - (sy / n) * (sy / n);
        let corr = cov / (vx * vy).sqrt();
        assert!(corr > 0.7, "dims 0,1 should correlate strongly: {corr}");
    }

    #[test]
    fn fc_like_contains_exact_duplicates() {
        // The real Forest Cover data repeats whole attribute profiles
        // across adjacent terrain cells; the stand-in must too.
        let pts = fc_like(5000, 17);
        let distinct: std::collections::HashSet<_> = pts
            .iter()
            .map(|(_, p)| p.coords().map(f64::to_bits))
            .collect();
        assert!(distinct.len() <= 1000, "expected ≤ n/5 distinct profiles");
        assert!(distinct.len() > 500, "profiles should mostly all be used");
    }

    #[test]
    fn table2_matches_paper() {
        assert_eq!(TABLE2.len(), 5);
        assert_eq!(TABLE2[3].name, "TAC");
        assert_eq!(TABLE2[3].cardinality, 700_000);
        assert_eq!(TABLE2[4].dims, 10);
    }
}
