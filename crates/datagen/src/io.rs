//! Dataset file I/O: load real datasets (e.g. the actual TAC or Forest
//! Cover files) and persist generated ones.
//!
//! Two formats, no external crates:
//!
//! * **CSV** — one point per line, `D` numeric columns (plus optionally an
//!   id in the first column); delimiter `,`, `;`, whitespace or tab;
//!   `#`-prefixed lines and blank lines are skipped. This reads the UCI
//!   covtype file (after cutting the 10 numeric columns) and typical
//!   astrometric catalog exports.
//! * **binary** — a tiny self-describing little-endian format
//!   (`magic, dims, count, then count × (u64 oid, D × f64)`), exact and
//!   fast for round-tripping generated datasets.

use ann_geom::Point;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from dataset parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying file I/O failure.
    Io(std::io::Error),
    /// A malformed line or field, with its 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// Binary header corrupt or dimensionality mismatch.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IoError::Format(m) => write!(f, "bad dataset file: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

const MAGIC: &[u8; 8] = b"ANNPTS1\0";

/// Splits a CSV/whitespace line into numeric fields.
fn fields(line: &str) -> impl Iterator<Item = &str> {
    line.split(|c: char| c == ',' || c == ';' || c.is_whitespace())
        .filter(|s| !s.is_empty())
}

/// Reads `D`-dimensional points from a delimited text file.
///
/// Lines must have either `D` numeric fields (points are numbered
/// sequentially from 0) or `D + 1` fields with an integer id first.
/// Extra columns beyond `D + 1` are an error — slice your file first, so
/// silent truncation never misreads a dataset.
pub fn read_csv<const D: usize, P: AsRef<Path>>(path: P) -> Result<Vec<(u64, Point<D>)>, IoError> {
    let reader = BufReader::new(std::fs::File::open(path)?);
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = fields(trimmed).collect();
        let lineno = idx + 1;
        let (oid, coords) = match cols.len() {
            n if n == D => (out.len() as u64, &cols[..]),
            n if n == D + 1 => {
                let oid = cols[0].parse::<u64>().map_err(|e| IoError::Parse {
                    line: lineno,
                    message: format!("bad id {:?}: {e}", cols[0]),
                })?;
                (oid, &cols[1..])
            }
            n => {
                return Err(IoError::Parse {
                    line: lineno,
                    message: format!("expected {D} or {} fields, found {n}", D + 1),
                })
            }
        };
        let mut c = [0.0; D];
        for (d, field) in coords.iter().enumerate() {
            c[d] = field.parse::<f64>().map_err(|e| IoError::Parse {
                line: lineno,
                message: format!("bad number {field:?}: {e}"),
            })?;
            if !c[d].is_finite() {
                return Err(IoError::Parse {
                    line: lineno,
                    message: format!("non-finite coordinate {field:?}"),
                });
            }
        }
        out.push((oid, Point::new(c)));
    }
    Ok(out)
}

/// Writes points as CSV (`oid,coord0,...,coordD-1` per line).
pub fn write_csv<const D: usize, P: AsRef<Path>>(
    path: P,
    points: &[(u64, Point<D>)],
) -> Result<(), IoError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    for (oid, p) in points {
        write!(w, "{oid}")?;
        for d in 0..D {
            write!(w, ",{}", p[d])?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes points in the exact binary format.
pub fn write_binary<const D: usize, P: AsRef<Path>>(
    path: P,
    points: &[(u64, Point<D>)],
) -> Result<(), IoError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(D as u32).to_le_bytes())?;
    w.write_all(&(points.len() as u64).to_le_bytes())?;
    for (oid, p) in points {
        w.write_all(&oid.to_le_bytes())?;
        for d in 0..D {
            w.write_all(&p[d].to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads points from the exact binary format.
pub fn read_binary<const D: usize, P: AsRef<Path>>(
    path: P,
) -> Result<Vec<(u64, Point<D>)>, IoError> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut header = [0u8; 8 + 4 + 8];
    r.read_exact(&mut header)?;
    if &header[..8] != MAGIC {
        return Err(IoError::Format("wrong magic".into()));
    }
    let dims = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
    if dims != D {
        return Err(IoError::Format(format!(
            "file holds {dims}-dimensional points, expected {D}"
        )));
    }
    let count = u64::from_le_bytes(header[12..20].try_into().unwrap());
    let mut out = Vec::with_capacity(count as usize);
    let mut rec = vec![0u8; 8 + 8 * D];
    for _ in 0..count {
        r.read_exact(&mut rec)?;
        let oid = u64::from_le_bytes(rec[..8].try_into().unwrap());
        let mut c = [0.0; D];
        for (d, v) in c.iter_mut().enumerate() {
            *v = f64::from_le_bytes(rec[8 + d * 8..16 + d * 8].try_into().unwrap());
        }
        out.push((oid, Point::new(c)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ann-datagen-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn csv_round_trip() {
        let pts = crate::uniform::<3>(200, 9);
        let path = tmp("roundtrip.csv");
        write_csv(&path, &pts).unwrap();
        let back = read_csv::<3, _>(&path).unwrap();
        assert_eq!(back.len(), 200);
        for ((ao, ap), (bo, bp)) in pts.iter().zip(&back) {
            assert_eq!(ao, bo);
            // f64 -> decimal -> f64 is exact with Rust's shortest-repr
            // formatting.
            assert_eq!(ap.coords(), bp.coords());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_without_ids_numbers_sequentially() {
        let path = tmp("noids.csv");
        std::fs::write(&path, "# comment\n1.5, 2.5\n\n3 4\n5;6\n").unwrap();
        let pts = read_csv::<2, _>(&path).unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (0, ann_geom::Point::new([1.5, 2.5])));
        assert_eq!(pts[2], (2, ann_geom::Point::new([5.0, 6.0])));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_rejects_malformed_lines() {
        let path = tmp("bad.csv");
        std::fs::write(&path, "1,2\nX,4\n").unwrap();
        match read_csv::<2, _>(&path) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        std::fs::write(&path, "1,2,3,4\n").unwrap();
        assert!(matches!(
            read_csv::<2, _>(&path),
            Err(IoError::Parse { line: 1, .. })
        ));
        std::fs::write(&path, "1,inf\n").unwrap();
        assert!(read_csv::<2, _>(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn binary_round_trip_is_exact() {
        let pts = crate::fc_like(500, 11);
        let path = tmp("roundtrip.bin");
        write_binary(&path, &pts).unwrap();
        let back = read_binary::<10, _>(&path).unwrap();
        assert_eq!(pts, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn binary_rejects_wrong_dimension_and_magic() {
        let pts = crate::uniform::<2>(10, 1);
        let path = tmp("dims.bin");
        write_binary(&path, &pts).unwrap();
        assert!(matches!(
            read_binary::<3, _>(&path),
            Err(IoError::Format(_))
        ));
        std::fs::write(&path, b"garbage-file-contents").unwrap();
        assert!(read_binary::<2, _>(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
