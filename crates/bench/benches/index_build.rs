//! Index construction benchmarks: MBRQT vs R*-tree bulk loads and the
//! R*-tree's incremental insertion path.

use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_rstar::{RStar, RStarConfig};
use ann_store::{BufferPool, MemDisk};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn benches(c: &mut Criterion) {
    let data = ann_datagen::tac_like(20_000, 1);
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.bench_function("MBRQT bulk 20k", |b| {
        b.iter(|| {
            let pool = Arc::new(BufferPool::new(MemDisk::new(), 1024));
            Mbrqt::bulk_build(pool, &data, &MbrqtConfig::default()).unwrap()
        })
    });
    group.bench_function("R*-tree STR bulk 20k", |b| {
        b.iter(|| {
            let pool = Arc::new(BufferPool::new(MemDisk::new(), 1024));
            RStar::bulk_build(pool, &data, &RStarConfig::default()).unwrap()
        })
    });
    let small = &data[..2_000];
    group.bench_function("R*-tree insert 2k", |b| {
        b.iter(|| {
            let pool = Arc::new(BufferPool::new(MemDisk::new(), 1024));
            let mut tree = RStar::create(pool, &RStarConfig::default()).unwrap();
            for &(oid, p) in small {
                tree.insert(oid, p).unwrap();
            }
            tree
        })
    });
    group.bench_function("MBRQT insert 2k", |b| {
        b.iter(|| {
            let pool = Arc::new(BufferPool::new(MemDisk::new(), 1024));
            let universe = ann_geom::Mbr::new([0.0, -90.0], [360.0, 90.0]);
            let mut tree = Mbrqt::create(pool, universe, &MbrqtConfig::default()).unwrap();
            for &(oid, p) in small {
                tree.insert(oid, p).unwrap();
            }
            tree
        })
    });
    group.finish();
}

criterion_group!(index_build, benches);
criterion_main!(index_build);
