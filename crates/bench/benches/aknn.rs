//! Criterion version of Figures 5 and 6: AkNN over k for MBA vs GORDER on
//! TAC-like (2-D) and FC-like (10-D) data.

use ann_bench::harness::{run, Method, RunConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn benches(c: &mut Criterion) {
    let tac = ann_datagen::tac_like(4_000, 1);
    let fc = ann_datagen::fc_like(2_000, 1);
    let mut group = c.benchmark_group("aknn");
    group.sample_size(10);
    for k in [10usize, 30, 50] {
        for method in [Method::Mba, Method::Gorder] {
            let cfg = RunConfig {
                method,
                k,
                ..Default::default()
            };
            group.bench_function(format!("fig5 {} k={k}", method.name()), |b| {
                b.iter(|| run(&tac, &tac, &cfg))
            });
            group.bench_function(format!("fig6 {} k={k}", method.name()), |b| {
                b.iter(|| run(&fc, &fc, &cfg))
            });
        }
    }
    group.finish();
}

criterion_group!(aknn, benches);
criterion_main!(aknn);
