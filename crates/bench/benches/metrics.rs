//! Microbenchmarks of the distance metrics — the §3.1.2 claim that
//! Algorithm 1 computes NXNDIST in `O(D)` time, measured against the
//! other MBR metrics across dimensionalities.

use ann_core::trace::{PruneReason, TraceEvent, Tracer};
use ann_geom::{
    kernels, max_max_dist_sq, min_min_dist_sq, nxn_dist_sq, Mbr, Point, SoaMbrs, SoaPoints,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_mbr_pairs<const D: usize>(n: usize, seed: u64) -> Vec<(Mbr<D>, Mbr<D>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mk = |rng: &mut StdRng| {
                let mut lo = [0.0; D];
                let mut hi = [0.0; D];
                for d in 0..D {
                    lo[d] = rng.gen_range(-100.0..100.0);
                    hi[d] = lo[d] + rng.gen_range(0.0..50.0);
                }
                Mbr::new(lo, hi)
            };
            (mk(&mut rng), mk(&mut rng))
        })
        .collect()
}

fn bench_dim<const D: usize>(c: &mut Criterion, label: &str) {
    let pairs = random_mbr_pairs::<D>(1024, 42);
    let mut group = c.benchmark_group(format!("metrics/{label}"));
    group.bench_function("NXNDIST", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (m, n) in &pairs {
                acc += nxn_dist_sq(black_box(m), black_box(n));
            }
            acc
        })
    });
    group.bench_function("MAXMAXDIST", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (m, n) in &pairs {
                acc += max_max_dist_sq(black_box(m), black_box(n));
            }
            acc
        })
    });
    group.bench_function("MINMINDIST", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (m, n) in &pairs {
                acc += min_min_dist_sq(black_box(m), black_box(n));
            }
            acc
        })
    });
    group.finish();
}

/// The batched SoA kernels against the scalar AoS loops they replaced in
/// the leaf scans and node probes (DESIGN.md §11) — one candidate set,
/// both layouts, bit-identical outputs by construction (the checker's
/// `kernels` class is the correctness gate; this group is the speed
/// claim). As in `figures kernels`, every pipeline ends with the serial
/// pruning-bound replay the algorithms perform: the scalar side
/// interleaves it with the metric evaluation (the pre-kernel loop shape,
/// whose loop-carried dependency blocks vectorization), the batched side
/// runs the kernel and replays the decisions over the output buffers.
fn bench_kernels<const D: usize>(c: &mut Criterion, label: &str) {
    const N: usize = 4096;
    let mut rng = StdRng::seed_from_u64(20070415);
    let pts: Vec<Point<D>> = (0..N)
        .map(|_| {
            let mut p = [0.0; D];
            for v in p.iter_mut() {
                *v = rng.gen_range(0.0..100.0);
            }
            Point::new(p)
        })
        .collect();
    let mut cols = vec![0.0f64; D * N];
    for d in 0..D {
        for i in 0..N {
            cols[d * N + i] = pts[i].coords()[d];
        }
    }
    let mbrs: Vec<Mbr<D>> = (0..N)
        .map(|_| {
            let mut lo = [0.0; D];
            let mut hi = [0.0; D];
            for d in 0..D {
                lo[d] = rng.gen_range(0.0..100.0);
                hi[d] = lo[d] + rng.gen_range(0.0..5.0);
            }
            Mbr::new(lo, hi)
        })
        .collect();
    let mut lo_cols = vec![0.0f64; D * N];
    let mut hi_cols = vec![0.0f64; D * N];
    for d in 0..D {
        for i in 0..N {
            lo_cols[d * N + i] = mbrs[i].lo[d];
            hi_cols[d * N + i] = mbrs[i].hi[d];
        }
    }
    let q = pts[0];
    let qm = mbrs[0];

    fn replay(omin: &[f64], oup: &[f64]) -> f64 {
        let mut bound = f64::INFINITY;
        for i in 0..omin.len() {
            if omin[i] <= bound {
                bound = bound.min(oup[i]);
            }
        }
        bound
    }

    let mut group = c.benchmark_group(format!("kernels/{label}"));
    group.bench_function("point-scan/scalar", |b| {
        let mut out = vec![0.0f64; N];
        b.iter(|| {
            let mut best = f64::INFINITY;
            let mut improved = 0u64;
            for (o, p) in out.iter_mut().zip(&pts) {
                let d2 = black_box(&q).dist_sq(p);
                *o = d2;
                if d2 < best {
                    best = d2;
                    improved += 1;
                }
            }
            best + improved as f64
        })
    });
    group.bench_function("point-scan/batched", |b| {
        let mut out = Vec::with_capacity(N);
        b.iter(|| {
            let sp = SoaPoints::new(N, &cols);
            kernels::dist_sq_batch(black_box(&q), &sp, &mut out);
            let mut best = f64::INFINITY;
            let mut improved = 0u64;
            for &d2 in out.iter() {
                if d2 < best {
                    best = d2;
                    improved += 1;
                }
            }
            best + improved as f64
        })
    });
    group.bench_function("leaf-scan/scalar", |b| {
        let mut omin = vec![0.0f64; N];
        let mut oup = vec![0.0f64; N];
        b.iter(|| {
            let mut bound = f64::INFINITY;
            for i in 0..N {
                let pm = Mbr::from_point(&pts[i]);
                let mind = min_min_dist_sq(black_box(&qm), &pm);
                let up = nxn_dist_sq(black_box(&qm), &pm);
                omin[i] = mind;
                oup[i] = up;
                if mind <= bound {
                    bound = bound.min(up);
                }
            }
            bound
        })
    });
    group.bench_function("leaf-scan/batched", |b| {
        let mut omin = Vec::with_capacity(N);
        let mut oup = Vec::with_capacity(N);
        b.iter(|| {
            let sm = SoaPoints::new(N, &cols).as_mbrs();
            kernels::min_min_dist_sq_batch(black_box(&qm), &sm, &mut omin);
            kernels::nxn_dist_sq_batch(black_box(&qm), &sm, &mut oup);
            replay(&omin, &oup)
        })
    });
    group.bench_function("mbr-probe/scalar", |b| {
        let mut omin = vec![0.0f64; N];
        let mut oup = vec![0.0f64; N];
        b.iter(|| {
            let mut bound = f64::INFINITY;
            for i in 0..N {
                let mind = min_min_dist_sq(black_box(&qm), &mbrs[i]);
                let up = nxn_dist_sq(black_box(&qm), &mbrs[i]);
                omin[i] = mind;
                oup[i] = up;
                if mind <= bound {
                    bound = bound.min(up);
                }
            }
            bound
        })
    });
    group.bench_function("mbr-probe/batched", |b| {
        let mut omin = Vec::with_capacity(N);
        let mut oup = Vec::with_capacity(N);
        b.iter(|| {
            let sm = SoaMbrs::new(N, &lo_cols, &hi_cols);
            kernels::min_min_dist_sq_batch(black_box(&qm), &sm, &mut omin);
            kernels::nxn_dist_sq_batch(black_box(&qm), &sm, &mut oup);
            replay(&omin, &oup)
        })
    });
    group.finish();
}

/// The observability-layer overhead policy: a hot loop with a disabled
/// [`Tracer`] call per iteration must be indistinguishable from the same
/// loop without it (the event closure is never run, the call is a single
/// `Option` check).
fn bench_trace_noop(c: &mut Criterion) {
    let pairs = random_mbr_pairs::<2>(1024, 7);
    let mut group = c.benchmark_group("trace/noop-sink");
    group.bench_function("baseline", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (m, n) in &pairs {
                acc += nxn_dist_sq(black_box(m), black_box(n));
            }
            acc
        })
    });
    group.bench_function("disabled-tracer", |b| {
        let tracer = Tracer::disabled();
        b.iter(|| {
            let mut acc = 0.0;
            for (m, n) in &pairs {
                acc += nxn_dist_sq(black_box(m), black_box(n));
                tracer.event(|| TraceEvent::Pruned {
                    metric: "NXNDIST",
                    reason: PruneReason::OnProbe,
                    count: 1,
                });
            }
            acc
        })
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_dim::<2>(c, "2d");
    bench_dim::<4>(c, "4d");
    bench_dim::<6>(c, "6d");
    bench_dim::<10>(c, "10d");
    bench_kernels::<2>(c, "2d");
    bench_kernels::<8>(c, "8d");
    bench_kernels::<10>(c, "10d");
    bench_trace_noop(c);
}

criterion_group!(metrics, benches);
criterion_main!(metrics);
