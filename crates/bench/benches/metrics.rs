//! Microbenchmarks of the distance metrics — the §3.1.2 claim that
//! Algorithm 1 computes NXNDIST in `O(D)` time, measured against the
//! other MBR metrics across dimensionalities.

use ann_core::trace::{PruneReason, TraceEvent, Tracer};
use ann_geom::{max_max_dist_sq, min_min_dist_sq, nxn_dist_sq, Mbr};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_mbr_pairs<const D: usize>(n: usize, seed: u64) -> Vec<(Mbr<D>, Mbr<D>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mk = |rng: &mut StdRng| {
                let mut lo = [0.0; D];
                let mut hi = [0.0; D];
                for d in 0..D {
                    lo[d] = rng.gen_range(-100.0..100.0);
                    hi[d] = lo[d] + rng.gen_range(0.0..50.0);
                }
                Mbr::new(lo, hi)
            };
            (mk(&mut rng), mk(&mut rng))
        })
        .collect()
}

fn bench_dim<const D: usize>(c: &mut Criterion, label: &str) {
    let pairs = random_mbr_pairs::<D>(1024, 42);
    let mut group = c.benchmark_group(format!("metrics/{label}"));
    group.bench_function("NXNDIST", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (m, n) in &pairs {
                acc += nxn_dist_sq(black_box(m), black_box(n));
            }
            acc
        })
    });
    group.bench_function("MAXMAXDIST", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (m, n) in &pairs {
                acc += max_max_dist_sq(black_box(m), black_box(n));
            }
            acc
        })
    });
    group.bench_function("MINMINDIST", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (m, n) in &pairs {
                acc += min_min_dist_sq(black_box(m), black_box(n));
            }
            acc
        })
    });
    group.finish();
}

/// The observability-layer overhead policy: a hot loop with a disabled
/// [`Tracer`] call per iteration must be indistinguishable from the same
/// loop without it (the event closure is never run, the call is a single
/// `Option` check).
fn bench_trace_noop(c: &mut Criterion) {
    let pairs = random_mbr_pairs::<2>(1024, 7);
    let mut group = c.benchmark_group("trace/noop-sink");
    group.bench_function("baseline", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (m, n) in &pairs {
                acc += nxn_dist_sq(black_box(m), black_box(n));
            }
            acc
        })
    });
    group.bench_function("disabled-tracer", |b| {
        let tracer = Tracer::disabled();
        b.iter(|| {
            let mut acc = 0.0;
            for (m, n) in &pairs {
                acc += nxn_dist_sq(black_box(m), black_box(n));
                tracer.event(|| TraceEvent::Pruned {
                    metric: "NXNDIST",
                    reason: PruneReason::OnProbe,
                    count: 1,
                });
            }
            acc
        })
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_dim::<2>(c, "2d");
    bench_dim::<4>(c, "4d");
    bench_dim::<6>(c, "6d");
    bench_dim::<10>(c, "10d");
    bench_trace_noop(c);
}

criterion_group!(metrics, benches);
criterion_main!(metrics);
