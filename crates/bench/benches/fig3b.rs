//! Criterion version of Figure 3(b): MBA vs GORDER over buffer pool sizes
//! on (bench-sized) FC-like 10-D data.

use ann_bench::harness::{run, Method, RunConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn benches(c: &mut Criterion) {
    let data = ann_datagen::fc_like(4_000, 1);
    let mut group = c.benchmark_group("fig3b");
    group.sample_size(10);
    for (label, frames) in [
        ("512KB", 64usize),
        ("1MB", 128),
        ("4MB", 512),
        ("8MB", 1024),
    ] {
        for method in [Method::Mba, Method::Gorder] {
            let cfg = RunConfig {
                method,
                pool_frames: frames,
                ..Default::default()
            };
            group.bench_function(format!("{} {label}", method.name()), |b| {
                b.iter(|| run(&data, &data, &cfg))
            });
        }
    }
    group.finish();
}

criterion_group!(fig3b, benches);
criterion_main!(fig3b);
