//! Criterion version of Figure 4: dimensionality sweep (2D/4D/6D) for MBA
//! vs GORDER.

use ann_bench::harness::{run, Method, RunConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_dim<const D: usize>(c: &mut Criterion, label: &str) {
    let data = ann_datagen::synthetic_nd::<D>(5_000, 1);
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for method in [Method::Mba, Method::Gorder] {
        let cfg = RunConfig {
            method,
            ..Default::default()
        };
        group.bench_function(format!("{} {label}", method.name()), |b| {
            b.iter(|| run(&data, &data, &cfg))
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_dim::<2>(c, "2D");
    bench_dim::<4>(c, "4D");
    bench_dim::<6>(c, "6D");
}

criterion_group!(fig4, benches);
criterion_main!(fig4);
