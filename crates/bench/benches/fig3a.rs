//! Criterion version of Figure 3(a): every method × metric on a
//! (bench-sized) TAC-like ANN self-join.

use ann_bench::harness::{run, Method, Metric, RunConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn benches(c: &mut Criterion) {
    let data = ann_datagen::tac_like(5_000, 1);
    let mut group = c.benchmark_group("fig3a");
    group.sample_size(10);
    for (method, metric) in [
        (Method::Bnn, Metric::MaxMax),
        (Method::Bnn, Metric::Nxn),
        (Method::Rba, Metric::MaxMax),
        (Method::Rba, Metric::Nxn),
        (Method::Mba, Metric::MaxMax),
        (Method::Mba, Metric::Nxn),
    ] {
        let cfg = RunConfig {
            method,
            metric,
            ..Default::default()
        };
        group.bench_function(format!("{} {}", method.name(), metric.name()), |b| {
            b.iter(|| run(&data, &data, &cfg))
        });
    }
    let gorder = RunConfig {
        method: Method::Gorder,
        ..Default::default()
    };
    group.bench_function("GORDER", |b| b.iter(|| run(&data, &data, &gorder)));
    group.finish();
}

criterion_group!(fig3a, benches);
criterion_main!(fig3a);
