//! Run one (algorithm, metric, dataset, k) cell and measure it.
//!
//! All index-based methods dispatch through the unified
//! [`ann_core::query::run`] entrypoint; GORDER (which lives downstream of
//! `ann-core`) goes through its own traced entrypoint. When tracing is
//! enabled ([`enable_tracing`]) each run records into a
//! [`RecordingSink`] and writes one `ExecutionReport` JSON per run.

use ann_core::mba::{Expansion, Traversal};
use ann_core::query::{Algorithm, AnnRequest, Input, MetricChoice, NoIndex};
use ann_core::stats::AnnOutput;
use ann_core::trace::{RecordingSink, Side, TraceSink, Tracer};
use ann_geom::Point;
use ann_gorder::{gorder_join_traced, GorderConfig};
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_rstar::{RStar, RStarConfig};
use ann_store::{BufferPool, MemDisk};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Simulated cost of one physical page transfer, in seconds.
///
/// The paper's testbed (1.2 GHz Pentium M laptop disk, 2007) serviced a
/// random 8 KB page in roughly 10 ms; the figures' "I/O" bars are page
/// faults × this constant.
pub const IO_SECONDS_PER_PAGE: f64 = 0.010;

/// Default buffer pool: the paper's 64 frames = 512 KiB.
pub const DEFAULT_POOL_FRAMES: usize = 64;

/// Pruning metric selector (runtime dispatch over the compile-time
/// [`ann_geom::PruneMetric`] strategies).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Metric {
    /// The paper's NXNDIST.
    Nxn,
    /// The traditional MAXMAXDIST.
    MaxMax,
}

impl Metric {
    /// Display name matching the paper's bar labels.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Nxn => "NXNDIST",
            Metric::MaxMax => "MAXMAXDIST",
        }
    }
}

/// Algorithm selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Method {
    /// MBRQT-based ANN (the paper's contribution).
    Mba,
    /// The same traversal over R*-trees.
    Rba,
    /// Batched NN over an R*-tree (Zhang et al.).
    Bnn,
    /// Index nested loops (one best-first search per query).
    Mnn,
    /// Spatial-hash grid, no index (Zhang et al.'s HNN).
    Hnn,
    /// The GORDER block nested-loops join (Xia et al.).
    Gorder,
}

impl Method {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Mba => "MBA",
            Method::Rba => "RBA",
            Method::Bnn => "BNN",
            Method::Mnn => "MNN",
            Method::Hnn => "HNN",
            Method::Gorder => "GORDER",
        }
    }
}

/// One experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Algorithm under test.
    pub method: Method,
    /// Pruning metric (ignored by GORDER, which has no metric knob).
    pub metric: Metric,
    /// Neighbors per query point.
    pub k: usize,
    /// Self-join mode.
    pub exclude_self: bool,
    /// Buffer pool frames (64 = the paper's 512 KiB).
    pub pool_frames: usize,
    /// Traversal order for MBA/RBA.
    pub traversal: Traversal,
    /// Expansion strategy for MBA/RBA.
    pub expansion: Expansion,
    /// MBRQT stores tight subtree MBRs (ablation flag).
    pub use_subtree_mbrs: bool,
    /// MBRQT decomposition levels per disk node (0 = adaptive default;
    /// 1 = the naive one-level-per-page layout, for the packing ablation).
    pub mbrqt_levels_per_node: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            method: Method::Mba,
            metric: Metric::Nxn,
            k: 1,
            exclude_self: true,
            pool_frames: DEFAULT_POOL_FRAMES,
            traversal: Traversal::DepthFirst,
            expansion: Expansion::Bidirectional,
            use_subtree_mbrs: true,
            mbrqt_levels_per_node: 0,
        }
    }
}

/// Measured outcome of one run.
#[derive(Clone, Debug, Serialize)]
pub struct Measurement {
    /// `"MBA NXNDIST"`-style label.
    pub label: String,
    /// Query-phase wall time in seconds (the "CPU" bar).
    pub cpu_seconds: f64,
    /// Physical page reads + writes during the query phase.
    pub physical_pages: u64,
    /// Simulated I/O seconds (`physical_pages * IO_SECONDS_PER_PAGE`).
    pub io_seconds: f64,
    /// Logical page reads.
    pub logical_reads: u64,
    /// Number of result pairs produced.
    pub result_pairs: usize,
    /// Distance computations performed.
    pub distance_computations: u64,
    /// Entries enqueued across all queues.
    pub enqueued: u64,
    /// Time spent building indices / sorted files (not part of the bars).
    pub build_seconds: f64,
}

impl Measurement {
    fn from_output(label: String, output: &AnnOutput, cpu: f64, build: f64) -> Self {
        let io = output.stats.io;
        Measurement {
            label,
            cpu_seconds: cpu,
            physical_pages: io.physical_total(),
            io_seconds: io.physical_total() as f64 * IO_SECONDS_PER_PAGE,
            logical_reads: io.logical_reads,
            result_pairs: output.results.len(),
            distance_computations: output.stats.distance_computations,
            enqueued: output.stats.enqueued,
            build_seconds: build,
        }
    }

    /// CPU + simulated I/O, the height of the paper's stacked bars.
    pub fn total_seconds(&self) -> f64 {
        self.cpu_seconds + self.io_seconds
    }

    /// The per-run work counters (distance computations, enqueued).
    pub fn counters(&self) -> (u64, u64) {
        (self.distance_computations, self.enqueued)
    }
}

/// Directory for per-run `ExecutionReport` JSON files, once tracing is
/// enabled; paired with a process-wide run sequence number.
static TRACE_DIR: OnceLock<PathBuf> = OnceLock::new();
static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Turns on per-run execution tracing for every subsequent [`run`] in
/// this process: each run records into a [`RecordingSink`] and writes
/// `<seq>_<label>.json` into `dir`. Returns an error if the directory
/// cannot be created; enabling twice keeps the first directory.
pub fn enable_tracing(dir: impl Into<PathBuf>) -> std::io::Result<()> {
    let dir = dir.into();
    std::fs::create_dir_all(&dir)?;
    let _ = TRACE_DIR.set(dir);
    Ok(())
}

/// Runs one configured experiment cell on the given datasets.
///
/// Builds whatever structures the method needs into a fresh pool, clears
/// the pool (cold cache), then measures the query phase. With tracing
/// enabled ([`enable_tracing`]) the run additionally writes one
/// `ExecutionReport` JSON; the measured counters are identical either
/// way (the tracer's no-op path is free).
pub fn run<const D: usize>(
    r: &[(u64, Point<D>)],
    s: &[(u64, Point<D>)],
    cfg: &RunConfig,
) -> Measurement {
    let Some(dir) = TRACE_DIR.get() else {
        return run_with_sink(r, s, cfg, None);
    };
    let sink = RecordingSink::new();
    let m = run_with_sink(r, s, cfg, Some(&sink));
    let report = sink.report(&m.label);
    let seq = TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
    let slug: String = m
        .label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    let path = dir.join(format!("{seq:04}_{slug}.json"));
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("warning: could not write trace report {}: {e}", path.display());
    }
    m
}

/// [`run`] against an explicit optional [`TraceSink`] (the sink used when
/// process-wide tracing is enabled; tests pass their own).
pub fn run_with_sink<const D: usize>(
    r: &[(u64, Point<D>)],
    s: &[(u64, Point<D>)],
    cfg: &RunConfig,
    sink: Option<&dyn TraceSink>,
) -> Measurement {
    let pool = Arc::new(BufferPool::new(MemDisk::new(), cfg.pool_frames.max(8)));
    let label = match cfg.method {
        Method::Gorder | Method::Hnn => cfg.method.name().to_string(),
        _ => format!("{} {}", cfg.method.name(), cfg.metric.name()),
    };

    eprintln!(
        "  [harness] {} (k={}, pool={} frames, |R|={}, |S|={})",
        label,
        cfg.k,
        cfg.pool_frames,
        r.len(),
        s.len()
    );
    let tracer = sink.map_or(Tracer::disabled(), Tracer::new);
    let metric = match cfg.metric {
        Metric::Nxn => MetricChoice::Nxn,
        Metric::MaxMax => MetricChoice::MaxMax,
    };
    let request = |alg: Algorithm| {
        let mut req = AnnRequest::new(alg)
            .k(cfg.k)
            .exclude_self(cfg.exclude_self)
            .metric(metric);
        if let Some(sink) = sink {
            req = req.trace(sink);
        }
        req
    };
    let mba_alg = Algorithm::Mba {
        traversal: cfg.traversal,
        expansion: cfg.expansion,
        threads: 1,
    };

    match cfg.method {
        Method::Mba => {
            let qt_cfg = MbrqtConfig {
                use_subtree_mbrs: cfg.use_subtree_mbrs,
                levels_per_node: cfg.mbrqt_levels_per_node,
                ..Default::default()
            };
            let t0 = Instant::now();
            let ir = Mbrqt::bulk_build_traced(pool.clone(), r, &qt_cfg, Side::R, tracer)
                .expect("build I_R");
            let is = Mbrqt::bulk_build_traced(pool.clone(), s, &qt_cfg, Side::S, tracer)
                .expect("build I_S");
            let build = t0.elapsed().as_secs_f64();
            prepare_query_phase(&pool, cfg.pool_frames);
            let t0 = Instant::now();
            let out = request(mba_alg)
                .run(Input::Index(&ir), Input::Index(&is))
                .expect("MBA run");
            Measurement::from_output(label, &out, t0.elapsed().as_secs_f64(), build)
        }
        Method::Rba => {
            let rs_cfg = RStarConfig::default();
            let t0 = Instant::now();
            let ir =
                RStar::bulk_build_traced(pool.clone(), r, &rs_cfg, Side::R, tracer).expect("build");
            let is =
                RStar::bulk_build_traced(pool.clone(), s, &rs_cfg, Side::S, tracer).expect("build");
            let build = t0.elapsed().as_secs_f64();
            prepare_query_phase(&pool, cfg.pool_frames);
            let t0 = Instant::now();
            let out = request(mba_alg)
                .run(Input::Index(&ir), Input::Index(&is))
                .expect("RBA run");
            Measurement::from_output(label, &out, t0.elapsed().as_secs_f64(), build)
        }
        Method::Bnn => {
            let t0 = Instant::now();
            let is = RStar::bulk_build_traced(pool.clone(), s, &RStarConfig::default(), Side::S, tracer)
                .expect("build");
            let build = t0.elapsed().as_secs_f64();
            prepare_query_phase(&pool, cfg.pool_frames);
            let t0 = Instant::now();
            let out = request(Algorithm::Bnn { group_size: 256 })
                .run(Input::<D, NoIndex>::Points(r), Input::Index(&is))
                .expect("BNN run");
            Measurement::from_output(label, &out, t0.elapsed().as_secs_f64(), build)
        }
        Method::Mnn => {
            let qt_cfg = MbrqtConfig::default();
            let t0 = Instant::now();
            let ir = Mbrqt::bulk_build_traced(pool.clone(), r, &qt_cfg, Side::R, tracer)
                .expect("build");
            let is = RStar::bulk_build_traced(pool.clone(), s, &RStarConfig::default(), Side::S, tracer)
                .expect("build");
            let build = t0.elapsed().as_secs_f64();
            prepare_query_phase(&pool, cfg.pool_frames);
            let t0 = Instant::now();
            let out = request(Algorithm::Mnn)
                .run(Input::Index(&ir), Input::Index(&is))
                .expect("MNN run");
            Measurement::from_output(label, &out, t0.elapsed().as_secs_f64(), build)
        }
        Method::Hnn => {
            // HNN is entirely in-memory (the paper's §2 notes it avoids
            // index construction); no pages are charged.
            prepare_query_phase(&pool, cfg.pool_frames);
            let t0 = Instant::now();
            let out = request(Algorithm::hnn())
                .run(Input::<D, NoIndex>::Points(r), Input::<D, NoIndex>::Points(s))
                .expect("HNN run");
            Measurement::from_output(label, &out, t0.elapsed().as_secs_f64(), 0.0)
        }
        Method::Gorder => {
            // GORDER's sort phase is part of its method; the paper charges
            // it to the run, and so do we (build_seconds stays 0).
            prepare_query_phase(&pool, cfg.pool_frames);
            let g_cfg = GorderConfig {
                k: cfg.k,
                exclude_self: cfg.exclude_self,
                ..Default::default()
            };
            let t0 = Instant::now();
            let out = gorder_join_traced(r, s, pool.clone(), &g_cfg, tracer).expect("GORDER run");
            Measurement::from_output(label, &out, t0.elapsed().as_secs_f64(), 0.0)
        }
    }
}

/// Clears the pool (cold cache), applies the experiment's capacity, and
/// zeroes the I/O counters.
fn prepare_query_phase(pool: &BufferPool, frames: usize) {
    pool.clear().expect("clear pool");
    pool.set_capacity(frames.max(8)).expect("set capacity");
    pool.reset_stats();
}
