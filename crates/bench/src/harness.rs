//! Run one (algorithm, metric, dataset, k) cell and measure it.

use ann_core::bnn::{bnn, BnnConfig};
use ann_core::hnn::{hnn, HnnConfig};
use ann_core::mba::{mba, Expansion, MbaConfig, Traversal};
use ann_core::mnn::{mnn, MnnConfig};
use ann_core::stats::AnnOutput;
use ann_geom::{MaxMaxDist, NxnDist, Point};
use ann_gorder::{gorder_join, GorderConfig};
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_rstar::{RStar, RStarConfig};
use ann_store::{BufferPool, MemDisk};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Simulated cost of one physical page transfer, in seconds.
///
/// The paper's testbed (1.2 GHz Pentium M laptop disk, 2007) serviced a
/// random 8 KB page in roughly 10 ms; the figures' "I/O" bars are page
/// faults × this constant.
pub const IO_SECONDS_PER_PAGE: f64 = 0.010;

/// Default buffer pool: the paper's 64 frames = 512 KiB.
pub const DEFAULT_POOL_FRAMES: usize = 64;

/// Pruning metric selector (runtime dispatch over the compile-time
/// [`ann_geom::PruneMetric`] strategies).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Metric {
    /// The paper's NXNDIST.
    Nxn,
    /// The traditional MAXMAXDIST.
    MaxMax,
}

impl Metric {
    /// Display name matching the paper's bar labels.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Nxn => "NXNDIST",
            Metric::MaxMax => "MAXMAXDIST",
        }
    }
}

/// Algorithm selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Method {
    /// MBRQT-based ANN (the paper's contribution).
    Mba,
    /// The same traversal over R*-trees.
    Rba,
    /// Batched NN over an R*-tree (Zhang et al.).
    Bnn,
    /// Index nested loops (one best-first search per query).
    Mnn,
    /// Spatial-hash grid, no index (Zhang et al.'s HNN).
    Hnn,
    /// The GORDER block nested-loops join (Xia et al.).
    Gorder,
}

impl Method {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Mba => "MBA",
            Method::Rba => "RBA",
            Method::Bnn => "BNN",
            Method::Mnn => "MNN",
            Method::Hnn => "HNN",
            Method::Gorder => "GORDER",
        }
    }
}

/// One experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Algorithm under test.
    pub method: Method,
    /// Pruning metric (ignored by GORDER, which has no metric knob).
    pub metric: Metric,
    /// Neighbors per query point.
    pub k: usize,
    /// Self-join mode.
    pub exclude_self: bool,
    /// Buffer pool frames (64 = the paper's 512 KiB).
    pub pool_frames: usize,
    /// Traversal order for MBA/RBA.
    pub traversal: Traversal,
    /// Expansion strategy for MBA/RBA.
    pub expansion: Expansion,
    /// MBRQT stores tight subtree MBRs (ablation flag).
    pub use_subtree_mbrs: bool,
    /// MBRQT decomposition levels per disk node (0 = adaptive default;
    /// 1 = the naive one-level-per-page layout, for the packing ablation).
    pub mbrqt_levels_per_node: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            method: Method::Mba,
            metric: Metric::Nxn,
            k: 1,
            exclude_self: true,
            pool_frames: DEFAULT_POOL_FRAMES,
            traversal: Traversal::DepthFirst,
            expansion: Expansion::Bidirectional,
            use_subtree_mbrs: true,
            mbrqt_levels_per_node: 0,
        }
    }
}

/// Measured outcome of one run.
#[derive(Clone, Debug, Serialize)]
pub struct Measurement {
    /// `"MBA NXNDIST"`-style label.
    pub label: String,
    /// Query-phase wall time in seconds (the "CPU" bar).
    pub cpu_seconds: f64,
    /// Physical page reads + writes during the query phase.
    pub physical_pages: u64,
    /// Simulated I/O seconds (`physical_pages * IO_SECONDS_PER_PAGE`).
    pub io_seconds: f64,
    /// Logical page reads.
    pub logical_reads: u64,
    /// Number of result pairs produced.
    pub result_pairs: usize,
    /// Distance computations performed.
    pub distance_computations: u64,
    /// Entries enqueued across all queues.
    pub enqueued: u64,
    /// Time spent building indices / sorted files (not part of the bars).
    pub build_seconds: f64,
}

impl Measurement {
    fn from_output(label: String, output: &AnnOutput, cpu: f64, build: f64) -> Self {
        let io = output.stats.io;
        Measurement {
            label,
            cpu_seconds: cpu,
            physical_pages: io.physical_total(),
            io_seconds: io.physical_total() as f64 * IO_SECONDS_PER_PAGE,
            logical_reads: io.logical_reads,
            result_pairs: output.results.len(),
            distance_computations: output.stats.distance_computations,
            enqueued: output.stats.enqueued,
            build_seconds: build,
        }
    }

    /// CPU + simulated I/O, the height of the paper's stacked bars.
    pub fn total_seconds(&self) -> f64 {
        self.cpu_seconds + self.io_seconds
    }

    /// The per-run work counters (distance computations, enqueued).
    pub fn counters(&self) -> (u64, u64) {
        (self.distance_computations, self.enqueued)
    }
}

/// Runs one configured experiment cell on the given datasets.
///
/// Builds whatever structures the method needs into a fresh pool, clears
/// the pool (cold cache), then measures the query phase.
pub fn run<const D: usize>(
    r: &[(u64, Point<D>)],
    s: &[(u64, Point<D>)],
    cfg: &RunConfig,
) -> Measurement {
    let pool = Arc::new(BufferPool::new(MemDisk::new(), cfg.pool_frames.max(8)));
    let label = match cfg.method {
        Method::Gorder | Method::Hnn => cfg.method.name().to_string(),
        _ => format!("{} {}", cfg.method.name(), cfg.metric.name()),
    };

    eprintln!(
        "  [harness] {} (k={}, pool={} frames, |R|={}, |S|={})",
        label,
        cfg.k,
        cfg.pool_frames,
        r.len(),
        s.len()
    );
    let mba_cfg = MbaConfig {
        k: cfg.k,
        traversal: cfg.traversal,
        expansion: cfg.expansion,
        exclude_self: cfg.exclude_self,
    };

    match cfg.method {
        Method::Mba => {
            let qt_cfg = MbrqtConfig {
                use_subtree_mbrs: cfg.use_subtree_mbrs,
                levels_per_node: cfg.mbrqt_levels_per_node,
                ..Default::default()
            };
            let t0 = Instant::now();
            let ir = Mbrqt::bulk_build(pool.clone(), r, &qt_cfg).expect("build I_R");
            let is = Mbrqt::bulk_build(pool.clone(), s, &qt_cfg).expect("build I_S");
            let build = t0.elapsed().as_secs_f64();
            prepare_query_phase(&pool, cfg.pool_frames);
            let t0 = Instant::now();
            let out = match cfg.metric {
                Metric::Nxn => mba::<D, NxnDist, _, _>(&ir, &is, &mba_cfg),
                Metric::MaxMax => mba::<D, MaxMaxDist, _, _>(&ir, &is, &mba_cfg),
            }
            .expect("MBA run");
            Measurement::from_output(label, &out, t0.elapsed().as_secs_f64(), build)
        }
        Method::Rba => {
            let t0 = Instant::now();
            let ir = RStar::bulk_build(pool.clone(), r, &RStarConfig::default()).expect("build");
            let is = RStar::bulk_build(pool.clone(), s, &RStarConfig::default()).expect("build");
            let build = t0.elapsed().as_secs_f64();
            prepare_query_phase(&pool, cfg.pool_frames);
            let t0 = Instant::now();
            let out = match cfg.metric {
                Metric::Nxn => mba::<D, NxnDist, _, _>(&ir, &is, &mba_cfg),
                Metric::MaxMax => mba::<D, MaxMaxDist, _, _>(&ir, &is, &mba_cfg),
            }
            .expect("RBA run");
            Measurement::from_output(label, &out, t0.elapsed().as_secs_f64(), build)
        }
        Method::Bnn => {
            let t0 = Instant::now();
            let is = RStar::bulk_build(pool.clone(), s, &RStarConfig::default()).expect("build");
            let build = t0.elapsed().as_secs_f64();
            prepare_query_phase(&pool, cfg.pool_frames);
            let bnn_cfg = BnnConfig {
                k: cfg.k,
                group_size: 256,
                exclude_self: cfg.exclude_self,
            };
            let t0 = Instant::now();
            let out = match cfg.metric {
                Metric::Nxn => bnn::<D, NxnDist, _>(r, &is, &bnn_cfg),
                Metric::MaxMax => bnn::<D, MaxMaxDist, _>(r, &is, &bnn_cfg),
            }
            .expect("BNN run");
            Measurement::from_output(label, &out, t0.elapsed().as_secs_f64(), build)
        }
        Method::Mnn => {
            let qt_cfg = MbrqtConfig::default();
            let t0 = Instant::now();
            let ir = Mbrqt::bulk_build(pool.clone(), r, &qt_cfg).expect("build");
            let is = RStar::bulk_build(pool.clone(), s, &RStarConfig::default()).expect("build");
            let build = t0.elapsed().as_secs_f64();
            prepare_query_phase(&pool, cfg.pool_frames);
            let mnn_cfg = MnnConfig {
                k: cfg.k,
                exclude_self: cfg.exclude_self,
            };
            let t0 = Instant::now();
            let out = match cfg.metric {
                Metric::Nxn => mnn::<D, NxnDist, _, _>(&ir, &is, &mnn_cfg),
                Metric::MaxMax => mnn::<D, MaxMaxDist, _, _>(&ir, &is, &mnn_cfg),
            }
            .expect("MNN run");
            Measurement::from_output(label, &out, t0.elapsed().as_secs_f64(), build)
        }
        Method::Hnn => {
            // HNN is entirely in-memory (the paper's §2 notes it avoids
            // index construction); no pages are charged.
            prepare_query_phase(&pool, cfg.pool_frames);
            let h_cfg = HnnConfig {
                k: cfg.k,
                exclude_self: cfg.exclude_self,
                ..Default::default()
            };
            let t0 = Instant::now();
            let out = hnn(r, s, &h_cfg);
            Measurement::from_output(label, &out, t0.elapsed().as_secs_f64(), 0.0)
        }
        Method::Gorder => {
            // GORDER's sort phase is part of its method; the paper charges
            // it to the run, and so do we (build_seconds stays 0).
            prepare_query_phase(&pool, cfg.pool_frames);
            let g_cfg = GorderConfig {
                k: cfg.k,
                exclude_self: cfg.exclude_self,
                ..Default::default()
            };
            let t0 = Instant::now();
            let out = gorder_join(r, s, pool.clone(), &g_cfg).expect("GORDER run");
            Measurement::from_output(label, &out, t0.elapsed().as_secs_f64(), 0.0)
        }
    }
}

/// Clears the pool (cold cache), applies the experiment's capacity, and
/// zeroes the I/O counters.
fn prepare_query_phase(pool: &BufferPool, frames: usize) {
    pool.clear().expect("clear pool");
    pool.set_capacity(frames.max(8)).expect("set capacity");
    pool.reset_stats();
}
