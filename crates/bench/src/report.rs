//! Table formatting and JSON dumping for experiment results.

use crate::harness::Measurement;
use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// A complete regenerated figure: its id, workload description, and rows.
#[derive(Clone, Debug, Serialize)]
pub struct Figure {
    /// Paper figure id (e.g. `"fig3a"`).
    pub id: String,
    /// Human description of the workload.
    pub workload: String,
    /// One measurement per bar/series point; `group` labels the x-position
    /// (e.g. buffer size, dimensionality, k).
    pub rows: Vec<FigureRow>,
}

/// One bar / series point.
#[derive(Clone, Debug, Serialize)]
pub struct FigureRow {
    /// X-axis group (dataset, buffer size, dimensionality, k, ...).
    pub group: String,
    /// The measurement.
    #[serde(flatten)]
    pub measurement: Measurement,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: &str, workload: &str) -> Self {
        Figure {
            id: id.to_string(),
            workload: workload.to_string(),
            rows: Vec::new(),
        }
    }

    /// Adds one measurement under an x-axis group.
    pub fn push(&mut self, group: &str, m: Measurement) {
        self.rows.push(FigureRow {
            group: group.to_string(),
            measurement: m,
        });
    }

    /// Renders the figure as an aligned text table (the same rows/series
    /// the paper plots).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.workload));
        out.push_str(&format!(
            "{:<16} {:<18} {:>9} {:>9} {:>9} {:>10} {:>12} {:>10}\n",
            "group", "method", "cpu(s)", "io(s)", "total(s)", "pages", "dist-comps", "enqueued"
        ));
        for row in &self.rows {
            let m = &row.measurement;
            out.push_str(&format!(
                "{:<16} {:<18} {:>9.3} {:>9.3} {:>9.3} {:>10} {:>12} {:>10}\n",
                row.group,
                m.label,
                m.cpu_seconds,
                m.io_seconds,
                m.total_seconds(),
                m.physical_pages,
                m.distance_computations,
                m.enqueued,
            ));
        }
        out
    }

    /// Writes the figure as JSON under `dir/<id>.json` (for EXPERIMENTS.md
    /// bookkeeping). Creates the directory when missing.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(path)?;
        let body = serde_json::to_string_pretty(self).expect("serializable");
        f.write_all(body.as_bytes())
    }
}

/// One row of the thread-scaling study (`BENCH_parallel_scaling`).
#[derive(Clone, Debug, Serialize)]
pub struct ScalingRow {
    /// Pool variant the row ran against: `"sharded"` or `"single-mutex"`.
    pub pool: String,
    /// Worker threads handed to `mba_parallel`.
    pub threads: usize,
    /// Wall-clock seconds for the join.
    pub wall_seconds: f64,
    /// Wall(1 thread, same pool) / wall(this row).
    pub speedup_vs_one_thread: f64,
    /// Wall(single-mutex, same threads) / wall(this row); `None` on the
    /// single-mutex rows themselves.
    pub speedup_vs_single_mutex: Option<f64>,
    /// Buffer-pool accesses served by a resident frame.
    pub pool_hits: u64,
    /// Buffer-pool accesses that faulted the page in.
    pub pool_misses: u64,
    /// Shard-lock acquisitions that found the lock held.
    pub lock_contention: u64,
    /// Decoded-node cache hits across both trees.
    pub node_cache_hits: u64,
    /// Decoded-node cache misses across both trees.
    pub node_cache_misses: u64,
    /// Result pairs produced (sanity: identical on every row).
    pub result_pairs: usize,
}

/// The thread-scaling figure: sharded pool vs a single-mutex pool across
/// worker-thread counts, with the concurrency counters that explain the
/// difference.
#[derive(Clone, Debug, Serialize)]
pub struct ScalingReport {
    /// Output id (`BENCH_parallel_scaling` — also the JSON file stem).
    pub id: String,
    /// Human description of the workload.
    pub workload: String,
    /// Cores the host reported; speedup flattens beyond this.
    pub host_cores: usize,
    /// One row per (pool variant, thread count).
    pub rows: Vec<ScalingRow>,
}

impl ScalingReport {
    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.workload));
        out.push_str(&format!(
            "{:<14} {:>7} {:>9} {:>8} {:>9} {:>10} {:>9} {:>10} {:>9} {:>9}\n",
            "pool",
            "threads",
            "wall(s)",
            "x1T",
            "x1mutex",
            "hits",
            "misses",
            "contention",
            "nc-hits",
            "nc-miss"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<14} {:>7} {:>9.3} {:>8.2} {:>9} {:>10} {:>9} {:>10} {:>9} {:>9}\n",
                r.pool,
                r.threads,
                r.wall_seconds,
                r.speedup_vs_one_thread,
                r.speedup_vs_single_mutex
                    .map_or("-".to_string(), |s| format!("{s:.2}")),
                r.pool_hits,
                r.pool_misses,
                r.lock_contention,
                r.node_cache_hits,
                r.node_cache_misses,
            ));
        }
        out
    }

    /// Writes the report as JSON under `dir/<id>.json`.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(path)?;
        let body = serde_json::to_string_pretty(self).expect("serializable");
        f.write_all(body.as_bytes())
    }
}

/// One row of the batched-kernel throughput study (`BENCH_kernels`).
#[derive(Clone, Debug, Serialize)]
pub struct KernelRow {
    /// Pipeline measured: `"point-leaf-scan"` (point→candidate-points
    /// distances, the HNN/BNN/brute inner loop) or `"mbr-probe"`
    /// (MINMINDIST + NXNDIST per candidate MBR, the tree-probe inner
    /// loop).
    pub kernel: String,
    /// Dimensionality of the candidate set.
    pub dims: usize,
    /// `"cold"` (candidate columns evicted from cache before the timed
    /// pass) or `"warm"` (averaged over repeat passes on resident data).
    pub cache: String,
    /// Candidate entries scanned per pass.
    pub candidates: usize,
    /// Seconds per pass over the AoS scalar loop.
    pub scalar_seconds: f64,
    /// Seconds per pass over the SoA batched kernels.
    pub batched_seconds: f64,
    /// Scalar throughput in million candidate entries per second.
    pub scalar_melems_per_sec: f64,
    /// Batched throughput in million candidate entries per second.
    pub batched_melems_per_sec: f64,
    /// `scalar_seconds / batched_seconds`.
    pub speedup: f64,
    /// Whether the batched outputs matched the scalar outputs
    /// bit-for-bit on this row's data (must always be `true`).
    pub bit_identical: bool,
}

/// The batched-kernel throughput figure: the scalar per-entry loops the
/// algorithms used before the SoA kernels landed, against the batched
/// kernels, on the same candidate sets — cold and warm cache, across
/// dimensionalities. Emitted as `BENCH_kernels.json`.
#[derive(Clone, Debug, Serialize)]
pub struct KernelsReport {
    /// Output id (`BENCH_kernels` — also the JSON file stem).
    pub id: String,
    /// Human description of the workload.
    pub workload: String,
    /// Unroll width of the batched kernels ([`ann_geom::kernels::LANES`]).
    pub lanes: usize,
    /// One row per (kernel, dims, cache state).
    pub rows: Vec<KernelRow>,
}

impl KernelsReport {
    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.workload));
        out.push_str(&format!(
            "{:<16} {:>4} {:>5} {:>10} {:>12} {:>12} {:>10} {:>10} {:>8} {:>6}\n",
            "kernel",
            "dims",
            "cache",
            "candidates",
            "scalar(s)",
            "batched(s)",
            "scalar-Me/s",
            "batch-Me/s",
            "speedup",
            "bits"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<16} {:>4} {:>5} {:>10} {:>12.6} {:>12.6} {:>10.1} {:>10.1} {:>7.2}x {:>6}\n",
                r.kernel,
                r.dims,
                r.cache,
                r.candidates,
                r.scalar_seconds,
                r.batched_seconds,
                r.scalar_melems_per_sec,
                r.batched_melems_per_sec,
                r.speedup,
                if r.bit_identical { "ok" } else { "DIFF" },
            ));
        }
        out
    }

    /// Writes the report as JSON under `dir/<id>.json`.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(path)?;
        let body = serde_json::to_string_pretty(self).expect("serializable");
        f.write_all(body.as_bytes())
    }
}

/// One row of the resilience-overhead study (`BENCH_robustness`).
#[derive(Clone, Debug, Serialize)]
pub struct RobustnessRow {
    /// Algorithm variant measured (e.g. `"mba"`, `"mba-2t"`, `"bnn"`).
    pub algorithm: String,
    /// Points per side of the self-join.
    pub n: usize,
    /// Timed repetitions each figure is averaged over.
    pub runs: usize,
    /// Seconds per run through the unified entrypoint with no resilience
    /// limits configured (the guard reduces to one branch per expansion).
    pub baseline_seconds: f64,
    /// Seconds per run with every resilience feature armed but
    /// non-firing: a live cancel token, a far deadline, generous visit
    /// and I/O budgets, and a per-request retry override.
    pub armed_seconds: f64,
    /// `(armed_seconds / baseline_seconds - 1) * 100`.
    pub overhead_percent: f64,
    /// Whether the armed run's results and work counters (I/O block
    /// excluded) matched the baseline exactly (must always be `true`).
    pub decision_identical: bool,
}

/// The resilience fault-free-overhead figure: every pool-backed variant
/// (plus HNN) through the unified entrypoint, ungoverned vs fully armed,
/// on the same warm indexes. Emitted as `BENCH_robustness.json`.
#[derive(Clone, Debug, Serialize)]
pub struct RobustnessReport {
    /// Output id (`BENCH_robustness` — also the JSON file stem).
    pub id: String,
    /// Human description of the workload.
    pub workload: String,
    /// Largest `overhead_percent` across the rows (the gated headline).
    pub max_overhead_percent: f64,
    /// One row per algorithm variant.
    pub rows: Vec<RobustnessRow>,
}

impl RobustnessReport {
    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.workload));
        out.push_str(&format!(
            "{:<8} {:>8} {:>5} {:>12} {:>12} {:>10} {:>10}\n",
            "variant", "n", "runs", "baseline(s)", "armed(s)", "overhead", "decisions"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<8} {:>8} {:>5} {:>12.6} {:>12.6} {:>9.2}% {:>10}\n",
                r.algorithm,
                r.n,
                r.runs,
                r.baseline_seconds,
                r.armed_seconds,
                r.overhead_percent,
                if r.decision_identical { "ok" } else { "DIFF" },
            ));
        }
        out.push_str(&format!(
            "max overhead: {:.2}%\n",
            self.max_overhead_percent
        ));
        out
    }

    /// Writes the report as JSON under `dir/<id>.json`.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(path)?;
        let body = serde_json::to_string_pretty(self).expect("serializable");
        f.write_all(body.as_bytes())
    }
}

/// One cell of the out-of-core sweep (`BENCH_outofcore`): an MBA
/// self-join over two streamed-built MBRQT trees on a [`FileDisk`],
/// cold pool, with the prefetcher off or on.
///
/// [`FileDisk`]: ann_store::FileDisk
#[derive(Clone, Debug, Serialize)]
pub struct OutofcoreRow {
    /// Points per side of the self-join.
    pub points: usize,
    /// Buffer-pool frames during the query phase.
    pub pool_pages: usize,
    /// Pages the two trees occupy on disk (≥ 10× `pool_pages` on the
    /// gated cold cell).
    pub dataset_pages: u64,
    /// Whether the pipelined leaf prefetcher was enabled.
    pub prefetch: bool,
    /// Streaming (external) build time for both trees, seconds.
    pub build_seconds: f64,
    /// Query-phase wall clock, seconds.
    pub wall_seconds: f64,
    /// Logical page reads during the query phase (must be identical
    /// prefetch-on vs prefetch-off).
    pub logical_reads: u64,
    /// Physical page reads during the query phase (prefetch batches
    /// these; demand faults shrink accordingly).
    pub physical_reads: u64,
    /// Pages the prefetcher read ahead of demand.
    pub prefetch_issued: u64,
    /// Prefetched frames later claimed by a demand access.
    pub prefetch_hits: u64,
    /// Prefetched frames evicted before any demand access claimed them.
    pub prefetch_wasted: u64,
    /// `prefetch_hits / prefetch_issued` (0 when nothing was issued).
    pub prefetch_hit_rate: f64,
    /// Result pairs produced.
    pub result_pairs: usize,
    /// Whether this row's sorted results and logical read count matched
    /// its prefetch-off twin exactly (trivially `true` on the off rows;
    /// must always be `true`).
    pub identical_to_baseline: bool,
}

/// The ≥10⁷-point external-build validation row of `BENCH_outofcore`.
#[derive(Clone, Debug, Serialize)]
pub struct OutofcoreCensus {
    /// Points streamed through the external build.
    pub points: usize,
    /// Sorter run budget (records held in memory at once).
    pub run_budget: usize,
    /// Streaming build wall clock, seconds.
    pub build_seconds: f64,
    /// [`validate`](ann_core::index::validate) wall clock, seconds.
    pub validate_seconds: f64,
    /// Full-census wall clock, seconds.
    pub census_seconds: f64,
    /// Objects the validated tree reported.
    pub objects: u64,
    /// Whether every input oid came back from the census exactly once.
    pub census_complete: bool,
}

/// The out-of-core figure: streaming external builds plus the
/// prefetch-off vs prefetch-on cold query sweep. Emitted as
/// `BENCH_outofcore.json`.
#[derive(Clone, Debug, Serialize)]
pub struct OutofcoreReport {
    /// Output id (`BENCH_outofcore` — also the JSON file stem).
    pub id: String,
    /// Human description of the workload.
    pub workload: String,
    /// Dataset seed (reproducibility).
    pub seed: u64,
    /// One row per (points, pool pages, prefetch) cell.
    pub rows: Vec<OutofcoreRow>,
    /// The large-scale external-build validation.
    pub census: OutofcoreCensus,
}

impl OutofcoreReport {
    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.workload));
        out.push_str(&format!(
            "{:<9} {:>6} {:>8} {:>8} {:>9} {:>9} {:>9} {:>8} {:>7} {:>7} {:>8} {:>9}\n",
            "points",
            "pool",
            "ds-pages",
            "prefetch",
            "build(s)",
            "wall(s)",
            "logical",
            "physical",
            "issued",
            "hits",
            "hit-rate",
            "identical"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<9} {:>6} {:>8} {:>8} {:>9.3} {:>9.3} {:>9} {:>8} {:>7} {:>7} {:>7.1}% {:>9}\n",
                r.points,
                r.pool_pages,
                r.dataset_pages,
                if r.prefetch { "on" } else { "off" },
                r.build_seconds,
                r.wall_seconds,
                r.logical_reads,
                r.physical_reads,
                r.prefetch_issued,
                r.prefetch_hits,
                r.prefetch_hit_rate * 100.0,
                if r.identical_to_baseline { "ok" } else { "DIFF" },
            ));
        }
        let c = &self.census;
        out.push_str(&format!(
            "census: {} points, run budget {}, build {:.1}s, validate {:.1}s, \
             census {:.1}s, {} objects, complete: {}\n",
            c.points,
            c.run_budget,
            c.build_seconds,
            c.validate_seconds,
            c.census_seconds,
            c.objects,
            if c.census_complete { "ok" } else { "INCOMPLETE" },
        ));
        out
    }

    /// Writes the report as JSON under `dir/<id>.json`.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(path)?;
        let body = serde_json::to_string_pretty(self).expect("serializable");
        f.write_all(body.as_bytes())
    }
}

/// One closed-loop serving load level (`BENCH_serving`): a fixed number
/// of concurrent keep-alive clients, each issuing queries back-to-back
/// against the in-process HTTP front-end.
#[derive(Clone, Debug, Serialize)]
pub struct ServingRow {
    /// Concurrent closed-loop clients at this level.
    pub clients: usize,
    /// Requests each client issued.
    pub requests_per_client: usize,
    /// Total queries completed (`clients * requests_per_client`).
    pub total_requests: usize,
    /// Requests that did not come back `200 OK` (gated to zero).
    pub failed_requests: usize,
    /// Whether every response's result set was byte-identical to the
    /// in-process `query::run` path (gated to `true`).
    pub results_identical: bool,
    /// Wall-clock seconds for the whole level.
    pub wall_seconds: f64,
    /// Completed queries per second of wall clock.
    pub throughput_qps: f64,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile request latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
}

/// The serving benchmark: the zero-dep HTTP front-end under a
/// closed-loop load sweep, one row per concurrency level. Emitted as
/// `BENCH_serving.json`; CI gates on zero failures and result identity
/// at every level.
#[derive(Clone, Debug, Serialize)]
pub struct ServingReport {
    /// Output id (`BENCH_serving` — also the JSON file stem).
    pub id: String,
    /// Human description of the workload.
    pub workload: String,
    /// Points in the served collection.
    pub n: usize,
    /// Neighbors per point requested.
    pub k: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Admission-control queue depth.
    pub queue_depth: usize,
    /// One row per concurrency level.
    pub rows: Vec<ServingRow>,
}

impl ServingReport {
    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.workload));
        out.push_str(&format!(
            "{:>7} {:>7} {:>6} {:>9} {:>10} {:>10} {:>10} {:>10}\n",
            "clients", "reqs", "failed", "identical", "qps", "p50(us)", "p95(us)", "p99(us)"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:>7} {:>7} {:>6} {:>9} {:>10.1} {:>10.0} {:>10.0} {:>10.0}\n",
                r.clients,
                r.total_requests,
                r.failed_requests,
                if r.results_identical { "ok" } else { "DIFF" },
                r.throughput_qps,
                r.p50_us,
                r.p95_us,
                r.p99_us,
            ));
        }
        out
    }

    /// Writes the report as JSON under `dir/<id>.json`.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(path)?;
        let body = serde_json::to_string_pretty(self).expect("serializable");
        f.write_all(body.as_bytes())
    }
}

/// One cell of the morsel-engine scaling study (`BENCH_parallel_join`):
/// one algorithm variant on one dataset at one thread count, always
/// diffed against its own single-thread run.
#[derive(Clone, Debug, Serialize)]
pub struct ParallelJoinRow {
    /// Algorithm variant (`"mba"`, `"bnn"`, `"mnn"`, `"hnn"`, ...).
    pub algorithm: String,
    /// Dataset family: `"uniform"` or `"clustered"`.
    pub dataset: String,
    /// Points per side of the self-join.
    pub n: usize,
    /// Worker threads requested via `AnnRequest::threads`.
    pub threads: usize,
    /// Wall-clock seconds for the join (best of the timed repeats).
    pub wall_seconds: f64,
    /// Wall(1 thread, same variant+dataset) / wall(this row).
    pub speedup_vs_serial: f64,
    /// Result pairs produced (sanity: identical on every row of a
    /// variant+dataset group).
    pub result_pairs: usize,
    /// Whether this row's sorted `(r_oid, s_oid, dist-bits)` output
    /// matched the single-thread run exactly (must always be `true`;
    /// trivially so on the 1-thread rows).
    pub byte_identical: bool,
}

/// The morsel-driven parallel-join figure: every algorithm variant
/// through the unified entrypoint at 1/2/4/8 worker threads on uniform
/// and clustered data, each row byte-diffed against its serial twin.
/// Emitted as `BENCH_parallel_join.json`; CI gates on the identity bit
/// on every row and (opt-in) on the 4-thread speedup.
#[derive(Clone, Debug, Serialize)]
pub struct ParallelJoinReport {
    /// Output id (`BENCH_parallel_join` — also the JSON file stem).
    pub id: String,
    /// Human description of the workload.
    pub workload: String,
    /// Cores the host reported; speedup flattens beyond this.
    pub host_cores: usize,
    /// Neighbors per point requested.
    pub k: usize,
    /// One row per (algorithm, dataset, thread count).
    pub rows: Vec<ParallelJoinRow>,
}

impl ParallelJoinReport {
    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.workload));
        out.push_str(&format!(
            "{:<8} {:<10} {:>8} {:>7} {:>9} {:>8} {:>8} {:>9}\n",
            "variant", "dataset", "n", "threads", "wall(s)", "speedup", "pairs", "identical"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<8} {:<10} {:>8} {:>7} {:>9.3} {:>7.2}x {:>8} {:>9}\n",
                r.algorithm,
                r.dataset,
                r.n,
                r.threads,
                r.wall_seconds,
                r.speedup_vs_serial,
                r.result_pairs,
                if r.byte_identical { "ok" } else { "DIFF" },
            ));
        }
        out
    }

    /// Writes the report as JSON under `dir/<id>.json`.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(path)?;
        let body = serde_json::to_string_pretty(self).expect("serializable");
        f.write_all(body.as_bytes())
    }
}

/// One MVCC reader-latency phase (`BENCH_mvcc`): a fixed pool of reader
/// threads, each pinning a snapshot per query and running a full AkNN
/// self-join against it, either on a quiescent store (`read_only`) or
/// while a writer thread commits versioned transactions back-to-back
/// (`with_writer`).
#[derive(Clone, Debug, Serialize)]
pub struct MvccRow {
    /// Phase name: `"read_only"` or `"with_writer"`.
    pub mode: String,
    /// Concurrent reader threads.
    pub readers: usize,
    /// Total queries completed across all readers.
    pub queries: usize,
    /// Queries that failed to pin or run (gated to zero).
    pub failed: usize,
    /// Versioned transactions the writer committed during the phase
    /// (zero in the `read_only` phase).
    pub writer_commits: usize,
    /// Wall-clock seconds for the phase.
    pub wall_seconds: f64,
    /// Completed queries per second of wall clock.
    pub throughput_qps: f64,
    /// Median per-query latency (pin + run), microseconds.
    pub p50_us: f64,
    /// 95th-percentile per-query latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile per-query latency, microseconds.
    pub p99_us: f64,
}

/// The MVCC snapshot-isolation benchmark: reader latency with an active
/// writer vs. read-only, over the versioned page store. Emitted as
/// `BENCH_mvcc.json`; CI gates on zero failed queries and on
/// `reader_p95_ratio` staying within the readers-not-blocked bound.
#[derive(Clone, Debug, Serialize)]
pub struct MvccReport {
    /// Output id (`BENCH_mvcc` — also the JSON file stem).
    pub id: String,
    /// Human description of the workload.
    pub workload: String,
    /// Points in the versioned collection at phase start.
    pub n: usize,
    /// Neighbors per point requested.
    pub k: usize,
    /// Snapshot history window (versions retained past the newest).
    pub keep: u32,
    /// One row per phase.
    pub rows: Vec<MvccRow>,
    /// `with_writer` p95 divided by `read_only` p95 — the
    /// readers-not-blocked headline (CI gates this ≤ 1.25).
    pub reader_p95_ratio: f64,
}

impl MvccReport {
    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.workload));
        out.push_str(&format!(
            "{:>12} {:>7} {:>8} {:>6} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            "mode", "readers", "queries", "failed", "commits", "qps", "p50(us)", "p95(us)", "p99(us)"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:>12} {:>7} {:>8} {:>6} {:>8} {:>10.1} {:>10.0} {:>10.0} {:>10.0}\n",
                r.mode,
                r.readers,
                r.queries,
                r.failed,
                r.writer_commits,
                r.throughput_qps,
                r.p50_us,
                r.p95_us,
                r.p99_us,
            ));
        }
        out.push_str(&format!(
            "reader p95 with writer / read-only: {:.3}\n",
            self.reader_p95_ratio
        ));
        out
    }

    /// Writes the report as JSON under `dir/<id>.json`.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(path)?;
        let body = serde_json::to_string_pretty(self).expect("serializable");
        f.write_all(body.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_measurement(label: &str) -> Measurement {
        Measurement {
            label: label.to_string(),
            cpu_seconds: 1.25,
            physical_pages: 100,
            io_seconds: 1.0,
            logical_reads: 1000,
            result_pairs: 42,
            distance_computations: 9000,
            enqueued: 300,
            build_seconds: 0.5,
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let mut fig = Figure::new("figX", "test workload");
        fig.push("g1", sample_measurement("MBA NXNDIST"));
        fig.push("g2", sample_measurement("GORDER"));
        let text = fig.render();
        assert!(text.contains("figX"));
        assert!(text.contains("MBA NXNDIST"));
        assert!(text.contains("GORDER"));
        assert!(text.contains("2.250")); // total = cpu + io
        assert_eq!(text.lines().count(), 2 + 2); // header x2 + 2 rows
    }

    #[test]
    fn kernels_report_renders_and_serializes() {
        let rep = KernelsReport {
            id: "BENCH_kernels".into(),
            workload: "test".into(),
            lanes: 4,
            rows: vec![KernelRow {
                kernel: "point-leaf-scan".into(),
                dims: 2,
                cache: "warm".into(),
                candidates: 100_000,
                scalar_seconds: 2e-4,
                batched_seconds: 1e-4,
                scalar_melems_per_sec: 500.0,
                batched_melems_per_sec: 1000.0,
                speedup: 2.0,
                bit_identical: true,
            }],
        };
        let text = rep.render();
        assert!(text.contains("BENCH_kernels"));
        assert!(text.contains("point-leaf-scan"));
        assert!(text.contains("2.00x"));
        let parsed: serde_json::Value =
            serde_json::from_str(&serde_json::to_string_pretty(&rep).unwrap()).unwrap();
        assert_eq!(parsed["rows"][0]["speedup"], 2.0);
        assert_eq!(parsed["rows"][0]["bit_identical"], true);
    }

    #[test]
    fn parallel_join_report_renders_and_serializes() {
        let rep = ParallelJoinReport {
            id: "BENCH_parallel_join".into(),
            workload: "test".into(),
            host_cores: 4,
            k: 2,
            rows: vec![ParallelJoinRow {
                algorithm: "mba".into(),
                dataset: "clustered".into(),
                n: 10_000,
                threads: 4,
                wall_seconds: 0.25,
                speedup_vs_serial: 3.1,
                result_pairs: 20_000,
                byte_identical: true,
            }],
        };
        let text = rep.render();
        assert!(text.contains("BENCH_parallel_join"));
        assert!(text.contains("clustered"));
        assert!(text.contains("3.10x"));
        let parsed: serde_json::Value =
            serde_json::from_str(&serde_json::to_string_pretty(&rep).unwrap()).unwrap();
        assert_eq!(parsed["rows"][0]["threads"], 4);
        assert_eq!(parsed["rows"][0]["byte_identical"], true);
        assert_eq!(parsed["rows"][0]["speedup_vs_serial"], 3.1);
    }

    #[test]
    fn json_round_trip() {
        let dir = std::env::temp_dir().join(format!("ann-bench-test-{}", std::process::id()));
        let mut fig = Figure::new("figY", "json test");
        fig.push("g", sample_measurement("BNN MAXMAXDIST"));
        fig.write_json(&dir).unwrap();
        let body = std::fs::read_to_string(dir.join("figY.json")).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(parsed["id"], "figY");
        assert_eq!(parsed["rows"][0]["label"], "BNN MAXMAXDIST");
        std::fs::remove_dir_all(&dir).ok();
    }
}
