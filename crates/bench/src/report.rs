//! Table formatting and JSON dumping for experiment results.

use crate::harness::Measurement;
use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// A complete regenerated figure: its id, workload description, and rows.
#[derive(Clone, Debug, Serialize)]
pub struct Figure {
    /// Paper figure id (e.g. `"fig3a"`).
    pub id: String,
    /// Human description of the workload.
    pub workload: String,
    /// One measurement per bar/series point; `group` labels the x-position
    /// (e.g. buffer size, dimensionality, k).
    pub rows: Vec<FigureRow>,
}

/// One bar / series point.
#[derive(Clone, Debug, Serialize)]
pub struct FigureRow {
    /// X-axis group (dataset, buffer size, dimensionality, k, ...).
    pub group: String,
    /// The measurement.
    #[serde(flatten)]
    pub measurement: Measurement,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: &str, workload: &str) -> Self {
        Figure {
            id: id.to_string(),
            workload: workload.to_string(),
            rows: Vec::new(),
        }
    }

    /// Adds one measurement under an x-axis group.
    pub fn push(&mut self, group: &str, m: Measurement) {
        self.rows.push(FigureRow {
            group: group.to_string(),
            measurement: m,
        });
    }

    /// Renders the figure as an aligned text table (the same rows/series
    /// the paper plots).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.workload));
        out.push_str(&format!(
            "{:<16} {:<18} {:>9} {:>9} {:>9} {:>10} {:>12} {:>10}\n",
            "group", "method", "cpu(s)", "io(s)", "total(s)", "pages", "dist-comps", "enqueued"
        ));
        for row in &self.rows {
            let m = &row.measurement;
            out.push_str(&format!(
                "{:<16} {:<18} {:>9.3} {:>9.3} {:>9.3} {:>10} {:>12} {:>10}\n",
                row.group,
                m.label,
                m.cpu_seconds,
                m.io_seconds,
                m.total_seconds(),
                m.physical_pages,
                m.distance_computations,
                m.enqueued,
            ));
        }
        out
    }

    /// Writes the figure as JSON under `dir/<id>.json` (for EXPERIMENTS.md
    /// bookkeeping). Creates the directory when missing.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(path)?;
        let body = serde_json::to_string_pretty(self).expect("serializable");
        f.write_all(body.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_measurement(label: &str) -> Measurement {
        Measurement {
            label: label.to_string(),
            cpu_seconds: 1.25,
            physical_pages: 100,
            io_seconds: 1.0,
            logical_reads: 1000,
            result_pairs: 42,
            distance_computations: 9000,
            enqueued: 300,
            build_seconds: 0.5,
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let mut fig = Figure::new("figX", "test workload");
        fig.push("g1", sample_measurement("MBA NXNDIST"));
        fig.push("g2", sample_measurement("GORDER"));
        let text = fig.render();
        assert!(text.contains("figX"));
        assert!(text.contains("MBA NXNDIST"));
        assert!(text.contains("GORDER"));
        assert!(text.contains("2.250")); // total = cpu + io
        assert_eq!(text.lines().count(), 2 + 2); // header x2 + 2 rows
    }

    #[test]
    fn json_round_trip() {
        let dir = std::env::temp_dir().join(format!("ann-bench-test-{}", std::process::id()));
        let mut fig = Figure::new("figY", "json test");
        fig.push("g", sample_measurement("BNN MAXMAXDIST"));
        fig.write_json(&dir).unwrap();
        let body = std::fs::read_to_string(dir.join("figY.json")).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(parsed["id"], "figY");
        assert_eq!(parsed["rows"][0]["label"], "BNN MAXMAXDIST");
        std::fs::remove_dir_all(&dir).ok();
    }
}
