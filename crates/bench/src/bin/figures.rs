//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures <command> [--scale FRACTION | --full] [--json DIR] [--trace DIR]
//!
//! commands:
//!   fig3a | fig3a-synthetic | fig3b | fig4 | fig5 | fig6
//!   ablation-traversal | ablation-mbr | extra-mnn
//!   parallel-scaling    thread-scaling study (BENCH_parallel_scaling.json)
//!   parallel-join       morsel-engine sweep: every algorithm x threads
//!                       {1,2,4,8} x uniform/clustered, byte-diffed vs
//!                       serial (BENCH_parallel_join.json)
//!   kernels             batched-kernel throughput study (BENCH_kernels.json)
//!   robustness          resilience fault-free-overhead study (BENCH_robustness.json)
//!   outofcore           streaming-build + prefetch sweep (BENCH_outofcore.json);
//!                       honors --points N --pool-pages P --seed S overrides
//!   serving             closed-loop HTTP front-end load sweep (BENCH_serving.json)
//!   mvcc                snapshot-reader latency with/without an active
//!                       writer (BENCH_mvcc.json)
//!   all                 run every figure
//!   list-datasets       print Table 2 (with the scaled cardinalities)
//! ```
//!
//! `--scale 0.1` (the default) runs each workload at 10 % of the paper's
//! cardinality; `--full` is paper scale (700 K × 700 K joins — expect a
//! long run).
//!
//! `--trace DIR` attaches an execution tracer to every run and writes one
//! structured `ExecutionReport` JSON per run into `DIR` (phase wall times
//! with I/O deltas, per-level node-expansion histograms, and the
//! pruning-effectiveness breakdown). Measured counters are unaffected.

use ann_bench::{figures, report::Figure};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    command: String,
    fraction: f64,
    json_dir: Option<PathBuf>,
    trace_dir: Option<PathBuf>,
    outofcore: ann_bench::figures::OutofcoreOpts,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut fraction = 0.1;
    let mut json_dir = None;
    let mut trace_dir = None;
    let mut outofcore = ann_bench::figures::OutofcoreOpts::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--points" => {
                let v = args.next().ok_or("--points needs a value")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|e| format!("bad --points value {v:?}: {e}"))?;
                if n == 0 {
                    return Err("--points must be positive".to_string());
                }
                outofcore.points = Some(n);
            }
            "--pool-pages" => {
                let v = args.next().ok_or("--pool-pages needs a value")?;
                let p = v
                    .parse::<usize>()
                    .map_err(|e| format!("bad --pool-pages value {v:?}: {e}"))?;
                if p == 0 {
                    return Err("--pool-pages must be positive".to_string());
                }
                outofcore.pool_pages = Some(p);
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                outofcore.seed = Some(
                    v.parse::<u64>()
                        .map_err(|e| format!("bad --seed value {v:?}: {e}"))?,
                );
            }
            "--full" => fraction = 1.0,
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                fraction = v
                    .parse::<f64>()
                    .map_err(|e| format!("bad --scale value {v:?}: {e}"))?;
                if !(fraction > 0.0 && fraction <= 1.0) {
                    return Err(format!("--scale must be in (0, 1], got {fraction}"));
                }
            }
            "--json" => {
                let v = args.next().ok_or("--json needs a directory")?;
                json_dir = Some(PathBuf::from(v));
            }
            "--trace" => {
                let v = args.next().ok_or("--trace needs a directory")?;
                trace_dir = Some(PathBuf::from(v));
            }
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(Args {
        command,
        fraction,
        json_dir,
        trace_dir,
        outofcore,
    })
}

fn usage() -> String {
    "usage: figures <fig3a|fig3a-synthetic|fig3b|fig4|fig5|fig6|\
     ablation-traversal|ablation-mbr|ablation-packing|extra-mnn|extra-hnn|extra-parallel|\
     parallel-scaling|parallel-join|kernels|robustness|outofcore|serving|mvcc|all|list-datasets> \
     [--scale F] [--full] [--json DIR] [--trace DIR] \
     [--points N] [--pool-pages P] [--seed S]"
        .to_string()
}

fn emit(fig: Figure, json_dir: &Option<PathBuf>) {
    print!("{}", fig.render());
    println!();
    if let Some(dir) = json_dir {
        if let Err(e) = fig.write_json(dir) {
            eprintln!("warning: could not write JSON for {}: {e}", fig.id);
        }
    }
}

fn emit_scaling(rep: ann_bench::report::ScalingReport, json_dir: &Option<PathBuf>) {
    print!("{}", rep.render());
    println!();
    if let Some(dir) = json_dir {
        if let Err(e) = rep.write_json(dir) {
            eprintln!("warning: could not write JSON for {}: {e}", rep.id);
        }
    }
}

fn emit_parallel_join(rep: ann_bench::report::ParallelJoinReport, json_dir: &Option<PathBuf>) {
    print!("{}", rep.render());
    println!();
    if let Some(dir) = json_dir {
        if let Err(e) = rep.write_json(dir) {
            eprintln!("warning: could not write JSON for {}: {e}", rep.id);
        }
    }
}

fn emit_kernels(rep: ann_bench::report::KernelsReport, json_dir: &Option<PathBuf>) {
    print!("{}", rep.render());
    println!();
    if let Some(dir) = json_dir {
        if let Err(e) = rep.write_json(dir) {
            eprintln!("warning: could not write JSON for {}: {e}", rep.id);
        }
    }
}

fn emit_robustness(rep: ann_bench::report::RobustnessReport, json_dir: &Option<PathBuf>) {
    print!("{}", rep.render());
    println!();
    if let Some(dir) = json_dir {
        if let Err(e) = rep.write_json(dir) {
            eprintln!("warning: could not write JSON for {}: {e}", rep.id);
        }
    }
}

fn emit_outofcore(rep: ann_bench::report::OutofcoreReport, json_dir: &Option<PathBuf>) {
    print!("{}", rep.render());
    println!();
    if let Some(dir) = json_dir {
        if let Err(e) = rep.write_json(dir) {
            eprintln!("warning: could not write JSON for {}: {e}", rep.id);
        }
    }
}

fn emit_serving(rep: ann_bench::report::ServingReport, json_dir: &Option<PathBuf>) {
    print!("{}", rep.render());
    println!();
    if let Some(dir) = json_dir {
        if let Err(e) = rep.write_json(dir) {
            eprintln!("warning: could not write JSON for {}: {e}", rep.id);
        }
    }
}

fn emit_mvcc(rep: ann_bench::report::MvccReport, json_dir: &Option<PathBuf>) {
    print!("{}", rep.render());
    println!();
    if let Some(dir) = json_dir {
        if let Err(e) = rep.write_json(dir) {
            eprintln!("warning: could not write JSON for {}: {e}", rep.id);
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let f = args.fraction;
    if let Some(dir) = &args.trace_dir {
        if let Err(e) = ann_bench::harness::enable_tracing(dir) {
            eprintln!("could not create trace directory {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        eprintln!("tracing every run into {}", dir.display());
    }
    eprintln!(
        "running {} at scale {:.3} of the paper's cardinalities",
        args.command, f
    );
    match args.command.as_str() {
        "fig3a" => emit(figures::fig3a(f), &args.json_dir),
        "fig3a-synthetic" => emit(figures::fig3a_synthetic(f), &args.json_dir),
        "fig3b" => emit(figures::fig3b(f), &args.json_dir),
        "fig4" => emit(figures::fig4(f), &args.json_dir),
        "fig5" => emit(figures::fig5(f), &args.json_dir),
        "fig6" => emit(figures::fig6(f), &args.json_dir),
        "ablation-traversal" => emit(figures::ablation_traversal(f), &args.json_dir),
        "ablation-mbr" => emit(figures::ablation_mbr(f), &args.json_dir),
        "extra-mnn" => emit(figures::extra_mnn(f), &args.json_dir),
        "extra-hnn" => emit(figures::extra_hnn(f), &args.json_dir),
        "ablation-packing" => emit(figures::ablation_packing(f), &args.json_dir),
        "extra-parallel" => emit(figures::extra_parallel(f), &args.json_dir),
        "parallel-scaling" => emit_scaling(figures::parallel_scaling(f), &args.json_dir),
        "parallel-join" => emit_parallel_join(figures::parallel_join(f), &args.json_dir),
        "kernels" => emit_kernels(figures::kernels_bench(f), &args.json_dir),
        "robustness" => emit_robustness(figures::robustness_bench(f), &args.json_dir),
        "outofcore" => emit_outofcore(figures::outofcore(f, &args.outofcore), &args.json_dir),
        "serving" => emit_serving(figures::serving(f), &args.json_dir),
        "mvcc" => emit_mvcc(figures::mvcc(f), &args.json_dir),
        "all" => {
            for fig in figures::all(f) {
                emit(fig, &args.json_dir);
            }
            emit_scaling(figures::parallel_scaling(f), &args.json_dir);
            emit_parallel_join(figures::parallel_join(f), &args.json_dir);
            emit_kernels(figures::kernels_bench(f), &args.json_dir);
            emit_robustness(figures::robustness_bench(f), &args.json_dir);
            emit_serving(figures::serving(f), &args.json_dir);
            emit_mvcc(figures::mvcc(f), &args.json_dir);
        }
        "list-datasets" => print!("{}", figures::table2(f)),
        other => {
            eprintln!("unknown command {other:?}\n{}", usage());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
